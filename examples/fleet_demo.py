"""Fleet demo: three tenants, one drifting, and the SLO roll-up.

A small fleet of interactive sessions runs under one virtual clock:
a 2048 tenant whose ample slack absorbs bursty arrivals, a steady
rijndael tenant on periodic arrivals, and a second rijndael tenant —
identical except its platform silently slows down by x1.8 halfway
through every session.  The fleet report merges each tenant's
per-session error budgets (merge == concatenation, see
``docs/fleet.md``), pools the burn-rate windows, and ranks the top-K
worst tenants — the drifting tenant should head that table.

The same spec is then re-run on a different shard count to show the
determinism contract: the reports are byte-identical, because shard
and worker counts are partitioning, not input.

Run:  python examples/fleet_demo.py
"""

from repro.fleet import BurstyArrivals, FleetSpec, TenantSpec, run_fleet

TENANTS = (
    TenantSpec(
        name="puzzles",
        app="2048",
        sessions=12,
        jobs_per_session=24,
        arrival=BurstyArrivals(burst_factor=4.0),
    ),
    TenantSpec(
        name="crypto",
        app="rijndael",
        sessions=8,
        jobs_per_session=24,
    ),
    TenantSpec(
        name="crypto-drift",
        app="rijndael",
        sessions=8,
        jobs_per_session=24,
        drift_factor=1.8,      # platform slows x1.8 ...
        drift_at_frac=0.5,     # ... halfway through each session
    ),
)


def main():
    spec = FleetSpec(tenants=TENANTS, seed=7, shards=4, top_k=3)
    print(
        f"running {spec.total_sessions} sessions on {spec.shards} shards "
        "(first run trains the controllers; reruns hit the cache)\n"
    )
    outcome = run_fleet(spec)
    report = outcome.report
    print(report.render_text())

    drifter = next(t for t in report.tenants if t.name == "crypto-drift")
    steady = next(t for t in report.tenants if t.name == "crypto")
    print(
        f"\nsame app, same arrivals: drift pushes the miss rate "
        f"from {steady.miss_rate:.1%} to {drifter.miss_rate:.1%} and burns "
        f"{drifter.worst_budget_consumed:.1f}x of the error budget "
        f"(page alerts: {drifter.page_alerts})"
    )
    assert report.top_k[0] == "crypto-drift", report.top_k

    # The determinism contract: partitioning never reaches the report.
    rerun = run_fleet(FleetSpec(tenants=TENANTS, seed=7, shards=1, top_k=3))
    assert rerun.report.to_json() == report.to_json()
    print(
        "\nre-ran on 1 shard: report is byte-identical "
        "(shards are partitioning, not input)"
    )


if __name__ == "__main__":
    main()
