"""Scenario: a video player's decode loop under four DVFS governors.

Reproduces the paper's motivating workload (ldecode, Fig. 2/3/15): decode
one frame per 50 ms budget, and compare the stock Linux governors, a
reactive PID controller, and the prediction-based controller on energy
and deadline misses.  Also prints a short per-frame trace so the
job-to-job variation — and the predictive controller's per-job frequency
choices — are visible.

Run:  python examples/video_player.py
"""

from repro.analysis.harness import Lab
from repro.analysis.render import format_bar, format_table


def main():
    lab = Lab()
    app = "ldecode"

    print("Training the predictive controller for ldecode (offline flow)...")
    controller = lab.controller(app)
    print(f"  instrumented sites : {list(controller.instrumented.site_labels)}")
    print(f"  selected features  : {sorted(controller.predictor.needed_sites)}")
    print()

    rows = []
    results = {}
    for governor in ("performance", "interactive", "pid", "prediction"):
        result = lab.run(app, governor)
        results[governor] = result
        rows.append(
            (
                governor,
                f"{lab.normalized_energy(result, app) * 100:.1f}",
                f"{result.miss_rate * 100:.1f}",
                f"{result.mean_predictor_time_s * 1e3:.2f}",
            )
        )
    print(
        format_table(
            ["governor", "energy[%]", "misses[%]", "predictor[ms]"],
            rows,
            title="ldecode, 50 ms frame budget, 250 frames",
        )
    )

    print("\nPer-frame view (prediction governor), frames 30-44:")
    pred = results["prediction"]
    trace_rows = []
    for job in pred.jobs[30:45]:
        trace_rows.append(
            (
                job.index,
                f"{job.exec_time_s * 1e3:.1f}",
                f"{job.opp_mhz:.0f}",
                format_bar(job.exec_time_s * 1e3, 50.0, width=25),
            )
        )
    print(
        format_table(
            ["frame", "decode[ms]", "freq[MHz]", "of 50 ms budget"],
            trace_rows,
        )
    )
    print(
        "\nNote how the chosen frequency follows each frame's content "
        "(I-frames and busy scenes run faster; skip-heavy frames run slow)."
    )


if __name__ == "__main__":
    main()
