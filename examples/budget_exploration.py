"""Scenario: how tight can the deadline get? (the paper's Fig. 16 sweep)

Interactive latency requirements vary: 100 ms is the classic usability
limit, 50 ms is imperceptible, and games may want a 33 ms (30 FPS) or
16.7 ms (60 FPS) frame time.  This example sweeps the budget for the SHA
file-hashing workload and shows where each governor starts missing
deadlines and how much energy headroom a looser budget buys.

Run:  python examples/budget_exploration.py
"""

from repro.analysis.experiments import fig16_budget_sweep
from repro.analysis.harness import Lab


def main():
    lab = Lab()
    app = "sha"
    result = fig16_budget_sweep.run(
        lab,
        app_name=app,
        budget_factors=(0.6, 0.8, 1.0, 1.2, 1.4),
    )
    print(fig16_budget_sweep.render(result))

    prediction = result.series("prediction")
    performance = result.series("performance")
    tightest_clean = next(
        (p for p in prediction if p.miss_pct == 0.0), None
    )
    print()
    if tightest_clean is not None:
        print(
            f"Tightest clean budget for prediction: "
            f"{tightest_clean.budget_factor:.1f}x "
            f"({tightest_clean.budget_ms:.1f} ms) at "
            f"{tightest_clean.energy_pct:.0f}% of performance-governor energy."
        )
    loosest = prediction[-1]
    print(
        f"At {loosest.budget_factor:.1f}x budget the prediction controller "
        f"spends {loosest.energy_pct:.0f}% — energy falls as deadlines loosen,"
    )
    print(
        "while the performance governor pays "
        f"{performance[-1].energy_pct:.0f}% regardless (it cannot exploit slack)."
    )
    print(
        "\nBelow budget 1.0 every governor misses: those deadlines are "
        "impossible even at maximum frequency (compare the performance "
        "column), which is exactly the paper's reading of Fig. 16."
    )


if __name__ == "__main__":
    main()
