"""Scenario: prediction-guided big.LITTLE control (paper §3.5 extension).

The paper's last pipeline stage — pick the cheapest operating point whose
predicted time fits the budget — generalizes beyond DVFS "to support
other performance-energy trade-off mechanisms, such as heterogeneous
cores".  This example demonstrates it on an Exynos-5422-like platform:
a Cortex-A7 cluster (efficient, tops out at 1400 MHz) next to a
Cortex-A15 cluster (~1.9x the throughput per MHz at several times the
power), merged into one Pareto ladder of operating settings.

With a 20 ms frame budget, ldecode's heaviest frames are IMPOSSIBLE on
the A7 alone (33 ms at its top clock) — the controller must hop clusters
frame by frame: A7 for skip-heavy frames, A15 for I-frames and busy
scenes.

Run:  python examples/biglittle.py
"""

from collections import Counter

from repro.analysis.render import format_table
from repro.governors.performance import PerformanceGovernor
from repro.pipeline import PipelineConfig, build_controller
from repro.platform import Board, LogNormalJitter, build_biglittle_platform
from repro.runtime import TaskLoopRunner
from repro.workloads.registry import get_app

BUDGET_S = 0.020  # 50 FPS: infeasible for the A7 cluster alone
N_FRAMES = 200


def run(table, power, switcher, governor, app):
    board = Board(
        opps=table,
        power=power,
        switcher=switcher,
        jitter=LogNormalJitter(0.02, seed=11),
    )
    runner = TaskLoopRunner(
        board=board,
        task=app.task.with_budget(BUDGET_S),
        governor=governor,
        inputs=app.inputs(N_FRAMES, seed=42),
    )
    return runner.run(), board


def main():
    table, power, switcher = build_biglittle_platform()
    app = get_app("ldecode")
    print(
        f"Operating-setting ladder: {len(table)} Pareto-optimal points, "
        f"effective {table.fmin.freq_mhz:.0f}-{table.fmax.freq_mhz:.0f} MHz"
    )

    # The unmodified offline pipeline, pointed at the heterogeneous table.
    controller = build_controller(app, opps=table, config=PipelineConfig())
    prediction, board = run(table, power, switcher, controller.governor(), app)
    baseline, _ = run(
        table, power, switcher, PerformanceGovernor(table), app
    )

    print(
        f"\nperformance (pinned to A15@2000): "
        f"{baseline.energy_j:.2f} J, {baseline.miss_rate:.1%} misses"
    )
    print(
        f"prediction  (cluster-hopping)   : "
        f"{prediction.energy_j:.2f} J "
        f"({prediction.energy_j / baseline.energy_j:.0%}), "
        f"{prediction.miss_rate:.1%} misses"
    )

    by_setting = Counter()
    for job in prediction.jobs:
        setting = table.nearest(job.opp_mhz * 1e6)
        by_setting[str(setting)] += 1
    rows = sorted(
        ((name, count) for name, count in by_setting.items()),
        key=lambda r: -r[1],
    )
    print(
        "\n"
        + format_table(
            ["setting", "frames"],
            rows,
            title="Where frames ran (per-frame cluster + clock choice):",
        )
    )
    a15_frames = sum(
        count for name, count in by_setting.items() if name.startswith("A15")
    )
    print(
        f"\n{a15_frames}/{N_FRAMES} frames needed the big cluster; the rest "
        "stayed on the A7 — per-job heterogeneous scheduling from the same "
        "prediction flow, as §3.5 anticipates."
    )


if __name__ == "__main__":
    main()
