"""Drift demo: the frozen controller breaks, the adaptive one recovers.

Halfway through an ldecode run the simulated platform slows down by
x1.35 — think thermal throttling, or frames that got heavier without
changing the control-flow features the slice computes.  The paper's
frozen controller keeps predicting from its offline fit, under-predicts
every job, and misses deadlines until the end of the run.  The adaptive
governor (``repro.governors.adaptive``) watches its own residuals,
raises a drift alarm, falls back to a deadline-safe policy while a
weighted recursive-least-squares update recalibrates the model, then
re-engages prediction and finishes the run missing nothing.

Run:  python examples/drift_demo.py
"""

from repro.analysis.harness import Lab
from repro.online.inject import StepDriftJitter
from repro.platform import Board, LogNormalJitter
from repro.platform.switching import SwitchLatencyModel
from repro.runtime import TaskLoopRunner

APP = "ldecode"
N_JOBS = 240
SHIFT = 120          # job index where the platform drifts
SLOWDOWN = 1.35
BUCKET = 20          # jobs per timeline bucket


def run_drifted(lab, app, governor, seed):
    """One run with a time-triggered mid-run slowdown injected."""
    board = Board(
        opps=lab.opps,
        power=lab.power,
        switcher=SwitchLatencyModel(lab.opps, seed=seed),
    )
    board.cpu.jitter = StepDriftJitter(
        LogNormalJitter(lab.jitter_sigma, seed=seed),
        SLOWDOWN,
        shift_at_s=SHIFT * app.task.budget_s,
        clock=lambda: board.now,
    )
    runner = TaskLoopRunner(
        board=board,
        task=app.task,
        governor=governor,
        inputs=app.inputs(N_JOBS, seed=lab.seed + 11),
        interpreter=lab.interpreter,
    )
    return runner.run()


def timeline(label, jobs):
    """Miss rate per BUCKET-job window, as a little bar chart."""
    print(f"  {label}")
    for start in range(0, len(jobs), BUCKET):
        window = jobs[start:start + BUCKET]
        rate = sum(1 for j in window if j.missed) / len(window)
        marker = " <- drift" if start == SHIFT else ""
        bar = "#" * round(rate * 20)
        print(f"    jobs {start:3d}-{start + len(window) - 1:3d} "
              f"{100 * rate:5.1f}% {bar}{marker}")


def main():
    lab = Lab()
    app = lab.app(APP)
    print(f"{APP}: {N_JOBS} jobs, platform slows x{SLOWDOWN} at job {SHIFT}\n")

    frozen = run_drifted(lab, app, lab.make_governor("prediction", APP), seed=1)
    adaptive_gov = lab.make_governor("adaptive", APP)
    adaptive = run_drifted(lab, app, adaptive_gov, seed=1)
    reference = run_drifted(lab, app, lab.make_governor("performance", APP), seed=1)

    print("deadline misses over time:\n")
    timeline("prediction (frozen offline model)", frozen.jobs)
    print()
    timeline("adaptive (drift detection + online recalibration)", adaptive.jobs)

    print(f"\nthe adaptive governor raised {adaptive_gov.drift_events} drift "
          f"alarm(s), recalibrated in fallback, and re-engaged prediction "
          f"(final mode: {adaptive_gov.mode.name})")
    print(f"safety margin settled at "
          f"{adaptive_gov.predictor.margin.value:.1%} "
          f"(the paper's fixed margin: 10.0%)")

    print(f"\nenergy   performance: {reference.energy_j:7.3f} J   (1.00)")
    for name, result in (("prediction", frozen), ("adaptive", adaptive)):
        ratio = result.energy_j / reference.energy_j
        print(f"         {name}: {result.energy_j:7.3f} J   ({ratio:.2f})")
    print(f"\nmisses   frozen {frozen.miss_rate:.1%} vs "
          f"adaptive {adaptive.miss_rate:.1%} over the whole run")


if __name__ == "__main__":
    main()
