"""Scenario: open the hood of a generated controller.

Shows what the automated framework actually built for the rijndael (AES)
benchmark: the instrumented feature sites, the slice program's size
against the original, the trained model's coefficients (and which
features the Lasso dropped), per-input predictions, and the final
frequency decisions for a few concrete jobs.

Run:  python examples/inspect_predictor.py
"""

from repro.analysis.harness import Lab
from repro.analysis.render import format_table
from repro.platform.cpu import SimulatedCpu
from repro.programs.validate import static_instruction_bound


def main():
    lab = Lab()
    controller = lab.controller("rijndael")
    app = lab.app("rijndael")

    print("=== feature sites (paper Fig. 7: what got instrumented) ===")
    for site in controller.instrumented.sites:
        print(f"  {site.kind:7s} {site.site}")

    print("\n=== slice vs original (paper Fig. 8: what slicing removed) ===")
    original = static_instruction_bound(app.task.program.body, loop_bound=12)
    sliced = static_instruction_bound(controller.slice.program.body, loop_bound=12)
    print(f"  original static instruction bound : {original:,.0f}")
    print(f"  slice static instruction bound    : {sliced:,.0f}")
    print(f"  reduction                         : {original / sliced:,.0f}x")
    print(f"  variables the slice retained      : {sorted(controller.slice.relevant_vars)}")

    print("\n=== trained execution-time model (fmax anchor) ===")
    rows = []
    model = controller.predictor.model_fmax
    for column, coef in zip(controller.encoder.columns, model.coef_):
        rows.append((column.name, f"{coef * 1e6:+.3f}", "kept" if abs(coef) > 1e-12 else "DROPPED"))
    rows.append(("(intercept)", f"{model.intercept_ * 1e6:+.3f}", ""))
    print(format_table(["feature", "us per unit", "status"], rows))

    print("\n=== live decisions for three concrete jobs ===")
    interp = lab.interpreter
    cpu = SimulatedCpu()
    task_globals = app.task.program.fresh_globals()
    jobs = [
        {"n_chunks": 9, "key_kind": 0},    # small buffer, AES-128
        {"n_chunks": 14, "key_kind": 1},   # medium, AES-192
        {"n_chunks": 18, "key_kind": 2},   # large, AES-256
    ]
    rows = []
    for inputs in jobs:
        features = interp.execute_isolated(
            controller.slice.program, inputs, task_globals
        ).features
        prediction = controller.predictor.predict(features)
        opp = controller.dvfs.choose_opp(
            prediction.t_fmin_s, prediction.t_fmax_s, app.task.budget_s
        )
        actual = cpu.ideal_time(
            interp.execute_isolated(app.task.program, inputs, task_globals).work,
            lab.opps.fmax,
        )
        rows.append(
            (
                str(inputs),
                f"{actual * 1e3:.1f}",
                f"{prediction.t_fmax_s * 1e3:.1f}",
                f"{opp.freq_mhz:.0f}",
            )
        )
    print(
        format_table(
            ["job inputs", "actual@fmax[ms]", "pred@fmax[ms]", "chosen MHz"],
            rows,
        )
    )
    print(
        "\nBigger buffers and longer keys predict longer times and get "
        "higher frequencies — the mapping the paper derives automatically."
    )

    print("\n=== decision provenance: why the last job got its frequency ===")
    # The same attribution payload the governors record per decision when
    # tracing is on (see docs/decision_provenance.md): each model-space
    # feature's share of the margined predicted time at the chosen OPP.
    from repro.telemetry.provenance import build_provenance

    attribution, ladder, _generation = build_provenance(
        predictor=controller.predictor,
        dvfs=controller.dvfs,
        raw_features=features,
        prediction=prediction,
        margin=controller.predictor.margin,
        effective_budget_s=app.task.budget_s,
        switch_estimate_s=0.0,
        opp=opp,
        budget_s=app.task.budget_s,
        deadline_s=app.task.budget_s,
    )
    rows = [
        (name, f"{x:g}", f"{contribution * 1e3:+.3f}")
        for name, x, contribution in zip(
            attribution.columns, attribution.x, attribution.contributions_s
        )
        if x != 0.0 or contribution != 0.0
    ]
    rows.append(("(intercept)", "", f"{attribution.intercept_s * 1e3:+.3f}"))
    print(format_table(["model-space feature", "x", "ms of prediction"], rows))
    total = (
        sum(attribution.contributions_s)
        + attribution.intercept_s
        + attribution.adjustment_s
    )
    chosen = next(rung for rung in ladder if rung.chosen)
    print(
        f"  contributions sum to {total * 1e3:.3f} ms — exactly the "
        f"predicted time at the chosen {chosen.freq_mhz:.0f} MHz rung."
    )


if __name__ == "__main__":
    main()
