"""SLO watchdog demo: an error budget burns down as the platform drifts.

The run declares its objectives up front — at most 2% of jobs may miss
the deadline, the model may not chronically under-predict — and the
watchdog (``repro.telemetry.watch``) holds the run to them live, from
the same telemetry stream the Chrome-trace exporter reads.  Halfway
through, the platform slows down by x1.5; the frozen controller starts
missing, the burn rate spikes across both alert windows, and a
page-severity ``SloAlert`` fires long before the run ends.  Streaming
detectors flag the residual outliers and the miss-rate step as they
happen.

Run:  python examples/slo_watch_demo.py
"""

from repro.analysis.harness import Lab
from repro.online.inject import StepDriftJitter
from repro.platform import Board, LogNormalJitter
from repro.platform.switching import SwitchLatencyModel
from repro.runtime import TaskLoopRunner
from repro.telemetry import Telemetry, Watchdog
from repro.telemetry.slo import default_slos
from repro.telemetry.watch import render_dashboard

APP = "rijndael"
N_JOBS = 160
SHIFT = 80           # job index where the platform drifts
SLOWDOWN = 1.5
FRAME_EVERY = 40     # print a dashboard frame every this many jobs


def main():
    lab = Lab()
    app = lab.app(APP)
    governor = lab.make_governor("prediction", APP)

    telemetry = Telemetry(name=f"watch.{APP}")
    watchdog = Watchdog(
        specs=default_slos(budget_s=app.task.budget_s),
        telemetry=telemetry,
        on_observation=lambda wd, obs: (
            print(render_dashboard(wd.status(), title=f"job {obs.index}"))
            if (obs.index + 1) % FRAME_EVERY == 0
            else None
        ),
    )
    watchdog.attach(telemetry)

    board = Board(
        opps=lab.opps,
        power=lab.power,
        switcher=SwitchLatencyModel(lab.opps, seed=1),
    )
    board.cpu.jitter = StepDriftJitter(
        LogNormalJitter(lab.jitter_sigma, seed=1),
        SLOWDOWN,
        shift_at_s=SHIFT * app.task.budget_s,
        clock=lambda: board.now,
    )

    print(
        f"{APP}: {N_JOBS} jobs under the frozen predictive governor, "
        f"platform slows x{SLOWDOWN} at job {SHIFT}\n"
    )
    result = TaskLoopRunner(
        board=board,
        task=app.task,
        governor=governor,
        inputs=app.inputs(N_JOBS, seed=lab.seed + 11),
        interpreter=lab.interpreter,
        telemetry=telemetry,
    ).run()

    print(render_dashboard(watchdog.status(), title="final"))
    print(
        f"\nrun: {result.n_missed}/{result.n_jobs} jobs missed "
        f"({result.miss_rate:.1%}), {result.energy_j:.3f} J"
    )
    for alert in watchdog.alerts:
        print(f"SLO ALERT [{alert.severity}] at job {alert.job_index}: "
              f"{alert.message}")
    steps = [a for a in watchdog.anomalies if a.kind == "miss_rate.step"]
    outliers = [
        a for a in watchdog.anomalies if a.kind == "residual.outlier"
    ]
    print(
        f"anomalies: {len(outliers)} residual outlier(s), "
        f"{len(steps)} miss-rate step(s) "
        f"(first step at job {steps[0].job_index if steps else '-'}; "
        f"the drift hit at job {SHIFT})"
    )
    print(
        "\nthe page-severity alert is what `python -m repro watch` turns "
        "into a non-zero exit code"
    )


if __name__ == "__main__":
    main()
