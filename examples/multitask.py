"""Scenario: two annotated tasks sharing one core (paper §4.1).

A media app runs a video-decode task (ldecode-class, 50 ms budget) next
to a UI task (xpilot-class game loop, 50 ms budget, phase-shifted by
half a period).  Each task gets its own trained prediction-based
controller; the runner schedules their jobs FIFO by release time so they
never overlap, as §4.1 requires.

Run:  python examples/multitask.py
"""

from repro.analysis.render import format_table
from repro.pipeline import PipelineConfig, build_controller
from repro.platform import Board, LogNormalJitter, default_xu3_a7_table
from repro.platform.switching import SwitchLatencyModel
from repro.runtime import MultiTaskRunner, TaskStream
from repro.workloads.registry import get_app

N_JOBS = 120


def main():
    opps = default_xu3_a7_table()
    switch_table = SwitchLatencyModel(opps).microbenchmark(50)
    config = PipelineConfig()

    video = get_app("ldecode")
    ui = get_app("xpilot")
    print("Training one controller per task (offline flow, twice)...")
    video_controller = build_controller(
        video, opps, config, switch_table=switch_table
    )
    ui_controller = build_controller(ui, opps, config, switch_table=switch_table)

    board = Board(opps=opps, jitter=LogNormalJitter(0.02, seed=21))
    results = MultiTaskRunner(
        board,
        [
            TaskStream(
                video.task, video_controller.governor(), video.inputs(N_JOBS, 7)
            ),
            TaskStream(
                ui.task,
                ui_controller.governor(),
                ui.inputs(N_JOBS, 7),
                offset_s=0.025,  # half a period out of phase
            ),
        ],
    ).run()

    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.n_jobs,
                f"{result.miss_rate * 100:.1f}%",
                f"{result.mean_predictor_time_s * 1e3:.2f}",
            )
        )
    print(
        format_table(
            ["task", "jobs", "misses", "predictor[ms]"],
            rows,
            title="Two prediction-controlled tasks, one core:",
        )
    )
    print(f"\nshared-core energy: {results['ldecode'].energy_j:.2f} J")
    print(
        "Each job still gets a per-release frequency decision from its own "
        "controller;\nqueueing between tasks is visible in the records "
        "(the §7 contention problem\nis observable here, not hidden)."
    )


if __name__ == "__main__":
    main()
