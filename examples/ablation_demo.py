"""Scenario: which control-plane mechanisms actually earn their keep?

The reproduction's governor stacks several mechanisms on top of the
paper's core predict-then-pick loop: the asymmetric training objective
(§3.3), the safety margin (§3.4), program slicing (§3.2), online
recalibration, the certificate bound-skip, AIMD margin adaptation, and
the drift fallback.  An *ablation matrix* answers the natural question
— what does each one buy? — by disabling them one at a time and
replaying byte-identical job streams against the all-on baseline.

This demo ablates two components on rijndael under heavy timing jitter
(where safety mechanisms earn their keep) and prints the ranked
component-importance table.  Expect:

- ``no-safety_margin``: misses go UP, energy goes DOWN — the margin is
  exactly a performance-energy trade, and the matrix measures its price;
- ``no-asymmetric_loss``: misses go UP with little energy to show for
  it — symmetric training under-predicts, which is the expensive
  direction.

The full matrix (every component, several workloads and scenarios,
multiprocess) is the ``repro ablate`` CLI; per-job records and decision
provenance land in ``--out`` for ``repro ablate report`` to re-score.

Run:  python examples/ablation_demo.py
"""

from repro.ablation import plan_matrix, run_ablation, score_ablation
from repro.ablation.emit import ranked_table
from repro.ablation.planner import Scenario

COMPONENTS = ("asymmetric_loss", "safety_margin")


def main() -> None:
    plan = plan_matrix(
        ["rijndael"],
        seed=7,
        components=COMPONENTS,
        scenarios=[Scenario("jitter", jitter_sigma=0.10)],
        n_jobs=120,
    )
    print(
        f"running {len(plan.cells)} cells "
        f"({len(plan.variants)} variants x {plan.n_jobs} jobs)..."
    )
    result = run_ablation(plan, workers=2)
    report = score_ablation(result)

    print()
    print(ranked_table(report))
    print()

    margin = report.score_for("no-safety_margin")
    asym = report.score_for("no-asymmetric_loss")
    print(
        "reading the table: disabling the margin trades "
        f"{100 * margin.miss_rate_delta:+.1f}pp misses for "
        f"{100 * margin.energy_delta_frac:+.1f}% energy; disabling the "
        f"asymmetric objective costs {100 * asym.miss_rate_delta:+.1f}pp "
        f"misses for only {100 * asym.energy_delta_frac:+.1f}% energy."
    )


if __name__ == "__main__":
    main()
