"""Quickstart: a prediction-based DVFS controller in ~60 lines.

Builds a tiny interactive task whose work depends on its input, runs the
paper's full offline flow (instrument -> profile -> train -> slice), and
deploys the resulting controller against the simulated board, comparing
it with running flat-out at maximum frequency.

Run:  python examples/quickstart.py
"""

import random

from repro.governors.performance import PerformanceGovernor
from repro.pipeline import PipelineConfig, build_controller
from repro.platform import Board, LogNormalJitter, default_xu3_a7_table
from repro.programs import Block, Compare, Const, If, Loop, Program, Seq, Var
from repro.runtime import Task, TaskLoopRunner
from repro.workloads.base import InteractiveApp, JobTimeStats


def make_photo_filter_app() -> InteractiveApp:
    """An interactive photo filter: work scales with the edited region."""
    program = Program(
        name="photo_filter",
        body=Seq(
            [
                # Parse the gesture and set up the filter kernel.
                Block(instructions=400_000, mem_refs=300, name="setup"),
                # Heavier two-pass path when the user picked "enhance".
                If(
                    "enhance",
                    Compare("==", Var("mode"), Const(1)),
                    Block(3_000_000, 2_000, name="enhance_pass"),
                ),
                # Per-tile filtering over the touched region.
                Loop(
                    "tiles",
                    Var("n_tiles"),
                    Block(90_000, 60, name="filter_tile"),
                ),
            ]
        ),
    )
    def generate_inputs(n_jobs: int, seed: int = 0):
        rng = random.Random(seed)
        return [
            {"mode": 1 if rng.random() < 0.2 else 0,
             "n_tiles": rng.randint(10, 350)}
            for _ in range(n_jobs)
        ]

    return InteractiveApp(
        task=Task("photo_filter", program, budget_s=0.050),  # 50 ms budget
        description="interactive photo filter",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(0.3, 12.0, 33.0),  # rough expectations
    )


def run(app, governor, n_jobs=200):
    board = Board(jitter=LogNormalJitter(sigma=0.02, seed=7))
    runner = TaskLoopRunner(
        board=board,
        task=app.task,
        governor=governor,
        inputs=app.inputs(n_jobs, seed=99),
    )
    return runner.run()


def main():
    app = make_photo_filter_app()

    # The paper's offline flow, one call: instrument the task, profile it,
    # train the asymmetric-Lasso time models, slice out the predictor.
    controller = build_controller(app, config=PipelineConfig())
    print(f"feature sites instrumented : {len(controller.instrumented.sites)}")
    print(f"features the model kept    : {sorted(controller.predictor.needed_sites)}")

    opps = default_xu3_a7_table()
    baseline = run(app, PerformanceGovernor(opps))
    predictive = run(app, controller.governor())

    saving = 1.0 - predictive.energy_j / baseline.energy_j
    print(f"\nperformance governor : {baseline.energy_j:.3f} J, "
          f"{baseline.miss_rate:.1%} deadline misses")
    print(f"predictive controller: {predictive.energy_j:.3f} J, "
          f"{predictive.miss_rate:.1%} deadline misses")
    print(f"energy saving        : {saving:.1%} with the same 50 ms deadlines")


if __name__ == "__main__":
    main()
