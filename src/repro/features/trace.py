"""Profiling traces: the training data for the execution-time model.

One :class:`ProfileSample` records what one profiled job did (its raw
features) and how long it took at the two anchor frequencies the DVFS
model needs (paper §3.4 predicts ``t_fmin`` and ``t_fmax``).  A
:class:`ProfileTrace` is an ordered collection with (de)serialization so
trained models can ship with an application.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.programs.interpreter import RawFeatures

__all__ = ["ProfileSample", "ProfileTrace"]


@dataclass(frozen=True)
class ProfileSample:
    """One profiled job execution.

    Attributes:
        features: Raw control-flow features counted during the job.
        time_fmax_s: Measured execution time at maximum frequency.
        time_fmin_s: Measured execution time at minimum frequency.
    """

    features: RawFeatures
    time_fmax_s: float
    time_fmin_s: float

    def __post_init__(self) -> None:
        if self.time_fmax_s < 0 or self.time_fmin_s < 0:
            raise ValueError("profiled times must be non-negative")


class ProfileTrace:
    """An append-only sequence of profile samples."""

    def __init__(self, samples: Sequence[ProfileSample] = ()):
        self._samples: list[ProfileSample] = list(samples)

    def append(self, sample: ProfileSample) -> None:
        """Add one profiled job to the trace."""
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[ProfileSample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> ProfileSample:
        return self._samples[index]

    @property
    def raw_features(self) -> list[RawFeatures]:
        return [s.features for s in self._samples]

    def times_s(self, anchor: str) -> np.ndarray:
        """Vector of profiled times for one anchor ("fmax" or "fmin")."""
        if anchor == "fmax":
            return np.array([s.time_fmax_s for s in self._samples])
        if anchor == "fmin":
            return np.array([s.time_fmin_s for s in self._samples])
        raise ValueError(f"anchor must be 'fmax' or 'fmin', got {anchor!r}")

    # -- persistence ---------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the trace (features and times) to a JSON string."""
        payload = [
            {
                "counters": s.features.counters,
                "calls": {k: list(v) for k, v in s.features.call_addresses.items()},
                "t_fmax": s.time_fmax_s,
                "t_fmin": s.time_fmin_s,
            }
            for s in self._samples
        ]
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "ProfileTrace":
        """Inverse of :meth:`to_json`."""
        records = json.loads(text)
        samples = []
        for record in records:
            features = RawFeatures(
                counters={k: float(v) for k, v in record["counters"].items()},
                call_addresses={
                    k: [int(a) for a in v] for k, v in record["calls"].items()
                },
            )
            samples.append(
                ProfileSample(
                    features=features,
                    time_fmax_s=float(record["t_fmax"]),
                    time_fmin_s=float(record["t_fmin"]),
                )
            )
        return cls(samples)

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ProfileTrace":
        return cls.from_json(Path(path).read_text())
