"""Feature encoding: raw control-flow features to numeric vectors.

Branch-taken and loop-iteration counters map directly to columns.  Call
sites are categorical — "each unique address represents a different control
flow" (paper §3.3) — so every (site, address) pair observed during
profiling becomes a one-hot column indicating whether that address was
called.  Addresses never seen during profiling encode as all-zeros for
their site, the honest behaviour of a fixed one-hot vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.programs.instrument import FeatureSite
from repro.programs.interpreter import RawFeatures

__all__ = ["FeatureColumn", "FeatureEncoder"]


@dataclass(frozen=True)
class FeatureColumn:
    """One column of the encoded feature matrix.

    Attributes:
        name: Human-readable column name (``site`` or ``site@address``).
        site: The control site this column derives from.
        kind: "branch", "loop", or "call".
        address: The one-hot address for call columns, ``None`` otherwise.
    """

    name: str
    site: str
    kind: str
    address: int | None = None


class FeatureEncoder:
    """Fits a column vocabulary from profiling data, then encodes vectors.

    The encoder is immutable once fitted; at run time encoding must be
    cheap and must not grow the vocabulary (the model was trained against
    a fixed set of columns).
    """

    def __init__(self, sites: Sequence[FeatureSite]):
        if not sites:
            raise ValueError("FeatureEncoder requires at least one site")
        labels = [s.site for s in sites]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate site labels in schema")
        self._sites = tuple(sites)
        self._columns: tuple[FeatureColumn, ...] | None = None

    @property
    def is_fitted(self) -> bool:
        return self._columns is not None

    @property
    def columns(self) -> tuple[FeatureColumn, ...]:
        self._require_fitted()
        assert self._columns is not None
        return self._columns

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @classmethod
    def from_columns(
        cls,
        sites: Sequence[FeatureSite],
        columns: Sequence[FeatureColumn],
    ) -> "FeatureEncoder":
        """Rebuild an already-fitted encoder (controller persistence)."""
        encoder = cls(sites)
        known = {s.site for s in sites}
        for column in columns:
            if column.site not in known:
                raise ValueError(
                    f"column {column.name!r} references unknown site"
                )
        encoder._columns = tuple(columns)
        return encoder

    def fit(self, samples: Iterable[RawFeatures]) -> "FeatureEncoder":
        """Build the column vocabulary from profiled feature records.

        Counter sites always get a column (a counter that never fires is a
        legitimate all-zero feature).  Call sites get one column per
        distinct address observed anywhere in ``samples``.
        """
        samples = list(samples)
        addresses: dict[str, set[int]] = {
            s.site: set() for s in self._sites if s.kind == "call"
        }
        for raw in samples:
            for site, addrs in raw.call_addresses.items():
                if site in addresses:
                    addresses[site].update(addrs)
        columns: list[FeatureColumn] = []
        for site in self._sites:
            if site.kind == "call":
                for address in sorted(addresses[site.site]):
                    columns.append(
                        FeatureColumn(
                            name=f"{site.site}@{address}",
                            site=site.site,
                            kind="call",
                            address=address,
                        )
                    )
            else:
                columns.append(
                    FeatureColumn(name=site.site, site=site.site, kind=site.kind)
                )
        self._columns = tuple(columns)
        return self

    def encode(self, raw: RawFeatures) -> np.ndarray:
        """Encode one feature record as a float vector."""
        self._require_fitted()
        out = np.zeros(self.n_columns)
        for j, column in enumerate(self.columns):
            if column.kind == "call":
                called = raw.call_addresses.get(column.site, ())
                out[j] = 1.0 if column.address in called else 0.0
            else:
                out[j] = raw.counter(column.site)
        return out

    def encode_matrix(self, samples: Sequence[RawFeatures]) -> np.ndarray:
        """Encode many records as an (n_samples, n_columns) matrix."""
        self._require_fitted()
        if not samples:
            return np.zeros((0, self.n_columns))
        return np.stack([self.encode(raw) for raw in samples])

    def sites_for_columns(self, mask: Sequence[bool]) -> frozenset[str]:
        """Site labels behind the selected (True) columns.

        This is the bridge from model sparsity back to program slicing:
        the sites behind zero-coefficient columns need not be computed by
        the prediction slice (paper §3.3/§4.2 "feature selection").
        """
        self._require_fitted()
        if len(mask) != self.n_columns:
            raise ValueError(
                f"mask length {len(mask)} != column count {self.n_columns}"
            )
        return frozenset(
            column.site
            for column, selected in zip(self.columns, mask)
            if selected
        )

    def _require_fitted(self) -> None:
        if self._columns is None:
            raise RuntimeError("FeatureEncoder used before fit()")
