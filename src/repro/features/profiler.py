"""Offline profiler: runs an instrumented task over sample inputs.

This is the "Profile" stage of the paper's Fig. 13.  Each profiled job
executes the instrumented program with live (persisting) globals so
program state evolves exactly as it would in deployment, and records the
measured execution time at the two anchor frequencies.  Timing noise is
taken from the CPU's jitter model — profiling on real hardware sees noisy
times too, and the asymmetric training objective is designed around that.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.features.trace import ProfileSample, ProfileTrace
from repro.platform.cpu import SimulatedCpu
from repro.platform.opp import OppTable
from repro.programs.expr import Value
from repro.programs.instrument import InstrumentedProgram
from repro.programs.interpreter import Interpreter

__all__ = ["Profiler"]

InputGenerator = Iterable[Mapping[str, Value]]


class Profiler:
    """Collects (features, time) training pairs for a task.

    Attributes:
        interpreter: Semantic executor for the IR.
        cpu: Timing model (bring the jitter you expect in deployment).
        opps: Operating points; profiling anchors at ``fmin`` and ``fmax``.
    """

    def __init__(
        self,
        interpreter: Interpreter,
        cpu: SimulatedCpu,
        opps: OppTable,
    ):
        self.interpreter = interpreter
        self.cpu = cpu
        self.opps = opps

    def profile(
        self,
        instrumented: InstrumentedProgram,
        inputs: InputGenerator,
        globals_: dict[str, Value] | None = None,
    ) -> ProfileTrace:
        """Run every input through the instrumented task; return the trace.

        Args:
            instrumented: Output of the instrumenter.
            inputs: Sample job inputs, in job order (state evolves across
                them via the shared globals).
            globals_: Starting task state; fresh state by default.
        """
        program = instrumented.program
        if globals_ is None:
            globals_ = program.fresh_globals()
        trace = ProfileTrace()
        for job_inputs in inputs:
            result = self.interpreter.execute(program, job_inputs, globals_)
            trace.append(
                ProfileSample(
                    features=result.features,
                    time_fmax_s=self.cpu.execution_time(
                        result.work, self.opps.fmax
                    ),
                    time_fmin_s=self.cpu.execution_time(
                        result.work, self.opps.fmin
                    ),
                )
            )
        if len(trace) == 0:
            raise ValueError("profiling produced no samples (empty input set)")
        return trace
