"""Feature extraction: encoding, profiling traces, and the profiler."""

from repro.features.encoding import FeatureColumn, FeatureEncoder
from repro.features.profiler import Profiler
from repro.features.trace import ProfileSample, ProfileTrace

__all__ = [
    "FeatureColumn",
    "FeatureEncoder",
    "Profiler",
    "ProfileSample",
    "ProfileTrace",
]
