"""The asymmetric Lasso execution-time model.

Wraps the FISTA solver with the practical details of a usable estimator:
an unpenalized intercept, internal column standardization (so the L1
weight means the same thing for a 0/1 one-hot column and a 10^5-iteration
loop counter), and the selected-feature mask that drives program slicing.
"""

from __future__ import annotations

import numpy as np

from repro.models.solver import SolverResult, solve_asymmetric_lasso

__all__ = ["AsymmetricLassoModel"]


class AsymmetricLassoModel:
    """Linear model fit with the over/under-asymmetric Lasso objective.

    Attributes:
        alpha: Under-prediction penalty weight (paper default: 100).
        gamma: L1 sparsity weight; 0 disables feature selection.
        coef_: Fitted coefficients in *original* feature units.
        intercept_: Fitted intercept.
    """

    def __init__(
        self,
        alpha: float = 100.0,
        gamma: float = 0.0,
        max_iter: int = 5000,
        tol: float = 1e-9,
    ):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        self.alpha = alpha
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.solver_result_: SolverResult | None = None

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    @classmethod
    def from_coefficients(
        cls,
        coef: np.ndarray,
        intercept: float,
        alpha: float = 100.0,
        gamma: float = 0.0,
    ) -> "AsymmetricLassoModel":
        """Rebuild a fitted model from stored coefficients (§4.2:
        developers distribute trained coefficients with the program)."""
        model = cls(alpha=alpha, gamma=gamma)
        model.coef_ = np.asarray(coef, dtype=float)
        model.intercept_ = float(intercept)
        return model

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        gamma_weights: np.ndarray | None = None,
    ) -> "AsymmetricLassoModel":
        """Fit coefficients to profiled (features, time) pairs.

        Columns are standardized internally; a zero-variance column can
        never earn a coefficient (it is indistinguishable from the
        intercept), which also keeps the solver well-conditioned.

        Args:
            X: (n_samples, n_features) feature matrix.
            y: (n_samples,) profiled times.
            gamma_weights: Optional per-feature L1 multipliers (cost-aware
                selection, paper §3.5): a feature with weight w needs w
                times the explanatory power to survive.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(f"incompatible shapes X{X.shape}, y{y.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")

        means = X.mean(axis=0)
        scales = X.std(axis=0)
        live = scales > 1e-12
        safe_scales = np.where(live, scales, 1.0)
        X_std = (X - means) / safe_scales
        X_std[:, ~live] = 0.0

        design = np.hstack([X_std, np.ones((X.shape[0], 1))])
        penalty_mask = np.append(np.ones(X.shape[1], dtype=bool), False)
        weights = None
        if gamma_weights is not None:
            weights = np.append(np.asarray(gamma_weights, dtype=float), 1.0)
        result = solve_asymmetric_lasso(
            design,
            y,
            alpha=self.alpha,
            gamma=self.gamma,
            penalty_mask=penalty_mask,
            max_iter=self.max_iter,
            tol=self.tol,
            gamma_weights=weights,
        )
        std_coef = result.beta[:-1]
        std_coef[~live] = 0.0
        self.coef_ = std_coef / safe_scales
        self.intercept_ = float(result.beta[-1] - (self.coef_ * means).sum())
        self.solver_result_ = result
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted times for rows of ``X``."""
        if self.coef_ is None:
            raise RuntimeError("AsymmetricLassoModel used before fit()")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_

    def predict_one(self, x: np.ndarray) -> float:
        """Predicted time for a single feature vector."""
        return float(self.predict(np.asarray(x, dtype=float).reshape(1, -1))[0])

    def selected_mask(self, threshold: float = 1e-12) -> np.ndarray:
        """Boolean mask of features with non-zero coefficients.

        Sites behind all-False columns can be dropped from the prediction
        slice — the coupling between the Lasso and slicing (paper §4.2).
        """
        if self.coef_ is None:
            raise RuntimeError("AsymmetricLassoModel used before fit()")
        return np.abs(self.coef_) > threshold

    @property
    def n_selected(self) -> int:
        return int(self.selected_mask().sum())
