"""The execution-time predictor: encoder + two anchor models + margin.

The DVFS decision needs the job's predicted time at both anchor
frequencies (paper §3.4), so two coefficient vectors are trained on the
same features — one against times profiled at fmax, one at fmin.  A
safety margin (10% by default) inflates both predictions to absorb
run-to-run timing noise.

Feature selection for slicing takes the union of the two models'
non-zero coefficient masks: a site is only droppable if *neither* anchor
model needs it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.encoding import FeatureEncoder
from repro.features.trace import ProfileTrace
from repro.models.asymmetric import AsymmetricLassoModel
from repro.models.poly import PolynomialExpansion
from repro.programs.interpreter import RawFeatures

__all__ = ["TimePrediction", "ExecutionTimePredictor"]


@dataclass(frozen=True)
class TimePrediction:
    """Margin-inflated anchor-time predictions for one job."""

    t_fmax_s: float
    t_fmin_s: float


class ExecutionTimePredictor:
    """Maps raw control-flow features to anchor execution times."""

    def __init__(
        self,
        encoder: FeatureEncoder,
        model_fmax: AsymmetricLassoModel,
        model_fmin: AsymmetricLassoModel,
        margin: float = 0.10,
        expansion: PolynomialExpansion | None = None,
    ):
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if not (model_fmax.is_fitted and model_fmin.is_fitted):
            raise ValueError("both anchor models must be fitted")
        if expansion is not None and not expansion.is_fitted:
            raise ValueError("expansion must be fitted")
        self.encoder = encoder
        self.model_fmax = model_fmax
        self.model_fmin = model_fmin
        self.margin = margin
        self.expansion = expansion

    @classmethod
    def train(
        cls,
        encoder: FeatureEncoder,
        trace: ProfileTrace,
        alpha: float = 100.0,
        gamma: float = 0.0,
        margin: float = 0.10,
        max_iter: int = 5000,
        degree: int = 1,
        feature_costs: np.ndarray | None = None,
    ) -> "ExecutionTimePredictor":
        """Fit both anchor models from a profiling trace.

        Args:
            degree: Model order.  1 is the paper's linear model; 2 adds
                squares and pairwise products (the §3.5 extension — §5.3
                found little gain, which the ablation bench verifies).
            feature_costs: Optional per-base-column relative generation
                costs (>= 1).  They become L1 multipliers, so expensive
                features must earn their slice time (the §3.5 "overhead
                … as penalties in the optimization objective" idea).  For
                expanded terms, a product inherits the max of its
                factors' costs.
        """
        X = encoder.encode_matrix(trace.raw_features)
        expansion = None
        gamma_weights = None
        if feature_costs is not None:
            feature_costs = np.asarray(feature_costs, dtype=float)
            if feature_costs.shape != (encoder.n_columns,):
                raise ValueError(
                    "feature_costs length must equal encoder columns"
                )
            gamma_weights = feature_costs
        if degree > 1:
            expansion = PolynomialExpansion(degree).fit(encoder.n_columns)
            X = expansion.transform(X)
            if gamma_weights is not None:
                gamma_weights = np.array(
                    [
                        max(feature_costs[i] for i in term)
                        for term in expansion.terms
                    ]
                )
        model_fmax = AsymmetricLassoModel(
            alpha=alpha, gamma=gamma, max_iter=max_iter
        ).fit(X, trace.times_s("fmax"), gamma_weights=gamma_weights)
        model_fmin = AsymmetricLassoModel(
            alpha=alpha, gamma=gamma, max_iter=max_iter
        ).fit(X, trace.times_s("fmin"), gamma_weights=gamma_weights)
        return cls(
            encoder, model_fmax, model_fmin, margin=margin, expansion=expansion
        )

    def _encode(self, raw: RawFeatures) -> np.ndarray:
        x = self.encoder.encode(raw)
        if self.expansion is not None:
            x = self.expansion.transform_one(x)
        return x

    def model_space(self, raw: RawFeatures) -> np.ndarray:
        """The feature vector the anchor models consume (encoded and,
        when a polynomial expansion is fitted, expanded).  Decision
        provenance records this vector so a prediction can be re-derived
        offline without re-running the slice."""
        return self._encode(raw)

    def predict(self, raw: RawFeatures) -> TimePrediction:
        """Anchor-time predictions for one job, with the margin applied.

        Times are clamped to be non-negative; a linear model extrapolating
        on unusual features can go below zero, which is physically
        meaningless and would confuse the DVFS model.
        """
        x = self._encode(raw)
        factor = 1.0 + self.margin
        return TimePrediction(
            t_fmax_s=max(self.model_fmax.predict_one(x), 0.0) * factor,
            t_fmin_s=max(self.model_fmin.predict_one(x), 0.0) * factor,
        )

    def predict_raw(self, raw: RawFeatures) -> TimePrediction:
        """Predictions without the margin (for error analysis, Fig. 19)."""
        x = self._encode(raw)
        return TimePrediction(
            t_fmax_s=float(self.model_fmax.predict_one(x)),
            t_fmin_s=float(self.model_fmin.predict_one(x)),
        )

    def _base_column_mask(self) -> np.ndarray:
        """Selected base columns, folding expanded terms back if needed."""
        mask = self.model_fmax.selected_mask() | self.model_fmin.selected_mask()
        if self.expansion is not None:
            mask = self.expansion.base_mask(mask)
        return mask

    @property
    def needed_sites(self) -> frozenset[str]:
        """Sites the prediction slice must compute (union of both anchors)."""
        return self.encoder.sites_for_columns(list(self._base_column_mask()))

    @property
    def n_selected_columns(self) -> int:
        """Selected base feature columns (expanded terms folded back)."""
        return int(np.sum(self._base_column_mask()))
