"""Prediction-error statistics (Fig. 19's box-and-whisker data).

The paper reports signed errors where positive numbers are
**over-prediction** (predicted > actual; safe, costs energy) and negative
numbers are **under-prediction** (predicted < actual; risks a deadline
miss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorSummary", "signed_errors", "summarize_errors"]


@dataclass(frozen=True)
class ErrorSummary:
    """Box-and-whisker summary of signed prediction errors (seconds).

    Whiskers extend to the farthest point within 1.5 IQR of the box, as
    in the paper's plots; anything beyond is an outlier.
    """

    mean: float
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    n_outliers: int
    over_rate: float
    under_rate: float
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def signed_errors(predicted, actual) -> np.ndarray:
    """Signed errors, positive = over-prediction."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}"
        )
    return predicted - actual


def summarize_errors(errors) -> ErrorSummary:
    """Box-plot statistics over a vector of signed errors."""
    errors = np.asarray(errors, dtype=float)
    if errors.size == 0:
        raise ValueError("cannot summarize an empty error vector")
    q1, median, q3 = np.percentile(errors, [25, 50, 75])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inliers = errors[(errors >= low_fence) & (errors <= high_fence)]
    return ErrorSummary(
        mean=float(errors.mean()),
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        whisker_low=float(inliers.min()),
        whisker_high=float(inliers.max()),
        n_outliers=int(errors.size - inliers.size),
        over_rate=float((errors > 0).mean()),
        under_rate=float((errors < 0).mean()),
        n=int(errors.size),
    )
