"""Polynomial feature expansion (paper §3.3 / §3.5 extension).

The paper uses a linear model and notes that "higher-order or
non-polynomial models may provide better accuracy" but found "relatively
little gain to be had from improved prediction" (§5.3).  This module
provides the degree-2 expansion so that claim can be tested rather than
assumed: squares and pairwise products of the base features, with exact
bookkeeping of which base columns each term involves (needed to map model
sparsity back to program slicing).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PolynomialExpansion"]


class PolynomialExpansion:
    """Degree-2 expansion: x -> [x, x_i * x_j for i <= j].

    The expansion must be fitted (to learn the base column count) before
    transforming; terms are deterministic and ordered: all base columns
    first, then products in lexicographic (i, j) order.
    """

    def __init__(self, degree: int = 2):
        if degree not in (1, 2):
            raise ValueError(f"only degrees 1 and 2 are supported, got {degree}")
        self.degree = degree
        self._terms: list[tuple[int, ...]] | None = None
        self._n_base: int | None = None

    @property
    def is_fitted(self) -> bool:
        return self._terms is not None

    @property
    def n_terms(self) -> int:
        self._require_fitted()
        assert self._terms is not None
        return len(self._terms)

    @property
    def terms(self) -> list[tuple[int, ...]]:
        """Base-column index tuples, one per output term."""
        self._require_fitted()
        assert self._terms is not None
        return list(self._terms)

    def fit(self, n_columns: int) -> "PolynomialExpansion":
        """Lay out the term list for ``n_columns`` base features."""
        if n_columns < 1:
            raise ValueError("need at least one base column")
        terms: list[tuple[int, ...]] = [(i,) for i in range(n_columns)]
        if self.degree >= 2:
            for i in range(n_columns):
                for j in range(i, n_columns):
                    terms.append((i, j))
        self._terms = terms
        self._n_base = n_columns
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Expand an (n_samples, n_base) matrix to (n_samples, n_terms)."""
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_base:
            raise ValueError(
                f"expected (n, {self._n_base}) matrix, got shape {X.shape}"
            )
        assert self._terms is not None
        columns = []
        for term in self._terms:
            col = np.ones(X.shape[0])
            for index in term:
                col = col * X[:, index]
            columns.append(col)
        return np.stack(columns, axis=1)

    def transform_one(self, x: np.ndarray) -> np.ndarray:
        """Expand a single feature vector."""
        return self.transform(np.asarray(x, dtype=float).reshape(1, -1))[0]

    def base_mask(self, term_mask) -> np.ndarray:
        """Base columns involved in any selected term.

        This is how expanded-model sparsity maps back to the feature
        sites the prediction slice must compute: a base column survives
        if ANY selected term touches it.
        """
        self._require_fitted()
        term_mask = np.asarray(term_mask, dtype=bool)
        if term_mask.shape != (self.n_terms,):
            raise ValueError(
                f"term mask length {term_mask.shape} != n_terms {self.n_terms}"
            )
        assert self._terms is not None and self._n_base is not None
        mask = np.zeros(self._n_base, dtype=bool)
        for term, selected in zip(self._terms, term_mask):
            if selected:
                for index in term:
                    mask[index] = True
        return mask

    def _require_fitted(self) -> None:
        if self._terms is None:
            raise RuntimeError("PolynomialExpansion used before fit()")
