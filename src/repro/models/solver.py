"""Convex solver for the paper's asymmetric Lasso objective.

The execution-time model is fit by minimizing (paper §3.3):

    F(beta) = ||pos(X beta - y)||^2  +  alpha * ||neg(X beta - y)||^2
              + gamma * ||beta||_1

where ``pos``/``neg`` split the residual into over- and under-prediction,
``alpha > 1`` penalizes under-prediction (which causes deadline misses)
more than over-prediction (which merely wastes energy), and the L1 term
drives coefficients to exactly zero so the prediction slice can skip
computing those features.

The objective is convex: the smooth part is a piecewise quadratic with
Lipschitz-continuous gradient, and the L1 term is handled by proximal
(soft-threshold) steps.  We solve it with FISTA (accelerated proximal
gradient), which needs nothing beyond numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SolverResult", "asymmetric_lasso_objective", "solve_asymmetric_lasso"]


@dataclass(frozen=True)
class SolverResult:
    """Solution of one fit.

    Attributes:
        beta: Coefficient vector.
        objective: Final objective value F(beta).
        n_iter: Iterations actually used.
        converged: Whether the relative-change tolerance was met.
    """

    beta: np.ndarray
    objective: float
    n_iter: int
    converged: bool


def asymmetric_lasso_objective(
    X: np.ndarray,
    y: np.ndarray,
    beta: np.ndarray,
    alpha: float,
    gamma: float,
    penalty_mask: np.ndarray | None = None,
    gamma_weights: np.ndarray | None = None,
) -> float:
    """Evaluate F(beta); used for tests and convergence diagnostics."""
    residual = X @ beta - y
    over = np.maximum(residual, 0.0)
    under = np.maximum(-residual, 0.0)
    weights = (
        np.ones(beta.shape[0])
        if gamma_weights is None
        else np.asarray(gamma_weights, dtype=float)
    )
    weighted = np.abs(beta) * weights
    if penalty_mask is None:
        l1 = weighted.sum()
    else:
        l1 = weighted[penalty_mask].sum()
    return float(over @ over + alpha * (under @ under) + gamma * l1)


def solve_asymmetric_lasso(
    X: np.ndarray,
    y: np.ndarray,
    alpha: float = 100.0,
    gamma: float = 0.0,
    penalty_mask: np.ndarray | None = None,
    max_iter: int = 5000,
    tol: float = 1e-9,
    gamma_weights: np.ndarray | None = None,
) -> SolverResult:
    """Minimize the asymmetric Lasso objective with FISTA.

    Args:
        X: (n_samples, n_features) design matrix.
        y: (n_samples,) targets.
        alpha: Under-prediction penalty weight (>= 1 in practice; the
            paper sweeps {1, 10, 100, 1000} and settles on 100).
        gamma: L1 sparsity weight (>= 0).
        penalty_mask: Boolean mask of coefficients the L1 term applies to;
            use it to leave the intercept column unpenalized.  ``None``
            penalizes everything.
        max_iter: Iteration cap.
        tol: Relative change in beta below which we stop.
        gamma_weights: Optional per-coefficient L1 multipliers, realizing
            the paper's §3.5 idea of penalizing features by their
            generation overhead: expensive features need proportionally
            more explanatory power to earn a place in the model.

    Returns:
        The fitted coefficients and solver diagnostics.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty design matrix")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    n_features = X.shape[1]
    if penalty_mask is None:
        penalty_mask = np.ones(n_features, dtype=bool)
    else:
        penalty_mask = np.asarray(penalty_mask, dtype=bool)
        if penalty_mask.shape != (n_features,):
            raise ValueError("penalty_mask length must equal feature count")
    if gamma_weights is None:
        gamma_weights = np.ones(n_features)
    else:
        gamma_weights = np.asarray(gamma_weights, dtype=float)
        if gamma_weights.shape != (n_features,):
            raise ValueError("gamma_weights length must equal feature count")
        if np.any(gamma_weights < 0):
            raise ValueError("gamma_weights must be non-negative")

    # Lipschitz constant of the smooth gradient: 2 * max(1, alpha) * sigma_max(X)^2.
    sigma_max = _spectral_norm(X)
    lipschitz = 2.0 * max(1.0, alpha) * sigma_max**2
    if lipschitz == 0.0:
        # X is all zeros; the optimum is beta = 0.
        beta = np.zeros(n_features)
        return SolverResult(
            beta=beta,
            objective=asymmetric_lasso_objective(
                X, y, beta, alpha, gamma, penalty_mask, gamma_weights
            ),
            n_iter=0,
            converged=True,
        )
    step = 1.0 / lipschitz
    thresholds = gamma * step * gamma_weights

    beta = np.zeros(n_features)
    momentum = beta.copy()
    t_accel = 1.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        residual = X @ momentum - y
        weights = np.where(residual >= 0.0, 1.0, alpha)
        gradient = 2.0 * (X.T @ (weights * residual))
        candidate = momentum - step * gradient
        new_beta = candidate.copy()
        if gamma > 0:
            penalized = candidate[penalty_mask]
            new_beta[penalty_mask] = np.sign(penalized) * np.maximum(
                np.abs(penalized) - thresholds[penalty_mask], 0.0
            )
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_accel**2)) / 2.0
        momentum = new_beta + ((t_accel - 1.0) / t_next) * (new_beta - beta)
        delta = np.linalg.norm(new_beta - beta)
        scale = max(np.linalg.norm(beta), 1e-12)
        beta = new_beta
        t_accel = t_next
        if delta / scale < tol:
            converged = True
            break

    return SolverResult(
        beta=beta,
        objective=asymmetric_lasso_objective(
            X, y, beta, alpha, gamma, penalty_mask, gamma_weights
        ),
        n_iter=iterations,
        converged=converged,
    )


def _spectral_norm(X: np.ndarray, n_iter: int = 100) -> float:
    """Largest singular value of X via power iteration on X^T X."""
    n_features = X.shape[1]
    if n_features == 0:
        return 0.0
    gram = X.T @ X
    # Deterministic start vector keeps fits reproducible.
    v = np.ones(n_features) / np.sqrt(n_features)
    eig = 0.0
    for _ in range(n_iter):
        w = gram @ v
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0
        v = w / norm
        eig = norm
    return float(np.sqrt(eig))
