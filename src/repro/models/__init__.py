"""Prediction models: asymmetric Lasso, OLS baseline, DVFS model, metrics."""

from repro.models.asymmetric import AsymmetricLassoModel
from repro.models.dvfs import DvfsComponents, DvfsModel
from repro.models.linear import OlsModel
from repro.models.metrics import ErrorSummary, signed_errors, summarize_errors
from repro.models.poly import PolynomialExpansion
from repro.models.solver import (
    SolverResult,
    asymmetric_lasso_objective,
    solve_asymmetric_lasso,
)
from repro.models.timing import ExecutionTimePredictor, TimePrediction

__all__ = [
    "AsymmetricLassoModel",
    "DvfsComponents",
    "DvfsModel",
    "OlsModel",
    "ErrorSummary",
    "signed_errors",
    "summarize_errors",
    "PolynomialExpansion",
    "SolverResult",
    "asymmetric_lasso_objective",
    "solve_asymmetric_lasso",
    "ExecutionTimePredictor",
    "TimePrediction",
]
