"""The DVFS frequency-performance model (paper §3.4).

Execution time follows the classical linear model

    t(f) = T_mem + N_dep / f

validated by the paper's Fig. 9.  Given predicted times at the two anchor
frequencies, the per-job components are

    N_dep = fmin * fmax * (t_fmin - t_fmax) / (fmax - fmin)
    T_mem = (fmax * t_fmax - fmin * t_fmin) / (fmax - fmin)

and the minimum frequency meeting a budget is

    f_budget = N_dep / (t_budget - T_mem)

quantized up to the next available operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.platform.opp import OperatingPoint, OppTable

__all__ = ["DvfsComponents", "DvfsModel"]


@dataclass(frozen=True)
class DvfsComponents:
    """Per-job decomposition of predicted time into model components.

    Attributes:
        tmem_s: Frequency-independent (memory-bound) seconds.
        ndep_cycles: Frequency-dependent cycles.
    """

    tmem_s: float
    ndep_cycles: float

    def time_at(self, freq_hz: float) -> float:
        """Model-predicted execution time at ``freq_hz``."""
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_hz}")
        return self.tmem_s + self.ndep_cycles / freq_hz


class DvfsModel:
    """Turns anchor-time predictions into a frequency decision."""

    def __init__(self, opps: OppTable):
        if len(opps) < 2:
            raise ValueError("DVFS control needs at least two operating points")
        self.opps = opps

    def components(self, t_fmin_s: float, t_fmax_s: float) -> DvfsComponents:
        """Fit T_mem and N_dep from times at the two anchor frequencies.

        Predictions are only predictions: if they are inconsistent with
        the physical model (t_fmin < t_fmax, or a negative T_mem), the
        offending component clamps to zero and the other absorbs the
        time, keeping downstream math finite and conservative.
        """
        fmin = self.opps.fmin.freq_hz
        fmax = self.opps.fmax.freq_hz
        span = fmax - fmin
        ndep = fmin * fmax * (t_fmin_s - t_fmax_s) / span
        tmem = (fmax * t_fmax_s - fmin * t_fmin_s) / span
        if ndep < 0.0:
            # Predicted *faster* at low frequency: treat all time as memory.
            return DvfsComponents(tmem_s=max(t_fmax_s, 0.0), ndep_cycles=0.0)
        if tmem < 0.0:
            # All time scales with frequency.
            return DvfsComponents(
                tmem_s=0.0, ndep_cycles=max(t_fmax_s, 0.0) * fmax
            )
        return DvfsComponents(tmem_s=tmem, ndep_cycles=ndep)

    def freq_for_budget(
        self, components: DvfsComponents, budget_s: float
    ) -> float:
        """Ideal continuous frequency (Hz) that just meets ``budget_s``.

        Returns ``math.inf`` when no finite frequency can meet the budget
        (the memory-bound time alone exceeds it) — the caller will then
        saturate at fmax and accept the likely miss.
        """
        if budget_s <= 0:
            return math.inf
        slack = budget_s - components.tmem_s
        if slack <= 0:
            return math.inf
        if components.ndep_cycles == 0:
            return self.opps.fmin.freq_hz
        return components.ndep_cycles / slack

    def choose_opp(
        self, t_fmin_s: float, t_fmax_s: float, budget_s: float
    ) -> OperatingPoint:
        """End-to-end decision: anchor times + budget -> operating point.

        The chosen point is the *smallest allowed frequency greater than
        or equal to* the ideal frequency (paper §3.4), saturating at fmax.
        """
        components = self.components(t_fmin_s, t_fmax_s)
        ideal = self.freq_for_budget(components, budget_s)
        if math.isinf(ideal):
            return self.opps.fmax
        return self.opps.lowest_at_or_above(ideal)
