"""Ordinary least squares baseline model.

The paper contrasts its asymmetric objective with plain least squares
("it weighs negative and positive errors equally").  OLS is kept as a
baseline so the ablation benchmarks can show what the asymmetric penalty
buys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OlsModel"]


class OlsModel:
    """Least-squares linear model ``y = x . coef + intercept``."""

    def __init__(self):
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OlsModel":
        """Fit with numpy's lstsq (minimum-norm solution when singular)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(f"incompatible shapes X{X.shape}, y{y.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        design = np.hstack([X, np.ones((X.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for rows of ``X``."""
        if self.coef_ is None:
            raise RuntimeError("OlsModel used before fit()")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_

    def predict_one(self, x: np.ndarray) -> float:
        """Predicted target for a single feature vector."""
        return float(self.predict(np.asarray(x, dtype=float).reshape(1, -1))[0])
