"""JSON (de)serialization of programs — expressions and statements.

Needed so a generated controller can ship with an application (paper
§4.2: developers "distribute the trained model coefficients with the
program"; the prediction slice is a program, so it must serialize too).

The format is a type-tagged nested dict, stable across versions of this
library: every node is ``{"t": "<TypeName>", ...fields}``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.programs.expr import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    IfExpr,
    UnaryOp,
    Var,
)
from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)

__all__ = [
    "expr_to_dict",
    "expr_from_dict",
    "stmt_to_dict",
    "stmt_from_dict",
    "program_to_dict",
    "program_from_dict",
    "program_to_json",
    "program_from_json",
]


# -- expressions ---------------------------------------------------------------
def expr_to_dict(expr: Expr) -> dict[str, Any]:
    """Type-tagged dict for an expression tree."""
    if isinstance(expr, Const):
        return {"t": "Const", "value": expr.value}
    if isinstance(expr, Var):
        return {"t": "Var", "name": expr.name}
    if isinstance(expr, BinOp):
        return {
            "t": "BinOp",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, UnaryOp):
        return {
            "t": "UnaryOp",
            "op": expr.op,
            "operand": expr_to_dict(expr.operand),
        }
    if isinstance(expr, Compare):
        return {
            "t": "Compare",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, BoolOp):
        return {
            "t": "BoolOp",
            "op": expr.op,
            "operands": [expr_to_dict(o) for o in expr.operands],
        }
    if isinstance(expr, IfExpr):
        return {
            "t": "IfExpr",
            "cond": expr_to_dict(expr.cond),
            "then": expr_to_dict(expr.then),
            "orelse": expr_to_dict(expr.orelse),
        }
    raise TypeError(f"cannot serialize expression type {type(expr).__name__}")


def expr_from_dict(data: dict[str, Any]) -> Expr:
    """Inverse of :func:`expr_to_dict`."""
    tag = data["t"]
    if tag == "Const":
        return Const(data["value"])
    if tag == "Var":
        return Var(data["name"])
    if tag == "BinOp":
        return BinOp(
            data["op"], expr_from_dict(data["left"]), expr_from_dict(data["right"])
        )
    if tag == "UnaryOp":
        return UnaryOp(data["op"], expr_from_dict(data["operand"]))
    if tag == "Compare":
        return Compare(
            data["op"], expr_from_dict(data["left"]), expr_from_dict(data["right"])
        )
    if tag == "BoolOp":
        return BoolOp(data["op"], [expr_from_dict(o) for o in data["operands"]])
    if tag == "IfExpr":
        return IfExpr(
            expr_from_dict(data["cond"]),
            expr_from_dict(data["then"]),
            expr_from_dict(data["orelse"]),
        )
    raise ValueError(f"unknown expression tag {tag!r}")


# -- statements -------------------------------------------------------------------
def stmt_to_dict(stmt: Stmt) -> dict[str, Any]:
    """Type-tagged dict for a statement tree."""
    if isinstance(stmt, Block):
        return {
            "t": "Block",
            "instructions": stmt.instructions,
            "mem_refs": stmt.mem_refs,
            "name": stmt.name,
        }
    if isinstance(stmt, Assign):
        return {
            "t": "Assign",
            "target": stmt.target,
            "expr": expr_to_dict(stmt.expr),
            "cost": stmt.cost,
        }
    if isinstance(stmt, Seq):
        return {"t": "Seq", "stmts": [stmt_to_dict(s) for s in stmt.stmts]}
    if isinstance(stmt, If):
        return {
            "t": "If",
            "site": stmt.site,
            "cond": expr_to_dict(stmt.cond),
            "then": stmt_to_dict(stmt.then),
            "orelse": None if stmt.orelse is None else stmt_to_dict(stmt.orelse),
            "counted": stmt.counted,
        }
    if isinstance(stmt, Loop):
        return {
            "t": "Loop",
            "site": stmt.site,
            "count": expr_to_dict(stmt.count),
            "body": stmt_to_dict(stmt.body),
            "loop_var": stmt.loop_var,
            "max_trips": stmt.max_trips,
            "counted": stmt.counted,
            "elide_body": stmt.elide_body,
        }
    if isinstance(stmt, While):
        return {
            "t": "While",
            "site": stmt.site,
            "cond": expr_to_dict(stmt.cond),
            "body": stmt_to_dict(stmt.body),
            "max_trips": stmt.max_trips,
            "counted": stmt.counted,
        }
    if isinstance(stmt, IndirectCall):
        return {
            "t": "IndirectCall",
            "site": stmt.site,
            "target": expr_to_dict(stmt.target),
            "table": {
                str(addr): stmt_to_dict(callee)
                for addr, callee in stmt.table.items()
            },
            "default": None if stmt.default is None else stmt_to_dict(stmt.default),
            "counted": stmt.counted,
        }
    if isinstance(stmt, Hint):
        return {
            "t": "Hint",
            "site": stmt.site,
            "expr": expr_to_dict(stmt.expr),
            "cost": stmt.cost,
            "counted": stmt.counted,
        }
    raise TypeError(f"cannot serialize statement type {type(stmt).__name__}")


def stmt_from_dict(data: dict[str, Any]) -> Stmt:
    """Inverse of :func:`stmt_to_dict`."""
    tag = data["t"]
    if tag == "Block":
        return Block(
            instructions=data["instructions"],
            mem_refs=data["mem_refs"],
            name=data["name"],
        )
    if tag == "Assign":
        return Assign(
            target=data["target"],
            expr=expr_from_dict(data["expr"]),
            cost=data.get("cost", 2),
        )
    if tag == "Seq":
        return Seq([stmt_from_dict(s) for s in data["stmts"]])
    if tag == "If":
        return If(
            site=data["site"],
            cond=expr_from_dict(data["cond"]),
            then=stmt_from_dict(data["then"]),
            orelse=(
                None if data["orelse"] is None else stmt_from_dict(data["orelse"])
            ),
            counted=data["counted"],
        )
    if tag == "Loop":
        return Loop(
            site=data["site"],
            count=expr_from_dict(data["count"]),
            body=stmt_from_dict(data["body"]),
            loop_var=data["loop_var"],
            max_trips=data["max_trips"],
            counted=data["counted"],
            elide_body=data["elide_body"],
        )
    if tag == "While":
        return While(
            site=data["site"],
            cond=expr_from_dict(data["cond"]),
            body=stmt_from_dict(data["body"]),
            max_trips=data["max_trips"],
            counted=data["counted"],
        )
    if tag == "IndirectCall":
        return IndirectCall(
            site=data["site"],
            target=expr_from_dict(data["target"]),
            table={
                int(addr): stmt_from_dict(callee)
                for addr, callee in data["table"].items()
            },
            default=(
                None
                if data["default"] is None
                else stmt_from_dict(data["default"])
            ),
            counted=data["counted"],
        )
    if tag == "Hint":
        return Hint(
            site=data["site"],
            expr=expr_from_dict(data["expr"]),
            cost=data.get("cost", 2),
            counted=data["counted"],
        )
    raise ValueError(f"unknown statement tag {tag!r}")


# -- programs ------------------------------------------------------------------
def program_to_dict(program: Program) -> dict[str, Any]:
    """Type-tagged dict for a whole program."""
    return {
        "name": program.name,
        "body": stmt_to_dict(program.body),
        "globals_init": dict(program.globals_init),
    }


def program_from_dict(data: dict[str, Any]) -> Program:
    """Inverse of :func:`program_to_dict`."""
    return Program(
        name=data["name"],
        body=stmt_from_dict(data["body"]),
        globals_init=dict(data["globals_init"]),
    )


def program_to_json(program: Program) -> str:
    """JSON string for a whole program."""
    return json.dumps(program_to_dict(program))


def program_from_json(text: str) -> Program:
    """Inverse of :func:`program_to_json`."""
    return program_from_dict(json.loads(text))
