"""Statement IR for the mini task language.

Tasks are modelled as structured control flow over compute blocks:

- :class:`Block` — straight-line compute with an instruction count and a
  memory-reference count (these are what cost time; they are what slicing
  removes).
- :class:`Assign` — a scalar state update (these carry the dataflow that
  the slicer must preserve).
- :class:`Seq`, :class:`If`, :class:`Loop`, :class:`IndirectCall` —
  structured control flow.  Control-flow nodes carry a unique ``site``
  label; the instrumenter turns sites into counted features.

The three feature kinds of the paper map to three node types:
If → branch-taken count, Loop → iteration count, IndirectCall → callee
address (one-hot encoded later).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator

from repro.programs.expr import Expr

__all__ = [
    "Stmt",
    "Block",
    "Assign",
    "Seq",
    "If",
    "Loop",
    "While",
    "IndirectCall",
    "Hint",
    "Program",
    "walk",
    "control_sites",
]

# Bookkeeping costs, in instructions, of the control skeleton itself.  These
# are what a prediction slice still pays after the compute is removed.
ASSIGN_COST = 2
BRANCH_COST = 1
LOOP_ITER_COST = 2
CALL_DISPATCH_COST = 4
COUNTER_COST = 1  # one feature-counter increment (instrumentation overhead)


class Stmt(ABC):
    """Base class for all statements."""

    @abstractmethod
    def children(self) -> tuple["Stmt", ...]:
        """Directly nested statements."""


@dataclass(frozen=True)
class Block(Stmt):
    """Straight-line compute: costs time, touches no scalar state.

    Attributes:
        instructions: CPU instructions executed by this block.
        mem_refs: Off-core memory references (they build ``T_mem``).
        name: Optional label for debugging.
    """

    instructions: float
    mem_refs: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError(f"negative instruction count in block {self.name!r}")
        if self.mem_refs < 0:
            raise ValueError(f"negative mem_refs in block {self.name!r}")

    def children(self) -> tuple[Stmt, ...]:
        return ()


@dataclass(frozen=True)
class Assign(Stmt):
    """Scalar assignment ``target = expr`` (updates task state).

    ``cost`` is the instruction cost of producing the value.  Most
    assignments are register moves (the default), but some model a
    data-dependent computation — e.g. scanning an active list to count
    it — which a prediction slice must still pay for if the value feeds
    a feature (this is how slices acquire realistic execution times).
    """

    target: str
    expr: Expr
    cost: float = ASSIGN_COST

    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("Assign requires a non-empty target name")
        if self.cost < 0:
            raise ValueError("Assign cost must be non-negative")

    def children(self) -> tuple[Stmt, ...]:
        return ()


@dataclass(frozen=True)
class Seq(Stmt):
    """Sequential composition of statements."""

    stmts: tuple[Stmt, ...]

    def __init__(self, stmts):
        object.__setattr__(self, "stmts", tuple(stmts))

    def children(self) -> tuple[Stmt, ...]:
        return self.stmts


@dataclass(frozen=True)
class If(Stmt):
    """Conditional.  ``site`` identifies the branch for feature counting."""

    site: str
    cond: Expr
    then: Stmt
    orelse: Stmt | None = None
    counted: bool = False

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("If requires a non-empty site label")

    def children(self) -> tuple[Stmt, ...]:
        if self.orelse is None:
            return (self.then,)
        return (self.then, self.orelse)


@dataclass(frozen=True)
class Loop(Stmt):
    """Counted loop: evaluates ``count`` once, runs ``body`` that many times.

    Attributes:
        site: Feature-site label (iteration count).
        count: Expression giving the trip count (clamped to >= 0 ints).
        body: Loop body.
        loop_var: Optional name bound to the iteration index (0-based)
            before each body execution.
        max_trips: Safety clamp so corrupt inputs cannot hang a simulation.
        counted: Whether instrumentation counts iterations here.
        elide_body: Set by the slicer when the body sliced away entirely:
            the iteration count is still recorded (the hoisted
            ``feature += n`` of the paper's Fig. 8) but no iterations run,
            which is where the slice's speedup comes from.
    """

    site: str
    count: Expr
    body: Stmt
    loop_var: str | None = None
    max_trips: int = 1_000_000
    counted: bool = False
    elide_body: bool = False

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("Loop requires a non-empty site label")
        if self.max_trips < 0:
            raise ValueError("max_trips must be non-negative")

    def children(self) -> tuple[Stmt, ...]:
        return (self.body,)


@dataclass(frozen=True)
class While(Stmt):
    """Condition-controlled loop: ``while (cond) body``.

    Unlike :class:`Loop`, the trip count is not known at entry — the
    condition re-evaluates before every iteration and the body is
    expected to change the state it reads (the paper's Fig. 7 example is
    a linked-list walk, ``while (n = n->next)``).  The iteration count is
    the feature.  A While can never be body-elided by the slicer: the
    count only exists by running the loop.

    Attributes:
        site: Feature-site label (iteration count).
        cond: Loop condition, re-evaluated each iteration.
        body: Loop body (its Assigns drive the condition).
        max_trips: Safety clamp — a slice of a buggy loop must terminate.
        counted: Whether instrumentation counts iterations here.
    """

    site: str
    cond: Expr
    body: Stmt
    max_trips: int = 1_000_000
    counted: bool = False

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("While requires a non-empty site label")
        if self.max_trips < 0:
            raise ValueError("max_trips must be non-negative")

    def children(self) -> tuple[Stmt, ...]:
        return (self.body,)


@dataclass(frozen=True)
class IndirectCall(Stmt):
    """Call through a function pointer.

    ``target`` evaluates to an integer address; the matching entry of
    ``table`` executes.  An unknown address falls back to ``default``
    (or does nothing), like calling into library code the tool never
    instrumented.
    """

    site: str
    target: Expr
    table: dict[int, Stmt] = field(default_factory=dict)
    default: Stmt | None = None
    counted: bool = False

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("IndirectCall requires a non-empty site label")
        for address in self.table:
            if not isinstance(address, int):
                raise TypeError(f"call-table address {address!r} is not an int")

    def children(self) -> tuple[Stmt, ...]:
        kids = tuple(self.table[a] for a in sorted(self.table))
        if self.default is not None:
            kids += (self.default,)
        return kids


@dataclass(frozen=True)
class Hint(Stmt):
    """A programmer-provided feature hint (paper §3.5).

    The automated flow only derives *control-flow* features, but a
    programmer who knows that some value — metadata from an input file,
    a queue length — correlates with execution time can expose it
    directly.  When counted, executing the hint records the expression's
    current value as a gauge feature (an absolute reading, not a
    cumulative counter).

    Attributes:
        site: Feature-site label.
        expr: The value to expose.
        cost: Instruction cost of producing the value (metadata parsing
            is not always free; the slice pays this too).
    """

    site: str
    expr: Expr
    cost: float = ASSIGN_COST
    counted: bool = False

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("Hint requires a non-empty site label")
        if self.cost < 0:
            raise ValueError("Hint cost must be non-negative")

    def children(self) -> tuple[Stmt, ...]:
        return ()


@dataclass(frozen=True)
class Program:
    """A task: a statement tree plus its persistent global state.

    Attributes:
        name: Task name.
        body: Root statement.
        globals_init: Initial values of task globals (copied per run so a
            Program value is reusable).
    """

    name: str
    body: Stmt
    globals_init: dict[str, object] = field(default_factory=dict)

    def fresh_globals(self) -> dict:
        """A new mutable globals dict seeded from ``globals_init``."""
        return dict(self.globals_init)


def walk(stmt: Stmt) -> Iterator[Stmt]:
    """Depth-first pre-order traversal of a statement tree."""
    yield stmt
    for child in stmt.children():
        yield from walk(child)


def control_sites(stmt: Stmt) -> list[Stmt]:
    """All control-flow nodes (If/Loop/While/IndirectCall) in pre-order."""
    return [
        node
        for node in walk(stmt)
        if isinstance(node, (If, Loop, While, IndirectCall))
    ]
