"""Structural validation of task programs.

Run :func:`validate_program` once when a workload is constructed; it
catches the mistakes that would otherwise surface as confusing behaviour
deep inside a simulation (aliased feature sites, unbound variables,
self-referential trees).
"""

from __future__ import annotations

from typing import Iterable

from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)

__all__ = ["validate_program", "free_variables", "static_instruction_bound"]


def validate_program(
    program: Program, inputs: Iterable[str] | None = None
) -> None:
    """Raise ``ValueError`` on structurally invalid programs.

    Checks:
    - control-site labels are unique;
    - the statement tree is acyclic (no node is its own ancestor);
    - when ``inputs`` names the program's declared inputs, every variable
      read is an input, a global, a loop variable, or assigned somewhere
      in the tree — anything else is a typo.  Without ``inputs`` the
      check stays lenient (any otherwise-unbound read could be an input).
    """
    seen_sites: set[str] = set()
    on_path: set[int] = set()

    assigned: set[str] = set()
    read: set[str] = set()

    def visit(stmt: Stmt) -> None:
        if id(stmt) in on_path:
            raise ValueError(
                f"cycle in statement tree of program {program.name!r}"
            )
        on_path.add(id(stmt))
        site = getattr(stmt, "site", None)
        if site is not None:
            if site in seen_sites:
                raise ValueError(
                    f"duplicate control site {site!r} in {program.name!r}"
                )
            seen_sites.add(site)
        if isinstance(stmt, Assign):
            assigned.add(stmt.target)
            read.update(stmt.expr.variables())
        elif isinstance(stmt, If):
            read.update(stmt.cond.variables())
        elif isinstance(stmt, Loop):
            read.update(stmt.count.variables())
            if stmt.loop_var is not None:
                assigned.add(stmt.loop_var)
        elif isinstance(stmt, While):
            read.update(stmt.cond.variables())
        elif isinstance(stmt, IndirectCall):
            read.update(stmt.target.variables())
        elif isinstance(stmt, Hint):
            read.update(stmt.expr.variables())
        for child in stmt.children():
            visit(child)
        on_path.discard(id(stmt))

    visit(program.body)

    if inputs is not None:
        bound = (
            assigned | set(inputs) | set(program.globals_init)
        )
        unbound = sorted(read - bound)
        if unbound:
            raise ValueError(
                f"program {program.name!r} reads unbound variable(s) "
                f"{unbound}: neither declared inputs, globals, loop "
                "variables, nor assigned anywhere"
            )


def free_variables(program: Program) -> frozenset[str]:
    """Variables the program reads but never assigns — its required inputs.

    Globals initialised in ``globals_init`` are excluded: they are bound
    at run time by the task's persistent state.
    """
    assigned: set[str] = set(program.globals_init)
    read: set[str] = set()

    def visit(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            read.update(stmt.expr.variables())
            assigned.add(stmt.target)
        elif isinstance(stmt, If):
            read.update(stmt.cond.variables())
        elif isinstance(stmt, Loop):
            read.update(stmt.count.variables())
            if stmt.loop_var is not None:
                assigned.add(stmt.loop_var)
        elif isinstance(stmt, While):
            read.update(stmt.cond.variables())
        elif isinstance(stmt, IndirectCall):
            read.update(stmt.target.variables())
        elif isinstance(stmt, Hint):
            read.update(stmt.expr.variables())
        for child in stmt.children():
            visit(child)

    visit(program.body)
    return frozenset(read - assigned)


def static_instruction_bound(stmt: Stmt, loop_bound: int = 1) -> float:
    """Crude static estimate of instructions, assuming ``loop_bound`` trips.

    Used by tests and diagnostics to compare original-vs-slice static
    size; not used by the controller itself.
    """
    if isinstance(stmt, Block):
        return stmt.instructions
    if isinstance(stmt, Assign):
        return 2.0
    if isinstance(stmt, Seq):
        return sum(static_instruction_bound(s, loop_bound) for s in stmt.stmts)
    if isinstance(stmt, If):
        branches = [static_instruction_bound(stmt.then, loop_bound)]
        if stmt.orelse is not None:
            branches.append(static_instruction_bound(stmt.orelse, loop_bound))
        return 1.0 + max(branches)
    if isinstance(stmt, Loop):
        if stmt.elide_body:
            return 1.0
        return 2.0 + loop_bound * static_instruction_bound(stmt.body, loop_bound)
    if isinstance(stmt, IndirectCall):
        costs = [
            static_instruction_bound(callee, loop_bound)
            for callee in stmt.table.values()
        ]
        if stmt.default is not None:
            costs.append(static_instruction_bound(stmt.default, loop_bound))
        return 4.0 + (max(costs) if costs else 0.0)
    if isinstance(stmt, While):
        return 2.0 + loop_bound * (
            1.0 + static_instruction_bound(stmt.body, loop_bound)
        )
    if isinstance(stmt, Hint):
        return stmt.cost
    raise TypeError(f"unknown statement type {type(stmt).__name__}")
