"""Translation validation: statically re-check every pass's output.

Passes are *trusted to be useful, verified to be safe*: after each pass
the validator compares the candidate program against its predecessor on
every property the rest of the system observes, and the driver discards
the rewrite (keeping the predecessor) if any check fails.  A bug in a
pass therefore degrades optimization, never correctness.

Checks:

- **globals-init** — the persistent-state contract is untouched;
- **structure** — the candidate still passes structural validation
  (unique sites, acyclic, no unbound reads given the declared inputs);
- **inputs** — the candidate requires no input the original did not
  (optimizer temporaries are assigned, so they never appear free);
- **effects-globals** / **effects-locals** — the syntactic may-write
  sets shrink or stay equal, modulo ``__opt_*`` temporaries;
- **counted-sites** — the feature-observation set, as (site, node-kind)
  pairs, is exactly preserved: predictions must see identical feature
  vectors;
- **cost-bound** — the worst-case cycle bound from the interval cost
  engine (cross-job-sound entry state) never increases.  A relative
  tolerance of 1e-12 absorbs the analyzer's own float regrouping when
  blocks merge; runtime cost equality is separately enforced bit-exactly
  by the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.programs.analysis.diagnostics import Diagnostic
from repro.programs.analysis.effects import effect_report
from repro.programs.ir import Hint, If, IndirectCall, Loop, Program, While, walk
from repro.programs.opt.rewrite import (
    OPT_TEMP_PREFIX,
    OptContext,
    sound_cost_bound,
)
from repro.programs.validate import free_variables, validate_program

__all__ = [
    "CheckResult",
    "counted_signature",
    "validate_rewrite",
    "rewrite_diagnostics",
    "COST_REL_TOL",
    "COST_ABS_TOL",
]

_COUNTED_NODES = (If, Loop, While, IndirectCall, Hint)

#: Tolerances for the static cost-bound comparison (see module doc).
COST_REL_TOL = 1e-12
COST_ABS_TOL = 1e-9


@dataclass(frozen=True)
class CheckResult:
    """One validator check: name, verdict, and evidence."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CheckResult":
        return cls(
            name=data["name"],
            ok=bool(data["ok"]),
            detail=data.get("detail", ""),
        )


def counted_signature(program: Program) -> frozenset[tuple[str, str]]:
    """The feature-observation set: (site, node kind) of counted nodes."""
    return frozenset(
        (node.site, type(node).__name__)
        for node in walk(program.body)
        if isinstance(node, _COUNTED_NODES) and node.counted
    )


def _within_bound(after: float, before: float) -> bool:
    return after <= before * (1.0 + COST_REL_TOL) + COST_ABS_TOL


def validate_rewrite(
    before: Program,
    after: Program,
    ctx: OptContext,
    pass_name: str = "",
) -> list[CheckResult]:
    """Run every equivalence check; the rewrite is valid iff all pass."""
    checks: list[CheckResult] = []

    checks.append(
        CheckResult(
            "globals-init",
            before.globals_init == after.globals_init,
            "persistent global initial state must be identical",
        )
    )

    try:
        validate_program(after, inputs=ctx.input_names)
        checks.append(CheckResult("structure", True))
    except ValueError as exc:
        checks.append(CheckResult("structure", False, str(exc)))

    free_before = free_variables(before)
    free_after = free_variables(after)
    extra_inputs = free_after - free_before
    checks.append(
        CheckResult(
            "inputs",
            not extra_inputs,
            f"new free variables: {sorted(extra_inputs)}"
            if extra_inputs
            else "",
        )
    )

    eff_before = effect_report(before)
    eff_after = effect_report(after)
    extra_globals = eff_after.may_write_globals - eff_before.may_write_globals
    checks.append(
        CheckResult(
            "effects-globals",
            not extra_globals,
            f"new global writes: {sorted(extra_globals)}"
            if extra_globals
            else "",
        )
    )
    extra_locals = {
        name
        for name in eff_after.may_write_locals - eff_before.may_write_locals
        if not name.startswith(OPT_TEMP_PREFIX)
    }
    checks.append(
        CheckResult(
            "effects-locals",
            not extra_locals,
            f"new non-temp local writes: {sorted(extra_locals)}"
            if extra_locals
            else "",
        )
    )

    sig_before = counted_signature(before)
    sig_after = counted_signature(after)
    checks.append(
        CheckResult(
            "counted-sites",
            sig_before == sig_after,
            ""
            if sig_before == sig_after
            else (
                f"lost: {sorted(sig_before - sig_after)}; "
                f"gained: {sorted(sig_after - sig_before)}"
            ),
        )
    )

    cost_before = sound_cost_bound(before, ctx.input_ranges)
    cost_after = sound_cost_bound(after, ctx.input_ranges)
    instr_ok = _within_bound(cost_after.instructions, cost_before.instructions)
    mem_ok = _within_bound(cost_after.mem_refs, cost_before.mem_refs)
    checks.append(
        CheckResult(
            "cost-bound",
            instr_ok and mem_ok,
            (
                f"instructions {cost_before.instructions} -> "
                f"{cost_after.instructions}, mem_refs "
                f"{cost_before.mem_refs} -> {cost_after.mem_refs}"
            ),
        )
    )
    return checks


def rewrite_diagnostics(
    pass_name: str, program: Program, checks: list[CheckResult]
) -> list[Diagnostic]:
    """Render failed checks as error diagnostics (pass ``opt.<name>``)."""
    return [
        Diagnostic(
            pass_name=f"opt.{pass_name}",
            severity="error",
            site=check.name,
            message=(
                f"translation validation failed ({check.name}): "
                f"{check.detail or 'property not preserved'}; "
                "rewrite discarded"
            ),
            program=program.name,
        )
        for check in checks
        if not check.ok
    ]
