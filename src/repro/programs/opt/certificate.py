"""Machine-checkable certificates for optimization runs.

A :class:`RewriteCertificate` records, for one pass application, what
the pass claims it did (the rewrite log), fingerprints of the programs
it transformed (serialization digests, so any consumer can re-derive
and cross-check them), the validator's verdict on every equivalence
check, and the static cost bounds on both sides.  Certificates are
plain data — JSON round-trippable — so `repro lint` can emit them and
CI can archive them next to the diagnostics artifact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.programs.analysis.diagnostics import Diagnostic
from repro.programs.ir import Program
from repro.programs.opt.rewrite import RewriteStep
from repro.programs.opt.verify import CheckResult
from repro.programs.serialize import program_to_json

__all__ = [
    "program_digest",
    "RewriteCertificate",
    "OptimizationResult",
]


def program_digest(program: Program) -> str:
    """Stable fingerprint of a program: sha256 of its canonical JSON."""
    payload = program_to_json(program).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class RewriteCertificate:
    """Evidence for one pass application.

    Attributes:
        pass_name: Which pass ran (``"normalize"``, ``"fold"``, ...).
        program: Name of the program transformed.
        before_digest / after_digest: Serialization fingerprints of the
            input and candidate-output programs.
        accepted: Whether the driver kept the rewrite (all checks ok).
        rewrites: The pass's own log of applied rules.
        checks: The translation validator's per-property verdicts.
        cost_before / cost_after: Static worst-case (instructions,
            mem_refs) bounds on each side, for audit.
    """

    pass_name: str
    program: str
    before_digest: str
    after_digest: str
    accepted: bool
    rewrites: tuple[RewriteStep, ...] = ()
    checks: tuple[CheckResult, ...] = ()
    cost_before: tuple[float, float] = (0.0, 0.0)
    cost_after: tuple[float, float] = (0.0, 0.0)

    @property
    def ok(self) -> bool:
        """All validator checks passed."""
        return all(check.ok for check in self.checks)

    @property
    def identity(self) -> bool:
        """The pass left the program unchanged."""
        return self.before_digest == self.after_digest

    def as_dict(self) -> dict[str, Any]:
        return {
            "pass": self.pass_name,
            "program": self.program,
            "before_digest": self.before_digest,
            "after_digest": self.after_digest,
            "accepted": self.accepted,
            "rewrites": [step.as_dict() for step in self.rewrites],
            "checks": [check.as_dict() for check in self.checks],
            "cost_before": list(self.cost_before),
            "cost_after": list(self.cost_after),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RewriteCertificate":
        return cls(
            pass_name=data["pass"],
            program=data.get("program", ""),
            before_digest=data["before_digest"],
            after_digest=data["after_digest"],
            accepted=bool(data["accepted"]),
            rewrites=tuple(
                RewriteStep.from_dict(step) for step in data.get("rewrites", ())
            ),
            checks=tuple(
                CheckResult.from_dict(c) for c in data.get("checks", ())
            ),
            cost_before=tuple(data.get("cost_before", (0.0, 0.0))),
            cost_after=tuple(data.get("cost_after", (0.0, 0.0))),
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Everything :func:`~repro.programs.opt.optimize_program` produced.

    Attributes:
        original: The untouched input program.
        program: The optimized program (== ``original`` when nothing
            applied) — only validated rewrites are ever incorporated.
        certificates: One certificate per pass that attempted a rewrite.
        diagnostics: Error diagnostics for any discarded rewrite.
        nodes_before / nodes_after: Statement-node counts — the host
            interpreter dispatches per node, so the delta is the
            host-work headline.
    """

    original: Program
    program: Program
    certificates: tuple[RewriteCertificate, ...] = ()
    diagnostics: tuple[Diagnostic, ...] = ()
    nodes_before: int = 0
    nodes_after: int = 0

    @property
    def validated(self) -> bool:
        """Every attempted rewrite passed translation validation."""
        return all(cert.ok for cert in self.certificates)

    @property
    def changed(self) -> bool:
        return self.program is not self.original

    def as_dict(self) -> dict[str, Any]:
        return {
            "program": self.original.name,
            "validated": self.validated,
            "changed": self.changed,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "certificates": [cert.as_dict() for cert in self.certificates],
            "diagnostics": [diag.as_dict() for diag in self.diagnostics],
        }
