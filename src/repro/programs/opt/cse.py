"""Common-subexpression elimination over straight-line Seq regions.

The interpreter re-evaluates every expression tree node by node on the
host, so evaluating ``(a + b) * c`` twice costs twice the host time even
though it costs nothing in simulated cycles.  CSE stores the value once
in an optimizer temporary (``Assign(tmp, e, cost=0.0)`` — a zero-cost
assignment adds exactly ``0.0`` to the accumulator, which is an exact
identity) and replaces each occurrence with a single ``Var`` read.

Scope is deliberately modest and easy to verify: only the *direct
evaluation slots* of a ``Seq``'s children participate (``Assign.expr``,
``If.cond``, ``Loop.count``, ``IndirectCall.target``, and a counted
``Hint.expr``), and availability is invalidated by any name a child's
subtree may write.  ``While.cond`` never participates: it re-evaluates
on every trip against state the body mutates.  Uncounted hints never
participate either — the interpreter never evaluates their expression,
so registering it would manufacture an evaluation that the original
program did not perform at that point.

Safety argument: the temp assignment is inserted *immediately before*
the first-occurrence child, with no intervening statement, so it
evaluates the expression in exactly the environment the child would
have — same value, and a crash if and only if the original would crash
a moment later.  Later occurrences read the temp instead; invalidation
guarantees no write to any operand happened in between, so the value
(and crash-freedom, already proven by the first evaluation) carries
over bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.programs.expr import Const, Expr, Var
from repro.programs.ir import (
    Assign,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)
from repro.programs.opt.rewrite import (
    OptContext,
    RewriteStep,
    subtree_writes,
)

__all__ = ["cse"]


def _slot(stmt: Stmt) -> Expr | None:
    """The single expression a Seq child evaluates on entry, if any."""
    if isinstance(stmt, Assign):
        return stmt.expr
    if isinstance(stmt, If):
        return stmt.cond
    if isinstance(stmt, Loop):
        return stmt.count
    if isinstance(stmt, IndirectCall):
        return stmt.target
    if isinstance(stmt, Hint) and stmt.counted:
        return stmt.expr
    return None


def _with_slot(stmt: Stmt, expr: Expr) -> Stmt:
    if isinstance(stmt, Assign):
        return replace(stmt, expr=expr)
    if isinstance(stmt, If):
        return replace(stmt, cond=expr)
    if isinstance(stmt, Loop):
        return replace(stmt, count=expr)
    if isinstance(stmt, IndirectCall):
        return replace(stmt, target=expr)
    if isinstance(stmt, Hint):
        return replace(stmt, expr=expr)
    raise TypeError(f"no expression slot on {type(stmt).__name__}")


def _candidate(expr: Expr | None) -> bool:
    """Worth commoning: a real computation, not a leaf read/constant."""
    return expr is not None and not isinstance(expr, (Const, Var))


@dataclass
class _Group:
    expr: Expr
    occurrences: list[int] = field(default_factory=list)


def cse(program: Program, ctx: OptContext) -> tuple[Program, list[RewriteStep]]:
    steps: list[RewriteStep] = []

    def rebuild(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Seq):
            children = [rebuild(child) for child in stmt.stmts]
            children = _common_seq(children)
            if len(children) == len(stmt.stmts) and all(
                a is b for a, b in zip(children, stmt.stmts)
            ):
                return stmt
            return Seq(children)
        if isinstance(stmt, If):
            then = rebuild(stmt.then)
            orelse = (
                rebuild(stmt.orelse) if stmt.orelse is not None else None
            )
            if then is stmt.then and orelse is stmt.orelse:
                return stmt
            return replace(stmt, then=then, orelse=orelse)
        if isinstance(stmt, (Loop, While)):
            body = rebuild(stmt.body)
            return stmt if body is stmt.body else replace(stmt, body=body)
        if isinstance(stmt, IndirectCall):
            table = {
                address: rebuild(callee)
                for address, callee in stmt.table.items()
            }
            default = (
                rebuild(stmt.default) if stmt.default is not None else None
            )
            if default is stmt.default and all(
                table[a] is stmt.table[a] for a in table
            ):
                return stmt
            return replace(stmt, table=table, default=default)
        return stmt

    def _common_seq(children: list[Stmt]) -> list[Stmt]:
        # Phase 1: group identical available expressions.  A group is
        # finalized (kept iff it has >= 2 occurrences) when a write
        # invalidates it; structural Expr equality/hash keys the map.
        available: dict[Expr, _Group] = {}
        finalized: list[_Group] = []
        for index, child in enumerate(children):
            expr = _slot(child)
            if _candidate(expr):
                group = available.get(expr)
                if group is None:
                    group = _Group(expr)
                    available[expr] = group
                group.occurrences.append(index)
            writes = subtree_writes(child)
            if writes:
                for key in list(available):
                    if key.variables() & writes:
                        finalized.append(available.pop(key))
        finalized.extend(available.values())
        groups = [g for g in finalized if len(g.occurrences) >= 2]
        if not groups:
            return children

        # Phase 2: insert one temp per group before its first occurrence
        # and redirect every occurrence through it.
        replacement: dict[int, Expr] = {}
        inserts: dict[int, Stmt] = {}
        for group in groups:
            tmp = ctx.fresh.fresh("cse")
            first = group.occurrences[0]
            inserts[first] = Assign(tmp, group.expr, cost=0.0)
            for index in group.occurrences:
                replacement[index] = Var(tmp)
            steps.append(
                RewriteStep(
                    "cse",
                    site=tmp,
                    detail=(
                        f"{len(group.occurrences)} occurrences share "
                        "one evaluation"
                    ),
                )
            )
        out: list[Stmt] = []
        for index, child in enumerate(children):
            if index in inserts:
                out.append(inserts[index])
            if index in replacement:
                out.append(_with_slot(child, replacement[index]))
            else:
                out.append(child)
        return out

    new_body = rebuild(program.body)
    if not steps:
        return program, []
    return replace(program, body=new_body), steps
