"""Shared machinery for IR rewrite passes.

Every optimization pass in :mod:`repro.programs.opt` is a pure
IR-to-IR function constrained by one contract: the optimized program
must be *bit-identical* to the original through the interpreter — same
final globals, same feature records, same instruction/memory
accumulator values.  Two pieces of machinery make that contract
checkable rather than hoped-for:

- :func:`exactness` — the float-reassociation precondition.  The
  interpreter tallies cost in a float accumulator, and float addition
  is not associative, so a rewrite that *regroups* cost additions
  (merging adjacent Blocks, unrolling a one-trip loop) is only exact
  when every contribution is an integer-valued float and the total
  stays below 2**52: then every partial sum is an exactly-representable
  integer and associativity holds.  Sequence-preserving rewrites
  (flattening, substituting an equal-valued expression, replacing an
  Assign by a Block of the same cost) need no precondition.

- :func:`opt_interval_engine` / :func:`sound_cost_bound` — interval
  analysis with a *cross-job-sound* entry state.  The certifier's
  :func:`~repro.programs.analysis.intervals.analyze_intervals` seeds
  every global at its ``globals_init`` value, which describes job 1
  from a fresh state; a global the program writes can arrive at job N
  holding anything the program ever stored there.  Rewrites must hold
  for every job of a persistent run, so here written globals enter TOP
  and only never-written globals keep their initial value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.programs.analysis.dataflow import DataflowEngine
from repro.programs.analysis.hazards import assigned_names
from repro.programs.analysis.intervals import (
    CostBound,
    CostBoundAnalyzer,
    Interval,
    IntervalAnalysis,
    IntervalEnv,
)
from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    Loop,
    Program,
    Seq,
    Stmt,
    walk,
)

__all__ = [
    "EXACT_SUM_LIMIT",
    "OPT_TEMP_PREFIX",
    "RewriteStep",
    "FreshNames",
    "OptContext",
    "Exactness",
    "exactness",
    "eval_cannot_raise",
    "opt_interval_engine",
    "sound_cost_bound",
    "program_names",
    "subtree_writes",
    "is_empty",
    "node_count",
]

#: Reserved prefix for optimizer-introduced temporaries.  Temps are
#: always locals (never in ``globals_init``), assigned with cost 0.0
#: (``x + 0.0 == x`` exactly for the non-negative accumulator), and
#: excluded from the validator's free-variable comparison.
OPT_TEMP_PREFIX = "__opt_"

#: Integer float sums stay exact strictly below 2**53; one spare bit
#: keeps every *intermediate* regrouped sum safely representable.
EXACT_SUM_LIMIT = float(2**52)


@dataclass(frozen=True)
class RewriteStep:
    """One applied rewrite, recorded for the pass certificate.

    Attributes:
        rule: Rewrite rule identifier (e.g. ``"fold-branch-true"``).
        site: Site label or variable name the rewrite anchors to.
        detail: Human-readable description of what changed.
    """

    rule: str
    site: str = ""
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "site": self.site, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RewriteStep":
        return cls(
            rule=data["rule"],
            site=data.get("site", ""),
            detail=data.get("detail", ""),
        )


class FreshNames:
    """Allocates temp names guaranteed not to collide with the program."""

    def __init__(self, taken):
        self._taken = set(taken)
        self._n = 0

    def fresh(self, tag: str = "t") -> str:
        while True:
            self._n += 1
            name = f"{OPT_TEMP_PREFIX}{tag}{self._n}"
            if name not in self._taken:
                self._taken.add(name)
                return name


@dataclass
class OptContext:
    """State shared across the passes of one ``optimize_program`` run.

    Attributes:
        input_names: The program's declared inputs (entry-bound names).
        input_ranges: Input ranges for cost-bound *comparison* (always
            sound to use: both sides of a rewrite are bounded under the
            same assumption).
        fold_ranges: Input ranges the *fold* pass may assume when
            deciding rewrites — None unless the caller opted in, since
            a range-derived fold only preserves semantics for inputs
            inside the declared ranges.
        fresh: Temp-name allocator shared by all passes.
    """

    input_names: frozenset[str]
    input_ranges: dict | None = None
    fold_ranges: dict | None = None
    fresh: FreshNames = field(default_factory=lambda: FreshNames(()))


@dataclass(frozen=True)
class Exactness:
    """Which accumulators tolerate regrouped additions (see module doc)."""

    instructions: bool
    mem_refs: bool


def _cost_values(program: Program) -> Iterator[tuple[float, float]]:
    """(instructions, mem_refs) contribution of every cost-bearing node."""
    for node in walk(program.body):
        if isinstance(node, Block):
            yield node.instructions, node.mem_refs
        elif isinstance(node, (Assign, Hint)):
            yield node.cost, 0.0


def exactness(program: Program, input_ranges=None) -> Exactness:
    """Decide whether regrouping cost additions is bit-exact here.

    Both conditions must hold per accumulator: every static
    contribution is an integer-valued float, and the worst-case dynamic
    total (cross-job-sound bound) stays below :data:`EXACT_SUM_LIMIT`.
    """
    instr_integral = True
    mem_integral = True
    for instructions, mem_refs in _cost_values(program):
        if not float(instructions).is_integer():
            instr_integral = False
        if not float(mem_refs).is_integer():
            mem_integral = False
        if not instr_integral and not mem_integral:
            break
    if not instr_integral and not mem_integral:
        return Exactness(False, False)
    bound = sound_cost_bound(program, input_ranges)
    return Exactness(
        instructions=instr_integral
        and math.isfinite(bound.instructions)
        and bound.instructions < EXACT_SUM_LIMIT,
        mem_refs=mem_integral
        and math.isfinite(bound.mem_refs)
        and bound.mem_refs < EXACT_SUM_LIMIT,
    )


def eval_cannot_raise(expr) -> bool:
    """True when evaluating ``expr`` cannot raise, given bound variables.

    Removing an expression evaluation is only behaviour-preserving if
    the evaluation could not have crashed.  With every read guarded by
    the must-defined analysis (no ``KeyError``), the expression language
    has exactly one remaining partial operator: unary ``int`` raises
    ``OverflowError``/``ValueError`` on a non-finite float.  Division by
    zero yields 0 by convention and Python integers never overflow, so
    everything else is total.  Conservatively reject any expression
    containing unary ``int``.
    """
    from repro.programs.expr import BinOp, BoolOp, Compare, IfExpr, UnaryOp

    if isinstance(expr, UnaryOp):
        if expr.op == "int":
            return False
        return eval_cannot_raise(expr.operand)
    if isinstance(expr, (BinOp, Compare)):
        return eval_cannot_raise(expr.left) and eval_cannot_raise(expr.right)
    if isinstance(expr, BoolOp):
        return all(eval_cannot_raise(o) for o in expr.operands)
    if isinstance(expr, IfExpr):
        return (
            eval_cannot_raise(expr.cond)
            and eval_cannot_raise(expr.then)
            and eval_cannot_raise(expr.orelse)
        )
    return True  # Const / Var


def opt_interval_engine(
    program: Program, input_ranges=None
) -> DataflowEngine[IntervalEnv]:
    """Interval analysis whose entry state is sound for *every* job.

    Written globals enter TOP (a persistent run can reach job N with
    any value the program ever stored); never-written globals keep
    their ``globals_init`` value forever, so they stay constants.
    """
    written = assigned_names(program)
    entry: IntervalEnv = {}
    for name, value in program.globals_init.items():
        if name not in written and isinstance(value, (bool, int, float)):
            entry[name] = Interval.const(value)
    for name, (lo, hi) in (input_ranges or {}).items():
        interval = Interval(float(lo), float(hi))
        if not interval.is_top:
            entry[name] = interval
    engine = DataflowEngine(IntervalAnalysis())
    engine.run(program.body, entry)
    return engine


def sound_cost_bound(program: Program, input_ranges=None) -> CostBound:
    """Worst-case cost under the cross-job-sound entry state."""
    engine = opt_interval_engine(program, input_ranges)
    analyzer = CostBoundAnalyzer(engine, program.name)
    return analyzer.bound(program.body)


def program_names(program: Program) -> set[str]:
    """Every name the program mentions (reads, writes, globals, inputs).

    Used to seed :class:`FreshNames` so optimizer temps cannot collide.
    """
    from repro.programs.analysis.reaching import read_variables

    names: set[str] = set(program.globals_init)
    for node in walk(program.body):
        names |= read_variables(node)
        if isinstance(node, Assign):
            names.add(node.target)
        elif isinstance(node, Loop) and node.loop_var is not None:
            names.add(node.loop_var)
    return names


def subtree_writes(stmt: Stmt) -> frozenset[str]:
    """Names any execution of ``stmt`` may write (Assigns + loop vars)."""
    out: set[str] = set()
    for node in walk(stmt):
        if isinstance(node, Assign):
            out.add(node.target)
        elif isinstance(node, Loop) and node.loop_var is not None:
            out.add(node.loop_var)
    return frozenset(out)


def is_empty(stmt: Stmt | None) -> bool:
    """True for statements that execute as a no-op (None / empty Seq)."""
    if stmt is None:
        return True
    return isinstance(stmt, Seq) and not stmt.stmts


def node_count(program: Program) -> int:
    """Statement-node count — the interpreter dispatches once per node
    executed, so fewer nodes means fewer host-side dispatches."""
    return sum(1 for _ in walk(program.body))
