"""Normalization: structural cleanup that every later pass relies on.

Rewrites (all sequence-preserving except block merging, which requires
the exactness precondition of :mod:`repro.programs.opt.rewrite`):

- flatten nested ``Seq`` nodes and drop empty ones;
- collapse single-statement ``Seq`` wrappers;
- drop an ``If``'s empty else-arm;
- merge adjacent ``Block`` nodes into one (one interpreter dispatch
  instead of two) — only when both accumulators tolerate regrouped
  additions, since ``(a + b) + c == a + (b + c)`` is false for floats
  in general.
"""

from __future__ import annotations

from dataclasses import replace

from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)
from repro.programs.opt.rewrite import (
    OptContext,
    RewriteStep,
    exactness,
    is_empty,
)

__all__ = ["normalize"]


def normalize(
    program: Program, ctx: OptContext
) -> tuple[Program, list[RewriteStep]]:
    """Run normalization; returns the rewritten program and its log."""
    exact = exactness(program, ctx.input_ranges)
    steps: list[RewriteStep] = []

    def can_merge(a: Block, b: Block) -> bool:
        if not exact.instructions:
            return False
        if a.mem_refs == 0.0 and b.mem_refs == 0.0:
            return True
        return exact.mem_refs

    def rebuild(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Seq):
            children: list[Stmt] = []
            for child in stmt.stmts:
                rebuilt = rebuild(child)
                if isinstance(rebuilt, Seq):
                    # Executing a Seq runs its children in order, so
                    # inlining them in the parent is sequence-preserving.
                    items = rebuilt.stmts
                    steps.append(
                        RewriteStep(
                            "seq-drop-empty" if not items else "seq-flatten",
                            detail=f"inlined {len(items)} nested stmt(s)",
                        )
                    )
                else:
                    items = (rebuilt,)
                for item in items:
                    if (
                        children
                        and isinstance(item, Block)
                        and isinstance(children[-1], Block)
                        and can_merge(children[-1], item)
                    ):
                        prev = children.pop()
                        children.append(
                            Block(
                                prev.instructions + item.instructions,
                                prev.mem_refs + item.mem_refs,
                                name=prev.name or item.name,
                            )
                        )
                        steps.append(
                            RewriteStep(
                                "block-merge",
                                site=prev.name or item.name,
                                detail="merged adjacent compute blocks "
                                "(integral costs, bounded sum)",
                            )
                        )
                    else:
                        children.append(item)
            if len(children) == 1:
                steps.append(RewriteStep("seq-collapse-singleton"))
                return children[0]
            return Seq(children)
        if isinstance(stmt, If):
            then = rebuild(stmt.then)
            orelse = (
                rebuild(stmt.orelse) if stmt.orelse is not None else None
            )
            if orelse is not None and is_empty(orelse):
                steps.append(RewriteStep("if-drop-empty-else", stmt.site))
                orelse = None
            if then is stmt.then and orelse is stmt.orelse:
                return stmt
            return replace(stmt, then=then, orelse=orelse)
        if isinstance(stmt, Loop):
            body = rebuild(stmt.body)
            return stmt if body is stmt.body else replace(stmt, body=body)
        if isinstance(stmt, While):
            body = rebuild(stmt.body)
            return stmt if body is stmt.body else replace(stmt, body=body)
        if isinstance(stmt, IndirectCall):
            table = {
                address: rebuild(callee)
                for address, callee in stmt.table.items()
            }
            default = (
                rebuild(stmt.default) if stmt.default is not None else None
            )
            if default is stmt.default and all(
                table[a] is stmt.table[a] for a in table
            ):
                return stmt
            return replace(stmt, table=table, default=default)
        return stmt

    new_body = rebuild(program.body)
    if new_body == program.body:
        return program, []
    return replace(program, body=new_body), steps
