"""The optimizer driver: pass scheduling + translation validation.

:func:`optimize_program` runs the enabled passes in order (normalize,
fold, dce, cse, licm, then a normalize cleanup to flatten the wrappers
the later passes introduce), repeating the whole sequence until a
round changes nothing.  After every pass that reports rewrites, the
translation validator re-checks the candidate; a failing candidate is
*discarded* — the driver keeps the predecessor program and records the
failure as an error diagnostic — so optimize_program never returns a
program that failed validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs.ir import Program
from repro.programs.opt.certificate import (
    OptimizationResult,
    RewriteCertificate,
    program_digest,
)
from repro.programs.opt.cse import cse
from repro.programs.opt.dce import dce
from repro.programs.opt.fold import fold
from repro.programs.opt.licm import licm
from repro.programs.opt.normalize import normalize
from repro.programs.opt.rewrite import (
    FreshNames,
    OptContext,
    program_names,
    sound_cost_bound,
)
from repro.programs.opt.verify import rewrite_diagnostics, validate_rewrite
from repro.programs.validate import free_variables

__all__ = ["OptConfig", "optimize_program", "PASS_FUNCTIONS"]


@dataclass(frozen=True)
class OptConfig:
    """Per-pass switches and driver policy.

    Attributes:
        normalize / fold / dce / cse / licm: Enable the named pass.
        validate: Run the translation validator after every pass and
            discard rewrites that fail (disable only in tests).
        assume_input_ranges: Let *rewrite decisions* (not just cost
            comparisons) assume the caller's declared input ranges.
            Off by default: a range-derived fold is only valid for
            inputs inside the ranges, so callers must opt in knowingly.
        max_rounds: Upper bound on full pass-sequence repetitions.
    """

    normalize: bool = True
    fold: bool = True
    dce: bool = True
    cse: bool = True
    licm: bool = True
    validate: bool = True
    assume_input_ranges: bool = False
    max_rounds: int = 4


#: Pass registry, in execution order.  Module-level on purpose: tests
#: monkeypatch entries to prove the validator rejects a broken pass.
PASS_FUNCTIONS: list[tuple[str, object]] = [
    ("normalize", normalize),
    ("fold", fold),
    ("dce", dce),
    ("cse", cse),
    ("licm", licm),
    ("cleanup", normalize),
]

_PASS_SWITCH = {
    "normalize": "normalize",
    "fold": "fold",
    "dce": "dce",
    "cse": "cse",
    "licm": "licm",
    "cleanup": "normalize",
}


def optimize_program(
    program: Program,
    *,
    config: OptConfig | None = None,
    input_names=None,
    input_ranges=None,
) -> OptimizationResult:
    """Optimize ``program``; every kept rewrite is validator-approved.

    Args:
        program: The program to optimize (never mutated).
        config: Pass switches; defaults to everything on.
        input_names: Declared input variables.  Defaults to the
            program's free variables — names bound by the runtime.
        input_ranges: Optional ``{name: (lo, hi)}`` ranges.  Always used
            for cost-bound *comparison*; only used for rewrite decisions
            when ``config.assume_input_ranges`` is set.
    """
    from repro.programs.opt.rewrite import node_count

    config = config or OptConfig()
    if input_names is None:
        input_names = free_variables(program)
    ctx = OptContext(
        input_names=frozenset(input_names),
        input_ranges=dict(input_ranges) if input_ranges else None,
        fold_ranges=(
            dict(input_ranges)
            if (input_ranges and config.assume_input_ranges)
            else None
        ),
        fresh=FreshNames(program_names(program)),
    )

    current = program
    certificates: list[RewriteCertificate] = []
    diagnostics = []
    for _ in range(max(1, config.max_rounds)):
        round_changed = False
        for pass_name, pass_fn in PASS_FUNCTIONS:
            if not getattr(config, _PASS_SWITCH[pass_name]):
                continue
            candidate, steps = pass_fn(current, ctx)
            if not steps:
                continue
            checks = (
                validate_rewrite(current, candidate, ctx, pass_name)
                if config.validate
                else []
            )
            accepted = all(check.ok for check in checks)
            cost_before = sound_cost_bound(current, ctx.input_ranges)
            cost_after = sound_cost_bound(candidate, ctx.input_ranges)
            certificates.append(
                RewriteCertificate(
                    pass_name=pass_name,
                    program=program.name,
                    before_digest=program_digest(current),
                    after_digest=program_digest(candidate),
                    accepted=accepted,
                    rewrites=tuple(steps),
                    checks=tuple(checks),
                    cost_before=(
                        cost_before.instructions,
                        cost_before.mem_refs,
                    ),
                    cost_after=(cost_after.instructions, cost_after.mem_refs),
                )
            )
            if accepted:
                current = candidate
                round_changed = True
            else:
                diagnostics.extend(
                    rewrite_diagnostics(pass_name, program, checks)
                )
        if not round_changed:
            break
    return OptimizationResult(
        original=program,
        program=current,
        certificates=tuple(certificates),
        diagnostics=tuple(diagnostics),
        nodes_before=node_count(program),
        nodes_after=node_count(current),
    )
