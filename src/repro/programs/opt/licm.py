"""Loop-invariant code motion: hoist re-evaluated expressions out.

A loop body's expression slots are re-evaluated by the host interpreter
on every trip.  When an expression's operands cannot change inside the
loop — no statement in the body writes them and the loop variable is
not among them — every trip computes the same value, which also equals
the value at loop entry.  LICM evaluates it once into an optimizer
temporary before the loop and substitutes a ``Var`` read in the body.

The hoisted ``Assign(tmp, e, cost=0.0)`` adds exactly ``0.0`` to the
cost accumulator (an exact identity) and runs even when the loop runs
zero trips — an *extra* evaluation relative to the original, which is
only behaviour-preserving because the guards prove it cannot fault:
operands are must-defined at the loop head and the expression contains
no partial operator (:func:`eval_cannot_raise`).  Counted loops
participate too — hoisting touches neither the trip count nor the
feature record.

Eligible in-body slots are the same as CSE's plus an inner ``While``'s
condition: the temp is written once before the loop and never inside
it, so re-evaluating ``Var(tmp)`` per trip-check is still the same
value.  Hoisting operates on *maximal invariant subexpressions* of each
slot — ``g + in_a * 5`` with ``g`` varying still hoists ``in_a * 5``.
A hoisted subexpression may sit under a short-circuiting ``BoolOp`` arm
the original never evaluated; that is exactly why the cannot-fault
guards are mandatory rather than merely prudent.  Bodies of elided
loops are skipped (they never execute), but an elided loop's *count* is
still a live slot.
"""

from __future__ import annotations

from dataclasses import replace

from repro.programs.analysis.reaching import must_defined
from repro.programs.expr import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    IfExpr,
    UnaryOp,
    Var,
)
from repro.programs.ir import (
    Assign,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)
from repro.programs.opt.rewrite import (
    OptContext,
    RewriteStep,
    eval_cannot_raise,
    subtree_writes,
)

__all__ = ["licm"]

_MAX_ROUNDS = 3


def licm(program: Program, ctx: OptContext) -> tuple[Program, list[RewriteStep]]:
    """Iterate hoisting rounds so inner hoists can move further out."""
    steps: list[RewriteStep] = []
    current = program
    for _ in range(_MAX_ROUNDS):
        current, round_steps = _licm_round(current, ctx)
        if not round_steps:
            break
        steps.extend(round_steps)
    return current, steps


def _collect_slots(stmt: Stmt, out: list[Expr]) -> None:
    """Every expression slot evaluated somewhere under ``stmt``."""
    if isinstance(stmt, Assign):
        out.append(stmt.expr)
    elif isinstance(stmt, Hint):
        if stmt.counted:
            out.append(stmt.expr)
    elif isinstance(stmt, Seq):
        for child in stmt.stmts:
            _collect_slots(child, out)
    elif isinstance(stmt, If):
        out.append(stmt.cond)
        _collect_slots(stmt.then, out)
        if stmt.orelse is not None:
            _collect_slots(stmt.orelse, out)
    elif isinstance(stmt, Loop):
        out.append(stmt.count)
        if not stmt.elide_body:
            _collect_slots(stmt.body, out)
    elif isinstance(stmt, While):
        out.append(stmt.cond)
        _collect_slots(stmt.body, out)
    elif isinstance(stmt, IndirectCall):
        out.append(stmt.target)
        for callee in stmt.table.values():
            _collect_slots(callee, out)
        if stmt.default is not None:
            _collect_slots(stmt.default, out)


def _expr_children(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, (BinOp, Compare)):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, BoolOp):
        return tuple(expr.operands)
    if isinstance(expr, IfExpr):
        return (expr.cond, expr.then, expr.orelse)
    return ()


def _rebuild_expr(expr: Expr, children: tuple[Expr, ...]) -> Expr:
    if isinstance(expr, BinOp):
        return BinOp(expr.op, children[0], children[1])
    if isinstance(expr, Compare):
        return Compare(expr.op, children[0], children[1])
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, children[0])
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, list(children))
    if isinstance(expr, IfExpr):
        return IfExpr(children[0], children[1], children[2])
    return expr


def _collect_invariant(expr: Expr, invariant, out: list[Expr]) -> None:
    """Maximal invariant subexpressions of ``expr``, outermost first."""
    if not isinstance(expr, (Const, Var)) and invariant(expr):
        out.append(expr)
        return
    for child in _expr_children(expr):
        _collect_invariant(child, invariant, out)


def _substitute(stmt: Stmt, mapping: dict[Expr, Expr]) -> Stmt:
    """Replace mapped subexpressions (by structural equality) throughout."""

    def sub(expr: Expr) -> Expr:
        hit = mapping.get(expr)
        if hit is not None:
            return hit
        children = _expr_children(expr)
        if not children:
            return expr
        rebuilt = tuple(sub(child) for child in children)
        if all(a is b for a, b in zip(rebuilt, children)):
            return expr
        return _rebuild_expr(expr, rebuilt)

    if isinstance(stmt, Assign):
        expr = sub(stmt.expr)
        return stmt if expr is stmt.expr else replace(stmt, expr=expr)
    if isinstance(stmt, Hint):
        if not stmt.counted:
            return stmt
        expr = sub(stmt.expr)
        return stmt if expr is stmt.expr else replace(stmt, expr=expr)
    if isinstance(stmt, Seq):
        children = [_substitute(child, mapping) for child in stmt.stmts]
        if all(a is b for a, b in zip(children, stmt.stmts)):
            return stmt
        return Seq(children)
    if isinstance(stmt, If):
        cond = sub(stmt.cond)
        then = _substitute(stmt.then, mapping)
        orelse = (
            _substitute(stmt.orelse, mapping)
            if stmt.orelse is not None
            else None
        )
        if cond is stmt.cond and then is stmt.then and orelse is stmt.orelse:
            return stmt
        return replace(stmt, cond=cond, then=then, orelse=orelse)
    if isinstance(stmt, Loop):
        count = sub(stmt.count)
        body = (
            stmt.body
            if stmt.elide_body
            else _substitute(stmt.body, mapping)
        )
        if count is stmt.count and body is stmt.body:
            return stmt
        return replace(stmt, count=count, body=body)
    if isinstance(stmt, While):
        cond = sub(stmt.cond)
        body = _substitute(stmt.body, mapping)
        if cond is stmt.cond and body is stmt.body:
            return stmt
        return replace(stmt, cond=cond, body=body)
    if isinstance(stmt, IndirectCall):
        target = sub(stmt.target)
        table = {
            address: _substitute(callee, mapping)
            for address, callee in stmt.table.items()
        }
        default = (
            _substitute(stmt.default, mapping)
            if stmt.default is not None
            else None
        )
        if (
            target is stmt.target
            and default is stmt.default
            and all(table[a] is stmt.table[a] for a in table)
        ):
            return stmt
        return replace(stmt, target=target, table=table, default=default)
    return stmt


def _licm_round(
    program: Program, ctx: OptContext
) -> tuple[Program, list[RewriteStep]]:
    defined = must_defined(program, ctx.input_names)
    steps: list[RewriteStep] = []

    def hoist_from(stmt: Loop | While) -> Stmt:
        body = rebuild(stmt.body)
        varying = set(subtree_writes(body))
        if isinstance(stmt, Loop) and stmt.loop_var is not None:
            varying.add(stmt.loop_var)
        mdef = defined.state_at(stmt)

        def invariant(expr: Expr) -> bool:
            names = expr.variables()
            return bool(
                names
                and mdef is not None
                and names <= mdef
                and not (names & varying)
                and eval_cannot_raise(expr)
            )

        slots: list[Expr] = []
        _collect_slots(body, slots)
        candidates: list[Expr] = []
        for expr in slots:
            _collect_invariant(expr, invariant, candidates)
        hoistable: list[Expr] = []
        seen: set[Expr] = set()
        for expr in candidates:
            if expr not in seen:
                seen.add(expr)
                hoistable.append(expr)
        if not hoistable:
            if body is stmt.body:
                return stmt
            return replace(stmt, body=body)

        mapping: dict[Expr, Expr] = {}
        prologue: list[Stmt] = []
        for expr in hoistable:
            tmp = ctx.fresh.fresh("licm")
            mapping[expr] = Var(tmp)
            prologue.append(Assign(tmp, expr, cost=0.0))
            steps.append(
                RewriteStep(
                    "licm",
                    site=getattr(stmt, "site", ""),
                    detail=f"hoisted invariant expression into {tmp}",
                )
            )
        new_body = _substitute(body, mapping)
        return Seq(prologue + [replace(stmt, body=new_body)])

    def rebuild(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Seq):
            children = [rebuild(child) for child in stmt.stmts]
            if all(a is b for a, b in zip(children, stmt.stmts)):
                return stmt
            return Seq(children)
        if isinstance(stmt, If):
            then = rebuild(stmt.then)
            orelse = (
                rebuild(stmt.orelse) if stmt.orelse is not None else None
            )
            if then is stmt.then and orelse is stmt.orelse:
                return stmt
            return replace(stmt, then=then, orelse=orelse)
        if isinstance(stmt, Loop):
            if stmt.elide_body:
                return stmt
            return hoist_from(stmt)
        if isinstance(stmt, While):
            return hoist_from(stmt)
        if isinstance(stmt, IndirectCall):
            table = {
                address: rebuild(callee)
                for address, callee in stmt.table.items()
            }
            default = (
                rebuild(stmt.default) if stmt.default is not None else None
            )
            if default is stmt.default and all(
                table[a] is stmt.table[a] for a in table
            ):
                return stmt
            return replace(stmt, table=table, default=default)
        return stmt

    new_body = rebuild(program.body)
    if not steps:
        return program, []
    return replace(program, body=new_body), steps
