"""Constant folding, sparse constant propagation, and control folding.

Three cooperating rewrite families, iterated to a fixpoint:

- **Closed-expression folding** — a subexpression with no variables
  evaluates now, through the language's own operator tables, to the
  exact value the interpreter would produce (including the div-by-zero
  → 0 convention and int/float typing).
- **Sparse constant propagation** — a variable read whose reaching
  definitions (PR 3's may-analysis) are all ``Assign``s of one constant
  value substitutes that constant.  Values come from actual ``Const``
  nodes, so they are exact, type and all.  Globals the program never
  writes keep their ``globals_init`` value across every job and
  propagate the same way.
- **Control folding** — branch/loop/call decisions proved constant by
  the interval analysis fold away.  Decisions are *typing-insensitive*
  (truthiness, ``int()`` coercion), so an interval verdict suffices
  where expression substitution would not: an interval point ``5.0``
  cannot distinguish runtime ``5`` from ``5.0``, but both take the same
  branch.  Counted nodes are never folded — their feature observations
  are part of the program's meaning.

Every rewrite that *removes* an expression evaluation is guarded by the
must-defined analysis: ``Var.evaluate`` raises ``KeyError`` on unbound
names, and "crashes exactly when the original crashes" is part of
bit-identical behaviour.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.programs.analysis.dataflow import DataflowEngine
from repro.programs.analysis.hazards import assigned_names
from repro.programs.analysis.intervals import eval_interval
from repro.programs.analysis.reaching import (
    GLOBAL_DEF,
    INPUT_DEF,
    LOOP_VAR_DEF,
    ReachingDefinitions,
    must_defined,
)
from repro.programs.expr import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    IfExpr,
    UnaryOp,
    Var,
)
from repro.programs.ir import (
    BRANCH_COST,
    CALL_DISPATCH_COST,
    LOOP_ITER_COST,
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)
from repro.programs.opt.rewrite import (
    OptContext,
    RewriteStep,
    eval_cannot_raise,
    opt_interval_engine,
)

__all__ = ["fold"]

_MAX_ROUNDS = 6
_MISSING = object()


def fold(
    program: Program, ctx: OptContext
) -> tuple[Program, list[RewriteStep]]:
    """Iterate fold rounds to a fixpoint (each round re-analyzes)."""
    steps: list[RewriteStep] = []
    current = program
    for _ in range(_MAX_ROUNDS):
        current, round_steps = _fold_round(current, ctx)
        if not round_steps:
            break
        steps.extend(round_steps)
    return current, steps


def _fold_round(
    program: Program, ctx: OptContext
) -> tuple[Program, list[RewriteStep]]:
    intervals = opt_interval_engine(program, ctx.fold_ranges)
    defined = must_defined(program, ctx.input_names)
    reach_pass = ReachingDefinitions(program.body)
    reach = DataflowEngine(reach_pass)
    reach.run(program.body, reach_pass.boundary(program, ctx.input_names))

    written = assigned_names(program)
    global_consts = {
        name: value
        for name, value in program.globals_init.items()
        if name not in written and isinstance(value, (bool, int, float))
    }
    const_defs: dict[str, object] = {}
    for node in _walk(program.body):
        if isinstance(node, Assign) and isinstance(node.expr, Const):
            token = f"{node.target}@{reach_pass.label(node)}"
            const_defs[token] = node.expr.value

    steps: list[RewriteStep] = []

    def const_of(name: str, rstate) -> object:
        """The single constant value every reaching def assigns, else
        ``_MISSING``.  Values are exact runtime values (from Const
        nodes / never-written globals), so substitution is bit-exact."""
        if rstate is None:
            return _MISSING
        defs = dict(rstate).get(name)
        if not defs:
            return _MISSING
        value = _MISSING
        for token in defs:
            if token == GLOBAL_DEF:
                candidate = global_consts.get(name, _MISSING)
            elif token in (INPUT_DEF, LOOP_VAR_DEF):
                candidate = _MISSING
            else:
                candidate = const_defs.get(token, _MISSING)
            if candidate is _MISSING:
                return _MISSING
            if value is _MISSING:
                value = candidate
            elif not (
                type(candidate) is type(value) and candidate == value
            ):
                return _MISSING
        return value

    def fold_expr(expr: Expr, mdef, rstate) -> Expr:
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, Var):
            # Substituting an equal value does not remove the read's
            # KeyError, it removes the read itself — guard it.
            if mdef is None or expr.name not in mdef:
                return expr
            value = const_of(expr.name, rstate)
            if value is not _MISSING:
                steps.append(
                    RewriteStep(
                        "const-prop",
                        site=expr.name,
                        detail=f"all reaching defs assign {value!r}",
                    )
                )
                return Const(value)
            return expr
        rebuilt = _rebuild_expr(expr, lambda e: fold_expr(e, mdef, rstate))
        if rebuilt.variables():
            return rebuilt
        try:
            value = rebuilt.evaluate({})
        except (OverflowError, ValueError, ZeroDivisionError):
            # The interpreter would raise the same way; keep the node.
            return rebuilt
        if not isinstance(value, (bool, int, float)):
            return rebuilt
        steps.append(
            RewriteStep("const-fold", detail=f"closed expr -> {value!r}")
        )
        return Const(value)

    def fold_slot(expr: Expr, node: Stmt) -> Expr:
        return fold_expr(
            expr, defined.state_at(node), reach.state_at(node)
        )

    def decide(expr: Expr, node: Stmt) -> bool | None:
        """Constant truth verdict for a control decision, or None.

        A Const decides outright.  Otherwise the interval verdict
        decides, but only if the expression's reads are must-defined:
        folding the control node away deletes the evaluation."""
        if isinstance(expr, Const):
            return bool(expr.value)
        env = intervals.state_at(node)
        mdef = defined.state_at(node)
        if env is None or mdef is None:
            return None
        if not expr.variables() <= mdef or not eval_cannot_raise(expr):
            return None
        verdict = eval_interval(expr, env)
        if verdict.definitely_true:
            return True
        if verdict.definitely_false:
            return False
        return None

    def point(expr: Expr, node: Stmt) -> float | None:
        """Exact numeric verdict for a control decision, or None."""
        if isinstance(expr, Const):
            return float(expr.value)
        env = intervals.state_at(node)
        mdef = defined.state_at(node)
        if env is None or mdef is None:
            return None
        if not expr.variables() <= mdef or not eval_cannot_raise(expr):
            return None
        verdict = eval_interval(expr, env)
        if verdict.lo == verdict.hi and math.isfinite(verdict.lo):
            return verdict.lo
        return None

    def rebuild(stmt: Stmt) -> Stmt:
        if defined.state_at(stmt) is None:
            # Unreachable for the analyses (an elided loop body):
            # nothing here executes, so leave it untouched.
            return stmt
        if isinstance(stmt, (Block,)):
            return stmt
        if isinstance(stmt, Assign):
            expr = fold_slot(stmt.expr, stmt)
            return stmt if expr is stmt.expr else replace(stmt, expr=expr)
        if isinstance(stmt, Hint):
            if not stmt.counted:
                return stmt  # uncounted hints never evaluate their expr
            expr = fold_slot(stmt.expr, stmt)
            return stmt if expr is stmt.expr else replace(stmt, expr=expr)
        if isinstance(stmt, Seq):
            children = [rebuild(child) for child in stmt.stmts]
            if all(a is b for a, b in zip(children, stmt.stmts)):
                return stmt
            return Seq(children)
        if isinstance(stmt, If):
            cond = fold_slot(stmt.cond, stmt)
            then = rebuild(stmt.then)
            orelse = (
                rebuild(stmt.orelse) if stmt.orelse is not None else None
            )
            if not stmt.counted:
                verdict = decide(cond, stmt)
                if verdict is True:
                    steps.append(
                        RewriteStep(
                            "fold-branch-true",
                            stmt.site,
                            "condition proved true; branch cost kept",
                        )
                    )
                    return Seq(
                        [Block(BRANCH_COST, name=f"fold:{stmt.site}"), then]
                    )
                if verdict is False:
                    steps.append(
                        RewriteStep(
                            "fold-branch-false",
                            stmt.site,
                            "condition proved false; branch cost kept",
                        )
                    )
                    taken = [] if orelse is None else [orelse]
                    return Seq(
                        [Block(BRANCH_COST, name=f"fold:{stmt.site}")]
                        + taken
                    )
            if (
                cond is stmt.cond
                and then is stmt.then
                and orelse is stmt.orelse
            ):
                return stmt
            return replace(stmt, cond=cond, then=then, orelse=orelse)
        if isinstance(stmt, Loop):
            count = fold_slot(stmt.count, stmt)
            body = rebuild(stmt.body)
            if not stmt.counted:
                if stmt.elide_body:
                    # The node evaluates its count (including the int()
                    # trip clamp, which faults on non-finite values),
                    # runs nothing, counts nothing.  Removable only when
                    # that evaluation provably cannot fault.
                    env = intervals.state_at(stmt)
                    mdef = defined.state_at(stmt)
                    if (
                        env is not None
                        and mdef is not None
                        and count.variables() <= mdef
                        and eval_cannot_raise(count)
                    ):
                        span = eval_interval(count, env)
                        if math.isfinite(span.lo) and math.isfinite(span.hi):
                            steps.append(
                                RewriteStep(
                                    "fold-elided-loop",
                                    stmt.site,
                                    "uncounted elided loop is a no-op",
                                )
                            )
                            return Seq(())
                else:
                    verdict = point(count, stmt)
                    if verdict is not None:
                        trips = max(0, min(int(verdict), stmt.max_trips))
                        if trips == 0:
                            steps.append(
                                RewriteStep(
                                    "fold-loop-zero",
                                    stmt.site,
                                    "trip count proved 0",
                                )
                            )
                            return Seq(())
                        if trips == 1:
                            steps.append(
                                RewriteStep(
                                    "fold-loop-single",
                                    stmt.site,
                                    "trip count proved 1; loop unrolled",
                                )
                            )
                            prologue: list[Stmt] = [
                                Block(
                                    LOOP_ITER_COST,
                                    name=f"fold:{stmt.site}",
                                )
                            ]
                            if stmt.loop_var is not None:
                                prologue.append(
                                    Assign(
                                        stmt.loop_var, Const(0), cost=0.0
                                    )
                                )
                            return Seq(prologue + [body])
            if count is stmt.count and body is stmt.body:
                return stmt
            return replace(stmt, count=count, body=body)
        if isinstance(stmt, While):
            # The condition re-evaluates before EVERY iteration, and the
            # engine's state at the While node is the loop-entry state —
            # substituting entry-state constants into the condition would
            # freeze a counter the body updates (an infinite loop up to
            # max_trips).  Only closed subexpressions — iteration-
            # independent by construction — may fold here.
            cond = fold_expr(stmt.cond, None, None)
            body = rebuild(stmt.body)
            # With max_trips == 0 the interpreter exits before even the
            # first condition check, so there is no cost (and no
            # evaluation) to preserve.
            if not stmt.counted and stmt.max_trips >= 1:
                verdict = decide(cond, stmt)
                if verdict is False:
                    steps.append(
                        RewriteStep(
                            "fold-while-false",
                            stmt.site,
                            "condition proved false; one check cost kept",
                        )
                    )
                    return Block(BRANCH_COST, name=f"fold:{stmt.site}")
            if cond is stmt.cond and body is stmt.body:
                return stmt
            return replace(stmt, cond=cond, body=body)
        if isinstance(stmt, IndirectCall):
            target = fold_slot(stmt.target, stmt)
            table = {
                address: rebuild(callee)
                for address, callee in stmt.table.items()
            }
            default = (
                rebuild(stmt.default) if stmt.default is not None else None
            )
            if not stmt.counted:
                verdict = point(target, stmt)
                if verdict is not None:
                    address = int(verdict)
                    callee = table.get(address, default)
                    steps.append(
                        RewriteStep(
                            "devirtualize",
                            stmt.site,
                            f"target proved {address}; dispatch cost kept",
                        )
                    )
                    dispatch = Block(
                        CALL_DISPATCH_COST, name=f"fold:{stmt.site}"
                    )
                    if callee is None:
                        return dispatch
                    return Seq([dispatch, callee])
            if (
                target is stmt.target
                and default is stmt.default
                and all(table[a] is stmt.table[a] for a in table)
            ):
                return stmt
            return replace(stmt, target=target, table=table, default=default)
        raise TypeError(f"unknown statement type {type(stmt).__name__}")

    new_body = rebuild(program.body)
    if not steps:
        return program, []
    return replace(program, body=new_body), steps


def _rebuild_expr(expr: Expr, fn) -> Expr:
    """Rebuild one expression node with ``fn`` applied to each child."""
    if isinstance(expr, BinOp):
        left, right = fn(expr.left), fn(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(expr.op, left, right)
    if isinstance(expr, Compare):
        left, right = fn(expr.left), fn(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return Compare(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = fn(expr.operand)
        if operand is expr.operand:
            return expr
        return UnaryOp(expr.op, operand)
    if isinstance(expr, BoolOp):
        operands = [fn(o) for o in expr.operands]
        if all(a is b for a, b in zip(operands, expr.operands)):
            return expr
        return BoolOp(expr.op, operands)
    if isinstance(expr, IfExpr):
        cond, then, orelse = fn(expr.cond), fn(expr.then), fn(expr.orelse)
        if (
            cond is expr.cond
            and then is expr.then
            and orelse is expr.orelse
        ):
            return expr
        return IfExpr(cond, then, orelse)
    return expr


def _walk(stmt: Stmt):
    from repro.programs.ir import walk

    return walk(stmt)
