"""Analysis-guided IR optimizer with translation validation.

``optimize_program`` rewrites a task/slice program into an equivalent
one that is cheaper for the *host* interpreter to execute — fewer node
dispatches and fewer expression evaluations — while leaving everything
the simulation observes bit-identical: final globals, feature records,
and the instruction/memory cycle accumulators.  Each pass logs its
rewrites into a :class:`RewriteCertificate`, and a translation
validator re-checks every candidate against the program it replaced;
rewrites that fail any check are discarded, never applied.

Passes: normalization, constant folding + sparse constant propagation,
dead-code elimination, common-subexpression elimination, and
loop-invariant code motion — all built on the PR 3 dataflow engine
(:mod:`repro.programs.analysis`).
"""

from repro.programs.opt.certificate import (
    OptimizationResult,
    RewriteCertificate,
    program_digest,
)
from repro.programs.opt.cse import cse
from repro.programs.opt.dce import dce
from repro.programs.opt.driver import PASS_FUNCTIONS, OptConfig, optimize_program
from repro.programs.opt.fold import fold
from repro.programs.opt.licm import licm
from repro.programs.opt.normalize import normalize
from repro.programs.opt.rewrite import (
    EXACT_SUM_LIMIT,
    OPT_TEMP_PREFIX,
    Exactness,
    FreshNames,
    OptContext,
    RewriteStep,
    exactness,
    node_count,
    opt_interval_engine,
    sound_cost_bound,
)
from repro.programs.opt.verify import (
    CheckResult,
    counted_signature,
    rewrite_diagnostics,
    validate_rewrite,
)

__all__ = [
    "EXACT_SUM_LIMIT",
    "OPT_TEMP_PREFIX",
    "CheckResult",
    "Exactness",
    "FreshNames",
    "OptConfig",
    "OptContext",
    "OptimizationResult",
    "PASS_FUNCTIONS",
    "RewriteCertificate",
    "RewriteStep",
    "counted_signature",
    "cse",
    "dce",
    "exactness",
    "fold",
    "licm",
    "node_count",
    "normalize",
    "opt_interval_engine",
    "optimize_program",
    "program_digest",
    "rewrite_diagnostics",
    "sound_cost_bound",
    "validate_rewrite",
]
