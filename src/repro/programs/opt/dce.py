"""Dead-code elimination: liveness- and effects-guided removal.

Removal in this IR never means deleting *cost* — the simulated cycle
model charges per node executed, so a dead statement is replaced by a
``Block`` carrying exactly the cost the interpreter would have added
(or by an empty ``Seq`` when the cost is zero).  What DCE removes is
the host-side work: the expression evaluation and the environment
write.  That is precisely the work the profiler showed dominating the
interpreted hot path.

Rules (iterated to a fixpoint, since removing one dead store can make
an earlier one dead):

- an ``Assign`` whose target is not live afterwards becomes a ``Block``
  of its cost — sound even for globals, because liveness seeds the exit
  with all task globals, so a non-live global is provably overwritten
  on every path before it could be observed;
- an uncounted ``Hint`` becomes a ``Block`` of its cost — the
  interpreter never evaluates an uncounted hint's expression, so no
  guard is needed;
- an uncounted ``If`` whose branches are both empty becomes a ``Block``
  of the branch cost;
- an uncounted ``IndirectCall`` whose callees are all empty becomes a
  ``Block`` of the dispatch cost — additionally requiring a finite
  interval for the target, because the interpreter's ``int()`` address
  clamp faults on non-finite values.

Counted nodes are never removed (their feature observations are part of
program behaviour), and every rewrite that deletes an expression
evaluation is guarded by must-defined + :func:`eval_cannot_raise`.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.programs.analysis.intervals import eval_interval
from repro.programs.analysis.reaching import live_variables, must_defined
from repro.programs.ir import (
    BRANCH_COST,
    CALL_DISPATCH_COST,
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)
from repro.programs.opt.rewrite import (
    OptContext,
    RewriteStep,
    eval_cannot_raise,
    is_empty,
    opt_interval_engine,
)

__all__ = ["dce"]

_MAX_ROUNDS = 8


def dce(program: Program, ctx: OptContext) -> tuple[Program, list[RewriteStep]]:
    """Iterate DCE rounds to a fixpoint (each round re-analyzes)."""
    steps: list[RewriteStep] = []
    current = program
    for _ in range(_MAX_ROUNDS):
        current, round_steps = _dce_round(current, ctx)
        if not round_steps:
            break
        steps.extend(round_steps)
    return current, steps


def _dce_round(
    program: Program, ctx: OptContext
) -> tuple[Program, list[RewriteStep]]:
    liveness = live_variables(program)
    defined = must_defined(program, ctx.input_names)
    intervals = opt_interval_engine(program, ctx.fold_ranges)
    steps: list[RewriteStep] = []

    def cost_block(cost: float, label: str) -> Stmt:
        if cost == 0.0:
            return Seq(())
        return Block(cost, name=label)

    def removable_eval(expr, node: Stmt) -> bool:
        mdef = defined.state_at(node)
        return (
            mdef is not None
            and expr.variables() <= mdef
            and eval_cannot_raise(expr)
        )

    def rebuild(stmt: Stmt) -> Stmt:
        if defined.state_at(stmt) is None:
            # Unreachable for the analyses (an elided loop body).
            return stmt
        if isinstance(stmt, Assign):
            live_after = liveness.live_after(stmt)
            if (
                live_after is not None
                and stmt.target not in live_after
                and removable_eval(stmt.expr, stmt)
            ):
                steps.append(
                    RewriteStep(
                        "dead-store",
                        site=stmt.target,
                        detail="target never read afterwards; cost kept",
                    )
                )
                return cost_block(stmt.cost, f"dce:{stmt.target}")
            return stmt
        if isinstance(stmt, Hint):
            if not stmt.counted:
                steps.append(
                    RewriteStep(
                        "dead-hint",
                        site=stmt.site,
                        detail="uncounted hint records nothing; cost kept",
                    )
                )
                return cost_block(stmt.cost, f"dce:{stmt.site}")
            return stmt
        if isinstance(stmt, Seq):
            children = [rebuild(child) for child in stmt.stmts]
            if all(a is b for a, b in zip(children, stmt.stmts)):
                return stmt
            return Seq(children)
        if isinstance(stmt, If):
            then = rebuild(stmt.then)
            orelse = (
                rebuild(stmt.orelse) if stmt.orelse is not None else None
            )
            if (
                not stmt.counted
                and is_empty(then)
                and is_empty(orelse)
                and removable_eval(stmt.cond, stmt)
            ):
                steps.append(
                    RewriteStep(
                        "dead-branch",
                        site=stmt.site,
                        detail="both arms empty; branch cost kept",
                    )
                )
                return Block(BRANCH_COST, name=f"dce:{stmt.site}")
            if then is stmt.then and orelse is stmt.orelse:
                return stmt
            return replace(stmt, then=then, orelse=orelse)
        if isinstance(stmt, Loop):
            body = rebuild(stmt.body)
            return stmt if body is stmt.body else replace(stmt, body=body)
        if isinstance(stmt, While):
            body = rebuild(stmt.body)
            return stmt if body is stmt.body else replace(stmt, body=body)
        if isinstance(stmt, IndirectCall):
            table = {
                address: rebuild(callee)
                for address, callee in stmt.table.items()
            }
            default = (
                rebuild(stmt.default) if stmt.default is not None else None
            )
            if (
                not stmt.counted
                and all(is_empty(callee) for callee in table.values())
                and is_empty(default)
                and removable_eval(stmt.target, stmt)
            ):
                env = intervals.state_at(stmt)
                span = (
                    eval_interval(stmt.target, env)
                    if env is not None
                    else None
                )
                if (
                    span is not None
                    and math.isfinite(span.lo)
                    and math.isfinite(span.hi)
                ):
                    steps.append(
                        RewriteStep(
                            "dead-call",
                            site=stmt.site,
                            detail="all callees empty; dispatch cost kept",
                        )
                    )
                    return Block(
                        CALL_DISPATCH_COST, name=f"dce:{stmt.site}"
                    )
            if default is stmt.default and all(
                table[a] is stmt.table[a] for a in table
            ):
                return stmt
            return replace(stmt, table=table, default=default)
        return stmt  # Block

    new_body = rebuild(program.body)
    if not steps:
        return program, []
    return replace(program, body=new_body), steps
