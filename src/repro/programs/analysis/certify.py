"""Slice certification: run every analysis pass, produce one certificate.

:func:`certify_slice` is the single entry point the offline pipeline and
the ``repro check`` CLI call.  It runs, in order:

1. **validate** — structural checks on the slice tree (duplicate sites,
   cycles); name-level read checking is left to the hazards pass, whose
   reaching-definitions view also catches use-before-def orderings the
   set-based validator cannot see.
2. **effects** — the §3.2 purity rule (no observable global writes).
3. **coverage** — every non-zero-β model site is computed by the slice.
4. **hazards** — reads the name-based slicer left without a definition.
5. **liveness** — dead stores the slicer retained (wasted slice time).
6. **intervals** — worst-case instruction/mem-ref bound for the slice
   under the profiled input ranges.

The result is a :class:`SliceCertificate`: the pass list, the purity and
coverage verdicts, the static cost bound, and every diagnostic (waived
ones included, marked).  A certificate is *certified* iff no blocking
(unsuppressed error) diagnostic remains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.programs.analysis.coverage import coverage_diagnostics
from repro.programs.analysis.diagnostics import (
    Diagnostic,
    Suppression,
    apply_suppressions,
)
from repro.programs.analysis.effects import effect_diagnostics
from repro.programs.analysis.hazards import (
    dead_store_diagnostics,
    hazard_diagnostics,
)
from repro.programs.analysis.intervals import cost_bound
from repro.programs.instrument import InstrumentedProgram
from repro.programs.slicer import PredictionSlice
from repro.programs.validate import free_variables, validate_program

__all__ = ["ANALYSIS_PASSES", "SliceCertificate", "CertificationError",
           "certify_slice"]

#: Passes :func:`certify_slice` runs, in order.
ANALYSIS_PASSES = (
    "validate",
    "effects",
    "coverage",
    "hazards",
    "liveness",
    "intervals",
)


@dataclass(frozen=True)
class SliceCertificate:
    """Machine-checked facts about one prediction slice.

    Attributes:
        program_name: Name of the certified slice program.
        passes: Analysis passes that ran (in order).
        side_effect_free: True when the slice writes no task global.
        writes_globals: The globals it may write (empty when pure).
        coverage_ok: True when every model-needed site is computed.
        covered_sites: Needed sites the slice does compute (sorted).
        cost_bound_instructions: Static worst-case instruction count,
            ``inf`` when unbounded.
        cost_bound_mem_refs: Static worst-case memory references.
        cost_bound_tight: False when a loop bound came from the
            ``max_trips`` safety clamp — sound but not schedulable.
        diagnostics: Every finding, waived ones included.
    """

    program_name: str
    passes: tuple[str, ...]
    side_effect_free: bool
    writes_globals: tuple[str, ...]
    coverage_ok: bool
    covered_sites: tuple[str, ...]
    cost_bound_instructions: float
    cost_bound_mem_refs: float
    cost_bound_tight: bool
    diagnostics: tuple[Diagnostic, ...]

    @property
    def certified(self) -> bool:
        """No unsuppressed error-severity findings remain."""
        return not any(d.blocking for d in self.diagnostics)

    @property
    def blocking(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.blocking)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dict; non-finite bounds serialize as ``None``."""
        instr = self.cost_bound_instructions
        mem = self.cost_bound_mem_refs
        return {
            "program_name": self.program_name,
            "certified": self.certified,
            "passes": list(self.passes),
            "side_effect_free": self.side_effect_free,
            "writes_globals": list(self.writes_globals),
            "coverage_ok": self.coverage_ok,
            "covered_sites": list(self.covered_sites),
            "cost_bound_instructions": instr if math.isfinite(instr) else None,
            "cost_bound_mem_refs": mem if math.isfinite(mem) else None,
            "cost_bound_tight": self.cost_bound_tight,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SliceCertificate":
        instr = data["cost_bound_instructions"]
        mem = data["cost_bound_mem_refs"]
        return cls(
            program_name=data["program_name"],
            passes=tuple(data["passes"]),
            side_effect_free=data["side_effect_free"],
            writes_globals=tuple(data["writes_globals"]),
            coverage_ok=data["coverage_ok"],
            covered_sites=tuple(data["covered_sites"]),
            cost_bound_instructions=math.inf if instr is None else instr,
            cost_bound_mem_refs=math.inf if mem is None else mem,
            cost_bound_tight=data["cost_bound_tight"],
            diagnostics=tuple(
                Diagnostic.from_dict(d) for d in data["diagnostics"]
            ),
        )


class CertificationError(RuntimeError):
    """Raised by the pipeline (certify="error") for uncertified slices."""

    def __init__(self, certificate: SliceCertificate):
        self.certificate = certificate
        findings = "; ".join(d.format() for d in certificate.blocking)
        super().__init__(
            f"slice {certificate.program_name!r} failed certification: "
            f"{findings}"
        )


def certify_slice(
    instrumented: InstrumentedProgram,
    slice_: PredictionSlice,
    needed_sites: frozenset[str] | None = None,
    *,
    input_names: frozenset[str] | None = None,
    input_ranges: Mapping[str, tuple[float, float]] | None = None,
    waivers: Sequence[Suppression] = (),
) -> SliceCertificate:
    """Run every analysis pass over a prediction slice.

    Args:
        instrumented: The instrumented full program the slice came from
            (used to classify dropped-definition hazards).
        slice_: The slice to certify.
        needed_sites: Feature sites the trained model actually reads
            (non-zero β).  Defaults to every site the slice kept — i.e.
            coverage trivially passes when no model is involved yet.
        input_names: The program's declared input names (for the unbound
            vs dropped-definition distinction).  Defaults to the original
            program's free variables — everything it reads but never
            assigns is presumptively an input.
        input_ranges: Per-input (lo, hi) value ranges, e.g. from the
            profiling sample, for the interval cost bound.
        waivers: Reviewed suppressions (typically the workload's
            ``certifier_waivers``).
    """
    program = slice_.program
    name = program.name
    if input_names is None:
        input_names = free_variables(instrumented.program)
    diagnostics: list[Diagnostic] = []

    try:
        validate_program(program)
    except ValueError as exc:
        diagnostics.append(
            Diagnostic(
                pass_name="validate",
                severity="error",
                site="",
                message=str(exc),
                program=name,
            )
        )

    report, effect_diags = effect_diagnostics(program, program_name=name)
    diagnostics += effect_diags

    needed = slice_.needed_sites if needed_sites is None else needed_sites
    covered, coverage_diags = coverage_diagnostics(
        program.body, frozenset(needed), program_name=name
    )
    diagnostics += coverage_diags

    diagnostics += hazard_diagnostics(
        program,
        original=instrumented.program,
        input_names=input_names,
        program_name=name,
    )
    diagnostics += dead_store_diagnostics(program, program_name=name)

    bound, bound_diags = cost_bound(
        program, input_ranges=input_ranges, program_name=name
    )
    diagnostics += bound_diags

    return SliceCertificate(
        program_name=name,
        passes=ANALYSIS_PASSES,
        side_effect_free=report.side_effect_free,
        writes_globals=tuple(sorted(report.may_write_globals)),
        coverage_ok=not any(
            d.pass_name == "coverage" and d.severity == "error"
            for d in diagnostics
        ),
        covered_sites=tuple(sorted(covered)),
        cost_bound_instructions=bound.instructions,
        cost_bound_mem_refs=bound.mem_refs,
        cost_bound_tight=bound.tight,
        diagnostics=tuple(apply_suppressions(diagnostics, tuple(waivers))),
    )
