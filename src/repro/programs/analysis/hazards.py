"""Approximation-hazard linter for name-based slicing.

The slicer follows the paper in tracking dependences "based only on
variable names" (§3.2) — fast, but approximate: it can drop an
assignment whose value the retained control skeleton still reads.  At
run time such a read faults (or, worse, reads a stale global of the same
name).  This linter replays reaching definitions over the *slice* and
reports every read with no reaching definition, classifying it:

- **dropped definition** — the original program assigns the name, so the
  slicer's dependence analysis lost it (the §3.2 hazard proper);
- **unbound variable** — the original never assigns it either (a typo in
  the workload program; `validate_program` catches these earlier when
  given the declared inputs).

A secondary liveness sweep reports retained assignments whose targets
are never read again — not a safety problem, but pure wasted slice time.
"""

from __future__ import annotations

from repro.programs.analysis.diagnostics import Diagnostic
from repro.programs.analysis.reaching import (
    live_variables,
    reaching_definitions,
    read_variables,
)
from repro.programs.ir import Assign, Loop, Program, walk

__all__ = ["assigned_names", "hazard_diagnostics", "dead_store_diagnostics"]


def assigned_names(program: Program) -> frozenset[str]:
    """Every name the program can bind (assign targets and loop vars)."""
    names: set[str] = set()
    for node in walk(program.body):
        if isinstance(node, Assign):
            names.add(node.target)
        elif isinstance(node, Loop) and node.loop_var is not None:
            names.add(node.loop_var)
    return frozenset(names)


def hazard_diagnostics(
    slice_program: Program,
    original: Program | None = None,
    input_names: frozenset[str] | None = None,
    program_name: str = "",
) -> list[Diagnostic]:
    """Reads in the slice that no definition can reach."""
    engine = reaching_definitions(slice_program, input_names)
    original_defs = (
        assigned_names(original) if original is not None else frozenset()
    )
    diagnostics: list[Diagnostic] = []
    reported: set[str] = set()
    for node in walk(slice_program.body):
        state = engine.state_at(node)
        if state is None:
            continue  # unreachable, e.g. inside an elided loop body
        defined = dict(state)
        for name in sorted(read_variables(node)):
            if name in defined and defined[name]:
                continue
            if name in reported:
                continue
            reported.add(name)
            if name in original_defs:
                message = (
                    f"slice reads {name!r} but name-based slicing dropped "
                    "every definition of it; the control skeleton would "
                    "fault (or read stale state) at run time"
                )
            else:
                message = (
                    f"slice reads {name!r}, which is neither an input, a "
                    "global, a loop variable, nor ever assigned — likely "
                    "a typo in the workload program"
                )
            diagnostics.append(
                Diagnostic(
                    pass_name="hazards",
                    severity="error",
                    site=name,
                    message=message,
                    program=program_name or slice_program.name,
                )
            )
    return diagnostics


def dead_store_diagnostics(
    slice_program: Program, program_name: str = ""
) -> list[Diagnostic]:
    """Retained assignments whose values nothing ever reads again."""
    result = live_variables(slice_program)
    diagnostics: list[Diagnostic] = []
    for node in walk(slice_program.body):
        if not isinstance(node, Assign):
            continue
        live_after = result.live_after(node)
        if live_after is None:
            continue  # unreachable (elided loop body)
        if node.target not in live_after:
            diagnostics.append(
                Diagnostic(
                    pass_name="liveness",
                    severity="info",
                    site=node.target,
                    message=(
                        f"assignment to {node.target!r} is dead in the "
                        "slice (never read afterwards); it costs "
                        f"{node.cost:g} instructions per run for nothing"
                    ),
                    program=program_name or slice_program.name,
                )
            )
    return diagnostics
