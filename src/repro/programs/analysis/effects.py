"""Side-effect / purity analysis for prediction slices.

The paper's §3.2 safety argument is that a slice only needs to *read*
program state to compute features; writes it performs are confined to
slice-local temporaries.  The runtime enforces this dynamically by
running slices under :meth:`Environment.fork_isolated`, but isolation is
a containment measure, not a proof — a slice that writes a task global
is still evidence that slicing kept a statement it should not have, and
on a real deployment (paper: compiler-extracted C slices) the same write
would corrupt application state.

This pass computes the syntactic may-write set of a statement tree and
partitions it against the program's declared globals.  A slice is
*side-effect-free* when its may-write set touches no task global.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs.analysis.diagnostics import Diagnostic
from repro.programs.analysis.reaching import read_variables
from repro.programs.ir import Assign, Loop, Program, Stmt, walk

__all__ = ["EffectReport", "effect_report", "effect_diagnostics"]


@dataclass(frozen=True)
class EffectReport:
    """May-read / may-write summary of a statement tree.

    Attributes:
        reads: Every variable any expression in the tree may read.
        may_write_locals: Assignment/loop-var targets that are not task
            globals (harmless: they die with the slice environment).
        may_write_globals: Targets that name a task global.  The
            interpreter's :meth:`Environment.write` updates the global
            in place for these, so they are observable side effects.
    """

    reads: frozenset[str]
    may_write_locals: frozenset[str]
    may_write_globals: frozenset[str]

    @property
    def side_effect_free(self) -> bool:
        return not self.may_write_globals


def effect_report(program: Program, root: Stmt | None = None) -> EffectReport:
    """Effect summary of ``root`` (default: the whole program body)."""
    tree = program.body if root is None else root
    globals_ = frozenset(program.globals_init)
    reads: set[str] = set()
    writes: set[str] = set()
    for node in walk(tree):
        reads |= read_variables(node)
        if isinstance(node, Assign):
            writes.add(node.target)
        elif isinstance(node, Loop) and node.loop_var is not None:
            # env.write semantics: a loop variable shadowing a global
            # name would update the global each iteration.
            if not node.elide_body:
                writes.add(node.loop_var)
    return EffectReport(
        reads=frozenset(reads),
        may_write_locals=frozenset(writes - globals_),
        may_write_globals=frozenset(writes & globals_),
    )


def effect_diagnostics(
    program: Program, root: Stmt | None = None, program_name: str = ""
) -> tuple[EffectReport, list[Diagnostic]]:
    """Run the effects pass and render findings as diagnostics.

    Global writes are warnings, not errors: ``execute_isolated``
    genuinely confines them in this simulation, so a reviewed waiver is
    a legitimate answer — but silence is not.
    """
    report = effect_report(program, root)
    diagnostics = [
        Diagnostic(
            pass_name="effects",
            severity="warning",
            site=name,
            message=(
                f"slice may write task global {name!r}; §3.2 requires "
                "slices to write only locals and feature counters "
                "(isolation confines the write here, but a compiled "
                "slice would corrupt application state)"
            ),
            program=program_name or program.name,
        )
        for name in sorted(report.may_write_globals)
    ]
    return report, diagnostics
