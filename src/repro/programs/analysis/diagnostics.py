"""Structured findings of the slice certifier.

Every analysis pass reports what it found as :class:`Diagnostic` records
rather than raising or printing: the offline pipeline, the ``repro
check`` CLI, and the tests all consume the same structured stream and
decide for themselves what is fatal (``certify`` mode, ``--strict``).

A finding that a human has reviewed and accepted — e.g. "this slice
assigns to a task global; isolation confines the write" — is *waived*
with a :class:`Suppression` rather than deleted: the record survives,
marked ``suppressed``, so the audit trail shows both the finding and
the decision to accept it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "Suppression",
    "apply_suppressions",
    "max_severity",
]

#: Recognised severities, mildest first.  ``error`` blocks certification;
#: ``warning`` asks for review (and can be waived); ``info`` is advisory.
SEVERITIES = ("info", "warning", "error")

_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        pass_name: The pass that produced the finding ("effects",
            "coverage", "intervals", "hazards", "liveness", "validate").
        severity: "info", "warning", or "error".
        site: The feature-site label or variable name the finding anchors
            to; empty when the finding is program-wide.
        message: Human-readable description.
        program: Name of the analyzed program.
        suppressed: True when a :class:`Suppression` waived the finding.
        suppressed_reason: The waiver's justification (empty otherwise).
    """

    pass_name: str
    severity: str
    site: str
    message: str
    program: str = ""
    suppressed: bool = False
    suppressed_reason: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )
        if not self.pass_name:
            raise ValueError("Diagnostic requires a pass name")

    @property
    def blocking(self) -> bool:
        """True for unsuppressed error-severity findings."""
        return self.severity == "error" and not self.suppressed

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dict (inverse of :meth:`from_dict`)."""
        return {
            "pass": self.pass_name,
            "severity": self.severity,
            "site": self.site,
            "message": self.message,
            "program": self.program,
            "suppressed": self.suppressed,
            "suppressed_reason": self.suppressed_reason,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Diagnostic":
        return cls(
            pass_name=data["pass"],
            severity=data["severity"],
            site=data["site"],
            message=data["message"],
            program=data.get("program", ""),
            suppressed=data.get("suppressed", False),
            suppressed_reason=data.get("suppressed_reason", ""),
        )

    def format(self) -> str:
        """One-line rendering for CLI output."""
        anchor = f" @{self.site}" if self.site else ""
        waived = " [waived]" if self.suppressed else ""
        return (
            f"{self.severity:7s} {self.pass_name}{anchor}: "
            f"{self.message}{waived}"
        )


@dataclass(frozen=True)
class Suppression:
    """An explicit waiver for an expected finding.

    Workloads attach these next to their program definitions
    (:attr:`~repro.workloads.base.InteractiveApp.certifier_waivers`), so
    the acceptance of a finding lives in the same file as the code that
    provokes it.

    Attributes:
        pass_name: Pass whose findings this waives.
        site: Site/variable anchor to match; empty matches any site.
        reason: Why the finding is acceptable (required — an unexplained
            waiver is worse than the finding).
    """

    pass_name: str
    site: str = ""
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.pass_name:
            raise ValueError("Suppression requires a pass name")
        if not self.reason:
            raise ValueError("Suppression requires a reason")

    def matches(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.pass_name != self.pass_name:
            return False
        return not self.site or self.site == diagnostic.site

    def as_dict(self) -> dict[str, Any]:
        return {
            "pass": self.pass_name,
            "site": self.site,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Suppression":
        return cls(
            pass_name=data["pass"],
            site=data.get("site", ""),
            reason=data.get("reason", ""),
        )


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], waivers: Sequence[Suppression]
) -> list[Diagnostic]:
    """Mark findings matched by a waiver as suppressed (never drops them)."""
    out = []
    for diagnostic in diagnostics:
        for waiver in waivers:
            if waiver.matches(diagnostic):
                diagnostic = replace(
                    diagnostic,
                    suppressed=True,
                    suppressed_reason=waiver.reason,
                )
                break
        out.append(diagnostic)
    return out


def max_severity(
    diagnostics: Iterable[Diagnostic], include_suppressed: bool = False
) -> str | None:
    """The worst severity present, or None for a clean (or all-waived) set."""
    worst: str | None = None
    for diagnostic in diagnostics:
        if diagnostic.suppressed and not include_suppressed:
            continue
        if worst is None or _RANK[diagnostic.severity] > _RANK[worst]:
            worst = diagnostic.severity
    return worst
