"""Reaching definitions and liveness on the dataflow engine.

Reaching definitions answer "which assignments can have produced the
value read here?" — the approximation-hazard linter uses an empty answer
as proof that slicing (or a typo) dropped a definition the kept code
still reads.  Liveness answers "is this value read later?" — a retained
assignment whose target is dead is wasted slice time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs.analysis.dataflow import DataflowEngine, DataflowPass
from repro.programs.ir import (
    Assign,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Stmt,
    While,
    walk,
)

__all__ = [
    "INPUT_DEF",
    "GLOBAL_DEF",
    "LOOP_VAR_DEF",
    "ReachingDefinitions",
    "ReachingState",
    "LiveVariables",
    "MustDefined",
    "reaching_definitions",
    "live_variables",
    "must_defined",
    "read_variables",
]

#: Pseudo-definition tokens for names bound outside the statement tree.
INPUT_DEF = "<input>"
GLOBAL_DEF = "<global>"
LOOP_VAR_DEF = "<loop-var>"

# The state is an immutable mapping var -> frozenset of definition
# tokens; a missing var has *no* reaching definition (reads of it would
# fault at run time).
ReachingState = tuple  # sorted tuple of (name, frozenset) pairs


def _freeze(mapping: dict[str, frozenset[str]]) -> ReachingState:
    return tuple(sorted(mapping.items()))


def _thaw(state: ReachingState) -> dict[str, frozenset[str]]:
    return dict(state)


def read_variables(stmt: Stmt) -> frozenset[str]:
    """Variables a single node reads directly (not its children)."""
    if isinstance(stmt, Assign):
        return stmt.expr.variables()
    if isinstance(stmt, (If, While)):
        return stmt.cond.variables()
    if isinstance(stmt, Loop):
        return stmt.count.variables()
    if isinstance(stmt, IndirectCall):
        return stmt.target.variables()
    if isinstance(stmt, Hint):
        return stmt.expr.variables()
    return frozenset()


class ReachingDefinitions(DataflowPass[ReachingState]):
    """Forward may-analysis: var -> set of definitions that may reach.

    Definition tokens are ``"<name>@<pre-order index>"`` for Assigns and
    the pseudo-tokens above for inputs, globals, and loop variables, so
    diagnostics can name the exact statement that defined a value.
    """

    name = "reaching"
    direction = "forward"

    def __init__(self, root: Stmt):
        # Stable statement labels: pre-order position in the tree.
        self._labels = {id(node): i for i, node in enumerate(walk(root))}

    def label(self, stmt: Stmt) -> int:
        return self._labels[id(stmt)]

    def boundary(
        self, program: Program, input_names: frozenset[str] | None = None
    ) -> ReachingState:
        """Entry state: globals and declared inputs are defined."""
        entry: dict[str, frozenset[str]] = {
            name: frozenset({GLOBAL_DEF}) for name in program.globals_init
        }
        for name in input_names or ():
            entry[name] = entry.get(name, frozenset()) | {INPUT_DEF}
        return _freeze(entry)

    def join(self, a: ReachingState, b: ReachingState) -> ReachingState:
        if a == b:
            return a
        merged = _thaw(a)
        for name, defs in b:
            merged[name] = merged.get(name, frozenset()) | defs
        return _freeze(merged)

    def transfer_assign(self, stmt: Assign, state: ReachingState):
        updated = _thaw(state)
        updated[stmt.target] = frozenset(
            {f"{stmt.target}@{self._labels[id(stmt)]}"}
        )
        return _freeze(updated)

    def bind_loop_var(self, stmt: Loop, state: ReachingState):
        if stmt.loop_var is None:
            return state
        updated = _thaw(state)
        updated[stmt.loop_var] = frozenset({LOOP_VAR_DEF})
        return _freeze(updated)


def reaching_definitions(
    program: Program, input_names: frozenset[str] | None = None
) -> DataflowEngine[ReachingState]:
    """Run reaching definitions; returns the engine for per-node queries."""
    pass_ = ReachingDefinitions(program.body)
    engine = DataflowEngine(pass_)
    engine.run(program.body, pass_.boundary(program, input_names))
    return engine


class MustDefined(DataflowPass[frozenset]):
    """Forward must-analysis: names bound on *every* path to a node.

    Reaching definitions is a may-analysis — presence means "defined on
    some path" — which cannot license removing an expression evaluation:
    if a read *may* fault with ``KeyError``, an optimizer that deletes
    the read changes observable behaviour.  This pass's verdict is the
    safe one: a name in the state is bound however control arrived, so
    evaluating (or not evaluating) an expression over such names is
    side-effect-free either way.
    """

    name = "must-defined"
    direction = "forward"

    def boundary(
        self, program: Program, input_names: frozenset[str] | None = None
    ) -> frozenset[str]:
        """Entry state: globals and declared inputs are bound."""
        return frozenset(program.globals_init) | frozenset(input_names or ())

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer_assign(self, stmt: Assign, state: frozenset) -> frozenset:
        return state | {stmt.target}

    def bind_loop_var(self, stmt: Loop, state: frozenset) -> frozenset:
        if stmt.loop_var is None:
            return state
        return state | {stmt.loop_var}


def must_defined(
    program: Program, input_names: frozenset[str] | None = None
) -> DataflowEngine[frozenset]:
    """Run the must-defined analysis; returns the engine for queries."""
    pass_ = MustDefined()
    engine = DataflowEngine(pass_)
    engine.run(program.body, pass_.boundary(program, input_names))
    return engine


class LiveVariables(DataflowPass[frozenset]):
    """Backward may-analysis: the set of variables read later."""

    name = "liveness"
    direction = "backward"

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer_assign(self, stmt: Assign, live: frozenset) -> frozenset:
        # Whether or not the target is live, the RHS is evaluated (the
        # interpreter has no dead-store elimination), so its reads count.
        return (live - {stmt.target}) | stmt.expr.variables()

    def transfer_hint(self, stmt: Hint, live: frozenset) -> frozenset:
        return live | stmt.expr.variables()

    def transfer_branch(self, stmt: If | While, live: frozenset) -> frozenset:
        return live | stmt.cond.variables()

    def transfer_loop_header(self, stmt: Loop, live: frozenset) -> frozenset:
        return live | stmt.count.variables()

    def transfer_call_header(
        self, stmt: IndirectCall, live: frozenset
    ) -> frozenset:
        return live | stmt.target.variables()

    def bind_loop_var(self, stmt: Loop, live: frozenset) -> frozenset:
        if stmt.loop_var is None:
            return live
        return live - {stmt.loop_var}


@dataclass(frozen=True)
class LivenessResult:
    """Engine plus the computed entry set, for linter queries."""

    engine: DataflowEngine
    live_at_entry: frozenset[str]

    def live_after(self, stmt: Stmt) -> frozenset[str] | None:
        """Variables live *after* a node (the backward-recorded state)."""
        return self.engine.state_at(stmt)


def live_variables(
    program: Program, live_at_exit: frozenset[str] | None = None
) -> LivenessResult:
    """Run liveness backward from ``live_at_exit``.

    By default the task globals are live at exit: they persist across
    jobs, so a write to them is observable even at program end.
    """
    if live_at_exit is None:
        live_at_exit = frozenset(program.globals_init)
    engine = DataflowEngine(LiveVariables())
    entry = engine.run(program.body, frozenset(live_at_exit))
    return LivenessResult(engine=engine, live_at_entry=entry)
