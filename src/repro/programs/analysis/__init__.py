"""Static analysis over the task IR: the slice certifier.

A generic forward/backward dataflow engine over the structured statement
tree (:mod:`~repro.programs.analysis.dataflow`) with concrete passes on
top — reaching definitions, liveness, side effects, feature coverage,
interval abstract interpretation with static cost bounds, and the
approximation-hazard linter — orchestrated by
:func:`~repro.programs.analysis.certify.certify_slice` into a
:class:`~repro.programs.analysis.certify.SliceCertificate`.
"""

from repro.programs.analysis.certify import (
    ANALYSIS_PASSES,
    CertificationError,
    SliceCertificate,
    certify_slice,
)
from repro.programs.analysis.coverage import (
    counted_sites,
    coverage_diagnostics,
)
from repro.programs.analysis.dataflow import (
    DataflowEngine,
    DataflowPass,
    FixpointDiverged,
)
from repro.programs.analysis.diagnostics import (
    SEVERITIES,
    Diagnostic,
    Suppression,
    apply_suppressions,
    max_severity,
)
from repro.programs.analysis.effects import (
    EffectReport,
    effect_diagnostics,
    effect_report,
)
from repro.programs.analysis.hazards import (
    assigned_names,
    dead_store_diagnostics,
    hazard_diagnostics,
)
from repro.programs.analysis.intervals import (
    TOP,
    CostBound,
    CostBoundAnalyzer,
    Interval,
    IntervalAnalysis,
    analyze_intervals,
    cost_bound,
    eval_interval,
)
from repro.programs.analysis.reaching import (
    LiveVariables,
    ReachingDefinitions,
    live_variables,
    reaching_definitions,
)

__all__ = [
    "ANALYSIS_PASSES",
    "CertificationError",
    "SliceCertificate",
    "certify_slice",
    "counted_sites",
    "coverage_diagnostics",
    "DataflowEngine",
    "DataflowPass",
    "FixpointDiverged",
    "SEVERITIES",
    "Diagnostic",
    "Suppression",
    "apply_suppressions",
    "max_severity",
    "EffectReport",
    "effect_diagnostics",
    "effect_report",
    "assigned_names",
    "dead_store_diagnostics",
    "hazard_diagnostics",
    "TOP",
    "CostBound",
    "CostBoundAnalyzer",
    "Interval",
    "IntervalAnalysis",
    "analyze_intervals",
    "cost_bound",
    "eval_interval",
    "LiveVariables",
    "ReachingDefinitions",
    "live_variables",
    "reaching_definitions",
]
