"""Interval-domain abstract interpretation and static cost bounds.

Two layers:

1. :class:`IntervalAnalysis` — a forward dataflow pass (on the generic
   engine) mapping every variable to an interval enclosing all values it
   can take, given intervals for the program inputs.  Loop back edges
   widen unstable bounds to ±inf so fixpoints terminate.
2. :class:`CostBoundAnalyzer` — a structural walk that uses the recorded
   per-node interval invariants to bound each loop's trip count, and
   from that derives a worst-case (instructions, mem_refs) cost for the
   whole tree under the interpreter's exact cost model.

The cost bound is computed structurally rather than as dataflow state on
purpose: "cost so far" grows without bound around loop back edges, so
folding it into the fixpoint would widen it straight to +inf; trip-count
× body-cost over the *converged* invariant stays finite and sound.

Soundness notes baked into the transfer functions (each has a test):
- multiplication uses corner sampling with the convention 0·inf = 0;
- floor division corner-samples only when the divisor interval lies in
  [1, inf) or (-inf, -1] — across small magnitudes the extreme is at an
  interior point (b = ±1), and the language maps x//0 to 0, so anything
  else returns TOP;
- true division corner-samples only when the divisor excludes zero;
- modulo returns [-m, m] for m = max(|b.lo|, |b.hi|), a superset of both
  Python's sign-follows-divisor result and the language's x % 0 = 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.programs.analysis.dataflow import DataflowEngine, DataflowPass
from repro.programs.analysis.diagnostics import Diagnostic
from repro.programs.expr import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    IfExpr,
    UnaryOp,
    Var,
)
from repro.programs.ir import (
    BRANCH_COST,
    CALL_DISPATCH_COST,
    COUNTER_COST,
    LOOP_ITER_COST,
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)

__all__ = [
    "Interval",
    "TOP",
    "eval_interval",
    "IntervalAnalysis",
    "IntervalEnv",
    "analyze_intervals",
    "CostBound",
    "CostBoundAnalyzer",
    "cost_bound",
]

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @classmethod
    def const(cls, value: float) -> "Interval":
        v = float(value)
        return cls(v, v)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widened(self, newer: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to ±inf."""
        return Interval(
            self.lo if newer.lo >= self.lo else -_INF,
            self.hi if newer.hi <= self.hi else _INF,
        )

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    @property
    def definitely_true(self) -> bool:
        """Every value in the interval is truthy (zero excluded)."""
        return self.lo > 0 or self.hi < 0

    @property
    def definitely_false(self) -> bool:
        return self.lo == 0 and self.hi == 0

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


TOP = Interval(-_INF, _INF)
_BOOL = Interval(0.0, 1.0)
_TRUE = Interval(1.0, 1.0)
_FALSE = Interval(0.0, 0.0)


def _from_bool3(value: bool | None) -> Interval:
    """Three-valued truth to an interval (None = unknown)."""
    if value is None:
        return _BOOL
    return _TRUE if value else _FALSE


def _corners(fn, a: Interval, b: Interval, extra_a=()) -> Interval:
    """Hull of ``fn`` over the interval corners (requires monotonicity of
    ``fn`` in each argument over the sampled region — callers guarantee
    it, see the module docstring)."""
    values = []
    for x in (a.lo, a.hi, *extra_a):
        for y in (b.lo, b.hi):
            v = fn(x, y)
            if math.isnan(v):
                return TOP
            values.append(v)
    return Interval(min(values), max(values))


def _mul(x: float, y: float) -> float:
    if x == 0 or y == 0:
        return 0.0  # 0 * inf is 0 here: the inf is a bound, not a value
    return x * y


def _floordiv(x: float, y: float) -> float:
    if math.isinf(y):
        # x // ±inf is 0 or -1 depending on signs; -1 is the lower hull.
        return 0.0 if (x >= 0) == (y > 0) else -1.0
    if math.isinf(x):
        return x if y > 0 else -x
    return x // y


def _add_interval(a: Interval, b: Interval) -> Interval:
    return _corners(lambda x, y: x + y, a, b)


def _sub_interval(a: Interval, b: Interval) -> Interval:
    return _corners(lambda x, y: x - y, a, b)


def _mul_interval(a: Interval, b: Interval) -> Interval:
    return _corners(_mul, a, b)


def _floordiv_interval(a: Interval, b: Interval) -> Interval:
    if b.lo >= 1 or b.hi <= -1:
        extra = (0.0,) if a.lo <= 0 <= a.hi else ()
        return _corners(_floordiv, a, b, extra_a=extra)
    return TOP


def _truediv_interval(a: Interval, b: Interval) -> Interval:
    if b.lo > 0 or b.hi < 0:
        extra = (0.0,) if a.lo <= 0 <= a.hi else ()
        return _corners(
            lambda x, y: 0.0 if math.isinf(y) else x / y, a, b, extra_a=extra
        )
    return TOP


def _mod_interval(a: Interval, b: Interval) -> Interval:
    m = max(abs(b.lo), abs(b.hi))
    if math.isinf(m):
        return TOP
    return Interval(-m, m)


def _min_interval(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi))


def _max_interval(a: Interval, b: Interval) -> Interval:
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


_BIN_INTERVAL = {
    "+": _add_interval,
    "-": _sub_interval,
    "*": _mul_interval,
    "//": _floordiv_interval,
    "/": _truediv_interval,
    "%": _mod_interval,
    "min": _min_interval,
    "max": _max_interval,
}


def _compare_interval(op: str, a: Interval, b: Interval) -> Interval:
    if op == "<":
        return _from_bool3(
            True if a.hi < b.lo else (False if a.lo >= b.hi else None)
        )
    if op == "<=":
        return _from_bool3(
            True if a.hi <= b.lo else (False if a.lo > b.hi else None)
        )
    if op == ">":
        return _compare_interval("<", b, a)
    if op == ">=":
        return _compare_interval("<=", b, a)
    if op == "==":
        if a.lo == a.hi == b.lo == b.hi:
            return _TRUE
        if a.hi < b.lo or b.hi < a.lo:
            return _FALSE
        return _BOOL
    if op == "!=":
        eq = _compare_interval("==", a, b)
        if eq is _TRUE:
            return _FALSE
        if eq is _FALSE:
            return _TRUE
        return _BOOL
    raise ValueError(f"unknown comparison operator {op!r}")


def _trunc(x: float) -> float:
    return x if math.isinf(x) else float(math.trunc(x))


def _abs_interval(a: Interval) -> Interval:
    if a.lo >= 0:
        return a
    if a.hi <= 0:
        return Interval(-a.hi, -a.lo)
    return Interval(0.0, max(-a.lo, a.hi))


def eval_interval(expr: Expr, env) -> Interval:
    """Interval enclosing every value ``expr`` can take under ``env``.

    ``env`` maps variable names to :class:`Interval`; missing names are
    TOP (the variable is unconstrained, e.g. possibly unbound on some
    path — the hazard linter reports that separately).
    """
    if isinstance(expr, Const):
        return Interval.const(expr.value)
    if isinstance(expr, Var):
        return env.get(expr.name, TOP)
    if isinstance(expr, BinOp):
        return _BIN_INTERVAL[expr.op](
            eval_interval(expr.left, env), eval_interval(expr.right, env)
        )
    if isinstance(expr, UnaryOp):
        a = eval_interval(expr.operand, env)
        if expr.op == "-":
            return Interval(-a.hi, -a.lo)
        if expr.op == "abs":
            return _abs_interval(a)
        if expr.op == "int":
            return Interval(_trunc(a.lo), _trunc(a.hi))
        if expr.op == "not":
            if a.definitely_true:
                return _FALSE
            if a.definitely_false:
                return _TRUE
            return _BOOL
        raise ValueError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Compare):
        return _compare_interval(
            expr.op,
            eval_interval(expr.left, env),
            eval_interval(expr.right, env),
        )
    if isinstance(expr, BoolOp):
        operands = [eval_interval(o, env) for o in expr.operands]
        if expr.op == "and":
            if any(o.definitely_false for o in operands):
                return _FALSE
            if all(o.definitely_true for o in operands):
                return _TRUE
            return _BOOL
        if any(o.definitely_true for o in operands):
            return _TRUE
        if all(o.definitely_false for o in operands):
            return _FALSE
        return _BOOL
    if isinstance(expr, IfExpr):
        cond = eval_interval(expr.cond, env)
        if cond.definitely_true:
            return eval_interval(expr.then, env)
        if cond.definitely_false:
            return eval_interval(expr.orelse, env)
        return eval_interval(expr.then, env).hull(
            eval_interval(expr.orelse, env)
        )
    raise TypeError(f"unknown expression type {type(expr).__name__}")


# The abstract state: var -> Interval.  Unmapped names read as TOP, so
# join keeps only names bound on *both* paths and drops TOP entries to
# keep states canonical for the fixpoint equality test.
IntervalEnv = dict


def _canonical(env: IntervalEnv) -> IntervalEnv:
    return {k: v for k, v in env.items() if not v.is_top}


class IntervalAnalysis(DataflowPass[IntervalEnv]):
    """Forward interval propagation over the statement tree."""

    name = "intervals"
    direction = "forward"

    def join(self, a: IntervalEnv, b: IntervalEnv) -> IntervalEnv:
        if a == b:
            return a
        return _canonical(
            {k: a[k].hull(b[k]) for k in a.keys() & b.keys()}
        )

    def widen(self, older: IntervalEnv, newer: IntervalEnv) -> IntervalEnv:
        return _canonical(
            {
                k: older[k].widened(newer[k])
                for k in older.keys() & newer.keys()
            }
        )

    def transfer_assign(self, stmt: Assign, env: IntervalEnv) -> IntervalEnv:
        value = eval_interval(stmt.expr, env)
        out = {k: v for k, v in env.items() if k != stmt.target}
        if not value.is_top:
            out[stmt.target] = value
        return out

    def bind_loop_var(self, stmt: Loop, env: IntervalEnv) -> IntervalEnv:
        if stmt.loop_var is None:
            return env
        hi_trips = trip_bound(stmt, env)
        out = dict(env)
        out[stmt.loop_var] = Interval(0.0, max(0.0, hi_trips - 1))
        return out


def trip_bound(stmt: Loop, env: IntervalEnv) -> float:
    """Upper bound on a counted loop's trips under ``env``.

    Mirrors the interpreter: ``trips = int(count)`` clamped to
    ``[0, max_trips]``; an unbounded count interval clamps to
    ``max_trips`` (the interpreter's own safety net keeps this sound).
    """
    count = eval_interval(stmt.count, env)
    hi = count.hi if math.isinf(count.hi) else float(math.trunc(count.hi))
    return min(max(0.0, hi), float(stmt.max_trips))


def analyze_intervals(
    program: Program,
    input_ranges=None,
) -> DataflowEngine[IntervalEnv]:
    """Run interval analysis; returns the engine for per-node queries.

    Args:
        program: The program (its ``globals_init`` seed the entry state).
        input_ranges: Optional mapping of input name -> (lo, hi) pairs,
            e.g. derived from the profiling sample.  Unlisted inputs are
            unconstrained (TOP).
    """
    entry: IntervalEnv = {}
    for name, value in program.globals_init.items():
        if isinstance(value, (bool, int, float)):
            entry[name] = Interval.const(value)
    for name, (lo, hi) in (input_ranges or {}).items():
        entry[name] = Interval(float(lo), float(hi))
    engine = DataflowEngine(IntervalAnalysis())
    engine.run(program.body, _canonical(entry))
    return engine


@dataclass(frozen=True)
class CostBound:
    """Worst-case execution cost of a statement tree.

    Attributes:
        instructions: Upper bound on instructions executed.
        mem_refs: Upper bound on off-core memory references.
        tight: False when some loop bound came from the ``max_trips``
            safety clamp (or an unbounded While) rather than from the
            interval analysis — the bound is still sound but too loose
            to spend scheduling headroom on.
    """

    instructions: float
    mem_refs: float
    tight: bool


class CostBoundAnalyzer:
    """Bounds cost structurally using recorded interval invariants.

    Args:
        engine: An engine that already ran :class:`IntervalAnalysis`
            over the same tree (its per-node records supply the loop
            trip-count environments).
        program_name: Stamped on the emitted diagnostics.
    """

    def __init__(
        self, engine: DataflowEngine[IntervalEnv], program_name: str = ""
    ):
        self._engine = engine
        self._program_name = program_name
        self.diagnostics: list[Diagnostic] = []

    def bound(self, stmt: Stmt) -> CostBound:
        if isinstance(stmt, Block):
            return CostBound(stmt.instructions, stmt.mem_refs, True)
        if isinstance(stmt, Assign):
            return CostBound(stmt.cost, 0.0, True)
        if isinstance(stmt, Hint):
            extra = COUNTER_COST if stmt.counted else 0.0
            return CostBound(stmt.cost + extra, 0.0, True)
        if isinstance(stmt, Seq):
            parts = [self.bound(child) for child in stmt.stmts]
            return CostBound(
                sum(p.instructions for p in parts),
                sum(p.mem_refs for p in parts),
                all(p.tight for p in parts),
            )
        if isinstance(stmt, If):
            then = self.bound(stmt.then)
            orelse = (
                self.bound(stmt.orelse)
                if stmt.orelse is not None
                else CostBound(0.0, 0.0, True)
            )
            # The feature counter bumps only on the taken branch.
            taken_extra = COUNTER_COST if stmt.counted else 0.0
            return CostBound(
                BRANCH_COST
                + max(then.instructions + taken_extra, orelse.instructions),
                max(then.mem_refs, orelse.mem_refs),
                then.tight and orelse.tight,
            )
        if isinstance(stmt, Loop):
            counter = COUNTER_COST if stmt.counted else 0.0
            if stmt.elide_body:
                # Hoisted `feature += n` (Fig. 8): counter only.
                return CostBound(counter, 0.0, True)
            env = self._engine.state_at(stmt) or {}
            trips = trip_bound(stmt, env)
            clamped = trips >= stmt.max_trips
            if clamped:
                self._warn_clamp(stmt.site, stmt.max_trips)
            body = self.bound(stmt.body)
            return CostBound(
                counter + trips * (LOOP_ITER_COST + body.instructions),
                trips * body.mem_refs,
                body.tight and not clamped,
            )
        if isinstance(stmt, While):
            # Trip counts of condition-controlled loops are not derivable
            # from entry-state intervals; only max_trips bounds them.
            counter = COUNTER_COST if stmt.counted else 0.0
            self._warn_clamp(stmt.site, stmt.max_trips, while_loop=True)
            body = self.bound(stmt.body)
            trips = float(stmt.max_trips)
            return CostBound(
                counter
                + (trips + 1) * BRANCH_COST
                + trips * (LOOP_ITER_COST + body.instructions),
                trips * body.mem_refs,
                False,
            )
        if isinstance(stmt, IndirectCall):
            counter = COUNTER_COST if stmt.counted else 0.0
            callees = [self.bound(callee) for callee in stmt.table.values()]
            callees.append(
                self.bound(stmt.default)
                if stmt.default is not None
                else CostBound(0.0, 0.0, True)
            )
            return CostBound(
                CALL_DISPATCH_COST
                + counter
                + max(c.instructions for c in callees),
                max(c.mem_refs for c in callees),
                all(c.tight for c in callees),
            )
        raise TypeError(f"unknown statement type {type(stmt).__name__}")

    def _warn_clamp(
        self, site: str, max_trips: int, while_loop: bool = False
    ) -> None:
        kind = "while loop" if while_loop else "loop"
        self.diagnostics.append(
            Diagnostic(
                pass_name="intervals",
                severity="warning",
                site=site,
                message=(
                    f"trip count of {kind} {site!r} is only bounded by its "
                    f"max_trips clamp ({max_trips}); the static cost bound "
                    "is sound but too loose to schedule against"
                ),
                program=self._program_name,
            )
        )


def cost_bound(
    program: Program,
    input_ranges=None,
    program_name: str = "",
) -> tuple[CostBound, list[Diagnostic]]:
    """Worst-case cost of ``program`` given input ranges.

    Convenience wrapper: runs the interval analysis, then the structural
    cost walk.  Returns the bound and any looseness diagnostics.
    """
    engine = analyze_intervals(program, input_ranges)
    analyzer = CostBoundAnalyzer(
        engine, program_name or program.name
    )
    bound = analyzer.bound(program.body)
    if not math.isfinite(bound.instructions):
        bound = CostBound(bound.instructions, bound.mem_refs, False)
        analyzer.diagnostics.append(
            Diagnostic(
                pass_name="intervals",
                severity="warning",
                site="",
                message=(
                    "static instruction bound is unbounded (an input or "
                    "trip count has no finite range); the governor will "
                    "ignore it"
                ),
                program=program_name or program.name,
            )
        )
    return bound, analyzer.diagnostics
