"""Feature-coverage check: does the slice compute what the model reads?

The trained anchor models assign non-zero β weights to a subset of the
instrumented feature sites; the slicer is supposed to keep exactly the
code that produces those features.  A site the model needs but the slice
never counts silently predicts from a zero feature — the model's output
is garbage with no runtime error to betray it.  That makes a coverage
gap an error-severity finding, unlike the advisory "extra site" case
(harmless: an uncounted-on-purpose feature costs a little slice time).
"""

from __future__ import annotations

from repro.programs.analysis.diagnostics import Diagnostic
from repro.programs.ir import Hint, If, IndirectCall, Loop, Stmt, While, walk

__all__ = ["counted_sites", "coverage_diagnostics"]

_COUNTED_NODES = (If, Loop, While, IndirectCall, Hint)


def counted_sites(root: Stmt) -> frozenset[str]:
    """Feature-site labels the tree actually counts when executed."""
    return frozenset(
        node.site
        for node in walk(root)
        if isinstance(node, _COUNTED_NODES) and node.counted
    )


def coverage_diagnostics(
    root: Stmt,
    needed_sites: frozenset[str],
    program_name: str = "",
) -> tuple[frozenset[str], list[Diagnostic]]:
    """Cross-reference counted sites against the model's needed sites.

    Returns the covered set (counted ∩ needed) and the findings.
    """
    counted = counted_sites(root)
    diagnostics = [
        Diagnostic(
            pass_name="coverage",
            severity="error",
            site=site,
            message=(
                f"model has a non-zero coefficient on feature site "
                f"{site!r} but the slice never counts it; predictions "
                "would silently use a zero feature"
            ),
            program=program_name,
        )
        for site in sorted(needed_sites - counted)
    ]
    diagnostics += [
        Diagnostic(
            pass_name="coverage",
            severity="info",
            site=site,
            message=(
                f"slice counts feature site {site!r} the model does not "
                "read; the counter costs slice time for nothing"
            ),
            program=program_name,
        )
        for site in sorted(counted - needed_sites)
    ]
    return counted & needed_sites, diagnostics
