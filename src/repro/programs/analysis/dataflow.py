"""Generic forward/backward dataflow over the structured statement tree.

The task IR has no flat CFG — control flow is the tree itself — so the
engine is a *structural* worklist: straight-line code folds transfer
functions, branches fork and join the abstract state, and loops iterate
their body's transfer to a fixpoint (with widening after a configurable
number of rounds, so infinite-height domains like intervals terminate).

A concrete analysis subclasses :class:`DataflowPass` and provides the
lattice (``join``/``widen``/``equal``) plus leaf transfer functions; the
:class:`DataflowEngine` owns traversal order, loop fixpoints, and the
per-node state record that linters query afterwards
(:meth:`DataflowEngine.state_at`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generic, TypeVar

from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Seq,
    Stmt,
    While,
)

__all__ = ["DataflowPass", "DataflowEngine", "FixpointDiverged"]

S = TypeVar("S")


class FixpointDiverged(RuntimeError):
    """A loop fixpoint failed to stabilise even after widening.

    Raised only when a pass's ``widen`` does not actually enforce
    convergence — a bug in the pass, not in the analyzed program.
    """


class DataflowPass(ABC, Generic[S]):
    """Lattice + transfer functions of one analysis.

    Attributes:
        name: Pass identifier (used in diagnostics).
        direction: "forward" (states flow with execution) or "backward"
            (states flow against it, e.g. liveness).
        widen_after: Loop-fixpoint rounds before ``widen`` replaces
            ``join`` on the back edge.
        max_rounds: Hard cap on fixpoint rounds; exceeding it raises
            :class:`FixpointDiverged`.
    """

    name: str = "dataflow"
    direction: str = "forward"
    widen_after: int = 8
    max_rounds: int = 128

    # -- lattice -----------------------------------------------------------
    @abstractmethod
    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states."""

    def widen(self, older: S, newer: S) -> S:
        """Accelerated join for loop back edges (defaults to ``join``).

        Passes over infinite-height domains (intervals) must override
        this so unstable components jump to top and fixpoints terminate.
        """
        return self.join(older, newer)

    def equal(self, a: S, b: S) -> bool:
        return a == b

    # -- leaf transfers (identity by default) ------------------------------
    def transfer_block(self, stmt: Block, state: S) -> S:
        return state

    def transfer_assign(self, stmt: Assign, state: S) -> S:
        return state

    def transfer_hint(self, stmt: Hint, state: S) -> S:
        return state

    # -- control-node hooks ------------------------------------------------
    def transfer_branch(self, stmt: If | While, state: S) -> S:
        """Effect of evaluating a branch/while condition (reads only)."""
        return state

    def transfer_loop_header(self, stmt: Loop, state: S) -> S:
        """Effect of evaluating a counted loop's trip-count expression."""
        return state

    def transfer_call_header(self, stmt: IndirectCall, state: S) -> S:
        """Effect of evaluating an indirect call's target address."""
        return state

    def bind_loop_var(self, stmt: Loop, state: S) -> S:
        """State at the top of each iteration (loop variable bound)."""
        return state


class DataflowEngine(Generic[S]):
    """Runs one :class:`DataflowPass` over a statement tree.

    The engine records, for every node, the join of all abstract states
    that reached it (entry states for forward passes, exit states for
    backward ones).  Loop bodies are visited repeatedly during fixpoint
    iteration; because recorded states only ever grow toward the
    invariant, the final record *is* the loop invariant at that node.
    """

    def __init__(self, pass_: DataflowPass[S]):
        self.pass_ = pass_
        self._states: dict[int, S] = {}

    # -- public API --------------------------------------------------------
    def run(self, root: Stmt, boundary: S) -> S:
        """Propagate ``boundary`` through ``root``; returns the exit state
        (forward) or entry state (backward)."""
        self._states.clear()
        if self.pass_.direction == "backward":
            return self._bwd(root, boundary)
        return self._fwd(root, boundary)

    def state_at(self, stmt: Stmt) -> S | None:
        """The recorded state at a node (None if the node is unreachable,
        e.g. inside a call-table entry the analysis proved dead)."""
        return self._states.get(id(stmt))

    # -- recording ---------------------------------------------------------
    def _record(self, stmt: Stmt, state: S) -> None:
        seen = self._states.get(id(stmt))
        self._states[id(stmt)] = (
            state if seen is None else self.pass_.join(seen, state)
        )

    # -- forward traversal -------------------------------------------------
    def _fwd(self, stmt: Stmt, state: S) -> S:
        p = self.pass_
        self._record(stmt, state)
        if isinstance(stmt, Block):
            return p.transfer_block(stmt, state)
        if isinstance(stmt, Assign):
            return p.transfer_assign(stmt, state)
        if isinstance(stmt, Hint):
            return p.transfer_hint(stmt, state)
        if isinstance(stmt, Seq):
            for child in stmt.stmts:
                state = self._fwd(child, state)
            return state
        if isinstance(stmt, If):
            entry = p.transfer_branch(stmt, state)
            taken = self._fwd(stmt.then, entry)
            fallthrough = (
                self._fwd(stmt.orelse, entry)
                if stmt.orelse is not None
                else entry
            )
            return p.join(taken, fallthrough)
        if isinstance(stmt, Loop):
            entry = p.transfer_loop_header(stmt, state)
            if stmt.elide_body:
                # Hoisted counter (Fig. 8): the trip count is recorded but
                # no iteration executes.
                return entry
            return self._loop_fixpoint(
                entry,
                lambda s: self._fwd(stmt.body, p.bind_loop_var(stmt, s)),
            )
        if isinstance(stmt, While):
            entry = p.transfer_branch(stmt, state)
            return self._loop_fixpoint(
                entry,
                lambda s: p.transfer_branch(stmt, self._fwd(stmt.body, s)),
            )
        if isinstance(stmt, IndirectCall):
            entry = p.transfer_call_header(stmt, state)
            outs = [self._fwd(callee, entry) for callee in stmt.table.values()]
            # An address outside the table runs `default`; with no default
            # it is a no-op, so the entry state itself is a possible exit.
            outs.append(
                self._fwd(stmt.default, entry)
                if stmt.default is not None
                else entry
            )
            merged = outs[0]
            for out in outs[1:]:
                merged = p.join(merged, out)
            return merged
        raise TypeError(f"unknown statement type {type(stmt).__name__}")

    def _loop_fixpoint(self, entry: S, body_transfer) -> S:
        """Iterate ``invariant = entry ⊔ body(invariant)`` to a fixpoint.

        ``entry`` stays in the invariant (the zero-iteration path), and
        after :attr:`DataflowPass.widen_after` rounds the back edge uses
        ``widen`` so infinite-ascent domains terminate.
        """
        p = self.pass_
        invariant = entry
        for round_ in range(p.max_rounds):
            nxt = p.join(entry, body_transfer(invariant))
            if p.equal(nxt, invariant):
                return invariant
            invariant = (
                p.widen(invariant, nxt) if round_ >= p.widen_after else nxt
            )
        raise FixpointDiverged(
            f"{p.name}: loop fixpoint did not stabilise within "
            f"{p.max_rounds} rounds (widening is not convergent)"
        )

    # -- backward traversal ------------------------------------------------
    def _bwd(self, stmt: Stmt, state: S) -> S:
        p = self.pass_
        self._record(stmt, state)
        if isinstance(stmt, Block):
            return p.transfer_block(stmt, state)
        if isinstance(stmt, Assign):
            return p.transfer_assign(stmt, state)
        if isinstance(stmt, Hint):
            return p.transfer_hint(stmt, state)
        if isinstance(stmt, Seq):
            for child in reversed(stmt.stmts):
                state = self._bwd(child, state)
            return state
        if isinstance(stmt, If):
            taken = self._bwd(stmt.then, state)
            fallthrough = (
                self._bwd(stmt.orelse, state)
                if stmt.orelse is not None
                else state
            )
            return p.transfer_branch(stmt, p.join(taken, fallthrough))
        if isinstance(stmt, Loop):
            if stmt.elide_body:
                return p.transfer_loop_header(stmt, state)
            exit_ = self._loop_fixpoint(
                state,
                lambda s: p.bind_loop_var(stmt, self._bwd(stmt.body, s)),
            )
            return p.transfer_loop_header(stmt, exit_)
        if isinstance(stmt, While):
            exit_ = self._loop_fixpoint(
                state,
                lambda s: self._bwd(stmt.body, p.transfer_branch(stmt, s)),
            )
            return p.transfer_branch(stmt, exit_)
        if isinstance(stmt, IndirectCall):
            outs = [self._bwd(callee, state) for callee in stmt.table.values()]
            outs.append(
                self._bwd(stmt.default, state)
                if stmt.default is not None
                else state
            )
            merged = outs[0]
            for out in outs[1:]:
                merged = p.join(merged, out)
            return p.transfer_call_header(stmt, merged)
        raise TypeError(f"unknown statement type {type(stmt).__name__}")
