"""Execution environments for the mini task language.

An :class:`Environment` layers three namespaces, mirroring the memory a C
task sees:

- **inputs** — the per-job input values (read-only; a fresh dict per job);
- **globals** — task state persisting across jobs (games mutate these);
- **locals** — scratch variables created during one execution.

Lookup order is locals, then globals, then inputs.  Writes update globals
when the name already exists there (a C global assignment), otherwise they
create/overwrite a local.

The prediction slice must not corrupt program state (paper §3.2), so
:meth:`Environment.fork_isolated` produces an environment whose globals are
*copies* — the slice reads current state but its writes evaporate.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.programs.expr import Value

__all__ = ["Environment"]


class Environment(Mapping[str, Value]):
    """Layered variable store: locals over globals over inputs."""

    def __init__(
        self,
        inputs: Mapping[str, Value] | None = None,
        globals_: dict[str, Value] | None = None,
    ):
        self._inputs = dict(inputs) if inputs else {}
        self._globals = globals_ if globals_ is not None else {}
        self._locals: dict[str, Value] = {}

    # -- Mapping interface (read side) ------------------------------------
    def __getitem__(self, name: str) -> Value:
        for layer in (self._locals, self._globals, self._inputs):
            if name in layer:
                return layer[name]
        raise KeyError(name)

    def __contains__(self, name: object) -> bool:
        return (
            name in self._locals or name in self._globals or name in self._inputs
        )

    def __iter__(self) -> Iterator[str]:
        seen = set()
        for layer in (self._locals, self._globals, self._inputs):
            for name in layer:
                if name not in seen:
                    seen.add(name)
                    yield name

    def __len__(self) -> int:
        return len(set(self._locals) | set(self._globals) | set(self._inputs))

    # -- write side --------------------------------------------------------
    def write(self, name: str, value: Value) -> None:
        """Assign: updates an existing global, else writes a local.

        Inputs are immutable job data; shadow them with a local rather than
        mutating (matches pass-by-value C semantics for scalars).
        """
        if name in self._globals and name not in self._locals:
            self._globals[name] = value
        else:
            self._locals[name] = value

    # -- structure ----------------------------------------------------------
    @property
    def globals(self) -> dict[str, Value]:
        """The persistent global namespace (shared with the owning task)."""
        return self._globals

    @property
    def inputs(self) -> Mapping[str, Value]:
        return dict(self._inputs)

    def fresh_locals(self) -> "Environment":
        """Same inputs and globals, empty locals (a new job execution)."""
        return Environment(self._inputs, self._globals)

    def fork_isolated(self) -> "Environment":
        """Copy-globals fork for side-effect-free slice execution.

        The slice sees the *current* values of globals and inputs but its
        writes land in copies, exactly like the paper's local-copy scheme
        for globals and by-reference arguments.
        """
        return Environment(self._inputs, dict(self._globals))

    def snapshot(self) -> dict[str, Value]:
        """Flat dict of every visible binding (for assertions/debugging)."""
        return {name: self[name] for name in self}
