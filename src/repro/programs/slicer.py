"""Program slicing: extract the minimal code that computes the features.

Given an instrumented program and the set of feature sites the trained
model actually uses (non-zero coefficients), the slicer produces a
*prediction slice* — a program that:

- keeps the control skeleton needed to evaluate the selected features;
- keeps the scalar assignments those control expressions transitively
  depend on (name-based dependence analysis, per the paper's approximate
  slicer; this IR has no aliasing so name-based is also exact);
- drops every compute :class:`~repro.programs.ir.Block` — the source of
  nearly all execution time;
- hoists counted loops whose bodies sliced away entirely: the iteration
  count is recorded without running any iterations (the paper's
  ``feature[1] += n`` transformation, Fig. 8).

The slice is meant to be run with isolated globals
(:meth:`repro.programs.interpreter.Interpreter.execute_isolated`) so its
writes cannot corrupt task state (§3.2 side-effect rule).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.programs.instrument import InstrumentedProgram
from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
    walk,
)

__all__ = ["PredictionSlice", "Slicer"]

_EMPTY = Seq(())


def _is_empty(stmt: Stmt) -> bool:
    return isinstance(stmt, Seq) and not stmt.stmts


@dataclass(frozen=True)
class PredictionSlice:
    """The output of slicing.

    Attributes:
        program: The runnable slice (counts only the needed sites).
        needed_sites: Site labels the slice computes.
        relevant_vars: Variables the dependence analysis retained.
    """

    program: Program
    needed_sites: frozenset[str]
    relevant_vars: frozenset[str]


class Slicer:
    """Backward slicer over the structured IR.

    Attributes:
        marshal_base_instr: Fixed instruction cost prepended to non-trivial
            slices, modelling the slice's side-effect protection: taking
            local copies of the globals and by-reference arguments it
            reads (paper §3.2).  Zero by default — the pipeline sets it.
        marshal_per_var_instr: Additional copy cost per retained variable.
    """

    def __init__(
        self,
        marshal_base_instr: float = 0.0,
        marshal_per_var_instr: float = 0.0,
    ):
        if marshal_base_instr < 0 or marshal_per_var_instr < 0:
            raise ValueError("marshal costs must be non-negative")
        self.marshal_base_instr = marshal_base_instr
        self.marshal_per_var_instr = marshal_per_var_instr

    def slice(
        self,
        instrumented: InstrumentedProgram,
        needed_sites: set[str] | frozenset[str] | None = None,
        prune: bool = True,
    ) -> PredictionSlice:
        """Produce the prediction slice for ``needed_sites``.

        Args:
            instrumented: The instrumented program (from
                :class:`~repro.programs.instrument.Instrumenter`).
            needed_sites: Feature sites the execution-time model uses.
                ``None`` keeps every instrumented site.
            prune: Apply the dependence analysis and drop statements the
                needed sites do not depend on.  ``False`` keeps the whole
                instrumented body — the "no slicing" ablation, where the
                predictor measures features by re-running the entire
                program (marshalling cost included) — which is only
                meaningful with every site kept.

        Raises:
            KeyError: If a requested site does not exist in the program.
        """
        all_sites = set(instrumented.site_labels)
        if needed_sites is None:
            needed = set(all_sites)
        else:
            unknown = set(needed_sites) - all_sites
            if unknown:
                raise KeyError(f"unknown feature sites: {sorted(unknown)}")
            needed = set(needed_sites)

        body = instrumented.program.body
        relevant = self._relevant_variables(body, needed)
        sliced = self._slice_stmt(body, needed, relevant) if prune else body
        marshal = self.marshal_base_instr + self.marshal_per_var_instr * len(
            relevant
        )
        if marshal > 0 and needed:
            sliced = Seq(
                [Block(marshal, mem_refs=marshal / 400.0, name="slice_marshal"),
                 sliced]
            )
        program = Program(
            name=f"{instrumented.program.name}_slice",
            body=sliced,
            globals_init=dict(instrumented.program.globals_init),
        )
        return PredictionSlice(
            program=program,
            needed_sites=frozenset(needed),
            relevant_vars=frozenset(relevant),
        )

    # -- dependence analysis ------------------------------------------------
    def _relevant_variables(self, body: Stmt, needed: set[str]) -> set[str]:
        """Fixpoint of name-based data + control dependence.

        Starts from the variables read by the needed sites' control
        expressions; repeatedly adds (a) the right-hand-side variables of
        any assignment to a relevant variable, and (b) the control
        expressions of any node that must be kept to reach a kept node
        (control dependence).
        """
        relevant: set[str] = set()
        for node in walk(body):
            if getattr(node, "site", None) in needed:
                relevant |= self._control_vars(node)
        while True:
            kept = self._keep_set(body, needed, relevant)
            grown = set(relevant)
            for node in walk(body):
                if id(node) not in kept:
                    continue
                if isinstance(node, Assign) and node.target in relevant:
                    grown |= node.expr.variables()
                if isinstance(node, (If, Loop, While, IndirectCall, Hint)):
                    grown |= self._control_vars(node)
            if grown == relevant:
                return relevant
            relevant = grown

    @staticmethod
    def _control_vars(node: Stmt) -> set[str]:
        if isinstance(node, If):
            return set(node.cond.variables())
        if isinstance(node, Loop):
            return set(node.count.variables())
        if isinstance(node, While):
            return set(node.cond.variables())
        if isinstance(node, IndirectCall):
            return set(node.target.variables())
        if isinstance(node, Hint):
            return set(node.expr.variables())
        return set()

    def _keep_set(
        self, body: Stmt, needed: set[str], relevant: set[str]
    ) -> set[int]:
        """ids of nodes that survive slicing under the current relevant set."""
        kept: set[int] = set()

        def visit(stmt: Stmt) -> bool:
            keep = False
            for child in stmt.children():
                if visit(child):
                    keep = True
            if isinstance(stmt, Assign) and stmt.target in relevant:
                keep = True
            if getattr(stmt, "site", None) in needed:
                keep = True
            if keep:
                kept.add(id(stmt))
            return keep

        visit(body)
        return kept

    # -- tree reconstruction --------------------------------------------------
    def _slice_stmt(
        self, stmt: Stmt, needed: set[str], relevant: set[str]
    ) -> Stmt:
        if isinstance(stmt, Block):
            return _EMPTY
        if isinstance(stmt, Assign):
            return stmt if stmt.target in relevant else _EMPTY
        if isinstance(stmt, Hint):
            if stmt.site in needed:
                return replace(stmt, counted=True)
            return _EMPTY
        if isinstance(stmt, Seq):
            parts = [
                sliced
                for child in stmt.stmts
                if not _is_empty(sliced := self._slice_stmt(child, needed, relevant))
            ]
            if not parts:
                return _EMPTY
            if len(parts) == 1:
                return parts[0]
            return Seq(parts)
        if isinstance(stmt, If):
            then = self._slice_stmt(stmt.then, needed, relevant)
            orelse = (
                None
                if stmt.orelse is None
                else self._slice_stmt(stmt.orelse, needed, relevant)
            )
            if orelse is not None and _is_empty(orelse):
                orelse = None
            is_needed = stmt.site in needed
            if not is_needed and _is_empty(then) and orelse is None:
                return _EMPTY
            return replace(stmt, counted=is_needed, then=then, orelse=orelse)
        if isinstance(stmt, Loop):
            body = self._slice_stmt(stmt.body, needed, relevant)
            is_needed = stmt.site in needed
            loop_var = stmt.loop_var if stmt.loop_var in relevant else None
            if _is_empty(body) and loop_var is None:
                if not is_needed:
                    return _EMPTY
                # Hoist: record the trip count without iterating (Fig. 8).
                return replace(
                    stmt,
                    counted=True,
                    body=_EMPTY,
                    loop_var=None,
                    elide_body=True,
                )
            return replace(
                stmt,
                counted=is_needed,
                body=body,
                loop_var=loop_var,
                elide_body=False,
            )
        if isinstance(stmt, While):
            # A While can never be elided: the trip count is only
            # discoverable by running the loop, and its body's Assigns
            # (which drive the condition) are relevant by construction.
            body = self._slice_stmt(stmt.body, needed, relevant)
            is_needed = stmt.site in needed
            if not is_needed and _is_empty(body):
                return _EMPTY
            return replace(stmt, counted=is_needed, body=body)
        if isinstance(stmt, IndirectCall):
            is_needed = stmt.site in needed
            table = {}
            for addr, callee in stmt.table.items():
                sliced = self._slice_stmt(callee, needed, relevant)
                if not _is_empty(sliced):
                    table[addr] = sliced
            default = (
                None
                if stmt.default is None
                else self._slice_stmt(stmt.default, needed, relevant)
            )
            if default is not None and _is_empty(default):
                default = None
            if not is_needed and not table and default is None:
                return _EMPTY
            return replace(
                stmt, counted=is_needed, table=table, default=default
            )
        raise TypeError(f"unknown statement type {type(stmt).__name__}")
