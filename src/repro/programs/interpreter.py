"""Interpreter: executes a task program, producing Work and features.

Execution has two observable outputs:

- :class:`repro.platform.cpu.Work` — how much frequency-dependent and
  memory-bound work the job performed (this is what the simulated CPU
  turns into time and energy);
- :class:`RawFeatures` — the control-flow feature counters, populated only
  for nodes marked ``counted`` by the instrumenter (counting costs extra
  instructions, exactly like real counter increments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.platform.cpu import Work
from repro.programs.env import Environment
from repro.programs.expr import Value
from repro.programs.ir import (
    ASSIGN_COST,
    BRANCH_COST,
    CALL_DISPATCH_COST,
    COUNTER_COST,
    LOOP_ITER_COST,
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
)

__all__ = ["RawFeatures", "ExecutionResult", "Interpreter"]


@dataclass
class RawFeatures:
    """Per-execution control-flow feature record.

    Attributes:
        counters: site label -> count (branch-taken and loop-iteration
            features).
        call_addresses: site label -> addresses observed at that indirect
            call site, in call order (one-hot encoded downstream).
    """

    counters: dict[str, float] = field(default_factory=dict)
    call_addresses: dict[str, list[int]] = field(default_factory=dict)

    def bump(self, site: str, amount: float = 1.0) -> None:
        """Increment a counter feature (branch taken / loop trips)."""
        self.counters[site] = self.counters.get(site, 0.0) + amount

    def set_value(self, site: str, value: float) -> None:
        """Record a gauge feature (absolute reading; hints use this)."""
        self.counters[site] = value

    def record_call(self, site: str, address: int) -> None:
        """Record an observed call-target address at a call site."""
        self.call_addresses.setdefault(site, []).append(address)

    def counter(self, site: str) -> float:
        """Counter value for a site (0.0 when the site never fired)."""
        return self.counters.get(site, 0.0)


@dataclass(frozen=True)
class ExecutionResult:
    """Everything one execution of a program produced."""

    work: Work
    features: RawFeatures
    env: Environment


class Interpreter:
    """Executes statement trees.

    Attributes:
        cycles_per_instruction: CPI of the modelled core (A7 in-order: ~1).
        mem_seconds_per_ref: Seconds of non-overlapped memory time per
            memory reference (builds the ``T_mem`` term of the DVFS model).
    """

    def __init__(
        self,
        cycles_per_instruction: float = 1.0,
        mem_seconds_per_ref: float = 80e-9,
    ):
        if cycles_per_instruction <= 0:
            raise ValueError("cycles_per_instruction must be positive")
        if mem_seconds_per_ref < 0:
            raise ValueError("mem_seconds_per_ref must be non-negative")
        self.cycles_per_instruction = cycles_per_instruction
        self.mem_seconds_per_ref = mem_seconds_per_ref
        # Node dispatch by exact class.  An isinstance chain pays an
        # ABCMeta.__instancecheck__ per candidate type per node executed
        # (the top hotspot in host profiles); one dict lookup replaces
        # the whole chain.  Subclasses of IR nodes resolve through
        # ``_resolve`` (MRO walk) once and are memoized here.
        self._dispatch = {
            Block: self._run_block,
            Assign: self._run_assign,
            Seq: self._run_seq,
            If: self._run_if,
            Loop: self._run_loop,
            While: self._run_while,
            Hint: self._run_hint,
            IndirectCall: self._run_call,
        }

    def execute(
        self,
        program: Program,
        inputs: Mapping[str, Value],
        globals_: dict[str, Value] | None = None,
    ) -> ExecutionResult:
        """Run one job of ``program`` with the given inputs.

        Args:
            program: The task to execute.
            inputs: Per-job input values.
            globals_: Persistent global state, mutated in place.  Pass the
                same dict across jobs to model evolving program state; by
                default each call gets fresh globals.

        Returns:
            The work performed, features counted, and the final environment.
        """
        if globals_ is None:
            globals_ = program.fresh_globals()
        env = Environment(inputs, globals_)
        features = RawFeatures()
        state = _Accumulator()
        self._run(program.body, env, features, state)
        work = Work(
            cycles=state.instructions * self.cycles_per_instruction,
            mem_time_s=state.mem_refs * self.mem_seconds_per_ref,
        )
        return ExecutionResult(work=work, features=features, env=env)

    def execute_isolated(
        self,
        program: Program,
        inputs: Mapping[str, Value],
        globals_: dict[str, Value],
    ) -> ExecutionResult:
        """Run with copy-on-fork globals: writes do not escape.

        This is how prediction slices execute (paper §3.2): the slice reads
        live program state but cannot corrupt it.
        """
        env = Environment(inputs, globals_).fork_isolated()
        features = RawFeatures()
        state = _Accumulator()
        self._run(program.body, env, features, state)
        work = Work(
            cycles=state.instructions * self.cycles_per_instruction,
            mem_time_s=state.mem_refs * self.mem_seconds_per_ref,
        )
        return ExecutionResult(work=work, features=features, env=env)

    # -- dispatch -----------------------------------------------------------
    def _resolve(self, cls: type):
        """Handler for a statement subclass, memoized into the table."""
        for base in cls.__mro__[1:]:
            handler = self._dispatch.get(base)
            if handler is not None:
                self._dispatch[cls] = handler
                return handler
        raise TypeError(f"unknown statement type {cls.__name__}")

    def _run(
        self,
        stmt: Stmt,
        env: Environment,
        features: RawFeatures,
        state: "_Accumulator",
    ) -> None:
        handler = self._dispatch.get(stmt.__class__) or self._resolve(
            stmt.__class__
        )
        handler(stmt, env, features, state)

    def _run_block(self, stmt, env, features, state) -> None:
        state.instructions += stmt.instructions
        state.mem_refs += stmt.mem_refs

    def _run_assign(self, stmt, env, features, state) -> None:
        state.instructions += stmt.cost
        env.write(stmt.target, stmt.expr.evaluate(env))

    def _run_seq(self, stmt, env, features, state) -> None:
        dispatch = self._dispatch
        for child in stmt.stmts:
            handler = dispatch.get(child.__class__) or self._resolve(
                child.__class__
            )
            handler(child, env, features, state)

    def _run_if(self, stmt, env, features, state) -> None:
        state.instructions += BRANCH_COST
        taken = bool(stmt.cond.evaluate(env))
        if taken:
            if stmt.counted:
                state.instructions += COUNTER_COST
                features.bump(stmt.site)
            self._run(stmt.then, env, features, state)
        elif stmt.orelse is not None:
            self._run(stmt.orelse, env, features, state)

    def _run_loop(self, stmt, env, features, state) -> None:
        trips = int(stmt.count.evaluate(env))
        trips = max(0, min(trips, stmt.max_trips))
        if stmt.counted:
            state.instructions += COUNTER_COST
            features.bump(stmt.site, trips)
        if stmt.elide_body:
            return
        body = stmt.body
        handler = self._dispatch.get(body.__class__) or self._resolve(
            body.__class__
        )
        loop_var = stmt.loop_var
        if loop_var is None:
            for _ in range(trips):
                state.instructions += LOOP_ITER_COST
                handler(body, env, features, state)
        else:
            for i in range(trips):
                state.instructions += LOOP_ITER_COST
                env.write(loop_var, i)
                handler(body, env, features, state)

    def _run_while(self, stmt, env, features, state) -> None:
        body = stmt.body
        handler = self._dispatch.get(body.__class__) or self._resolve(
            body.__class__
        )
        cond = stmt.cond
        trips = 0
        while trips < stmt.max_trips:
            state.instructions += BRANCH_COST  # the condition check
            if not cond.evaluate(env):
                break
            state.instructions += LOOP_ITER_COST
            handler(body, env, features, state)
            trips += 1
        if stmt.counted:
            state.instructions += COUNTER_COST
            features.bump(stmt.site, trips)

    def _run_hint(self, stmt, env, features, state) -> None:
        state.instructions += stmt.cost
        if stmt.counted:
            state.instructions += COUNTER_COST
            features.set_value(stmt.site, float(stmt.expr.evaluate(env)))

    def _run_call(self, stmt, env, features, state) -> None:
        state.instructions += CALL_DISPATCH_COST
        address = int(stmt.target.evaluate(env))
        if stmt.counted:
            state.instructions += COUNTER_COST
            features.record_call(stmt.site, address)
        callee = stmt.table.get(address, stmt.default)
        if callee is not None:
            self._run(callee, env, features, state)


class _Accumulator:
    """Mutable instruction/memory tally for one execution."""

    __slots__ = ("instructions", "mem_refs")

    def __init__(self):
        self.instructions = 0.0
        self.mem_refs = 0.0
