"""Source instrumentation: turn control-flow sites into counted features.

Mirrors the paper's §3.2 source instrumentation (Fig. 7): every
conditional, loop, and function-pointer call gets a feature counter.
Instrumentation is a pure tree transformation — the original program is
untouched — and counting costs instructions at run time, exactly like the
real counter increments would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
    walk,
)

__all__ = ["FeatureSite", "InstrumentedProgram", "Instrumenter"]

_KIND_BY_TYPE = {
    If: "branch",
    Loop: "loop",
    While: "loop",
    IndirectCall: "call",
    Hint: "hint",
}


@dataclass(frozen=True)
class FeatureSite:
    """One instrumented location.

    Attributes:
        site: The unique site label from the IR node.
        kind: "branch", "loop", "call", or "hint".
    """

    site: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("branch", "loop", "call", "hint"):
            raise ValueError(f"unknown feature-site kind {self.kind!r}")


@dataclass(frozen=True)
class InstrumentedProgram:
    """An instrumented task plus the schema of sites it counts."""

    program: Program
    sites: tuple[FeatureSite, ...]

    @property
    def site_labels(self) -> tuple[str, ...]:
        return tuple(s.site for s in self.sites)

    def site_kind(self, site: str) -> str:
        """The kind ("branch"/"loop"/"call"/"hint") of a site label."""
        for s in self.sites:
            if s.site == site:
                return s.kind
        raise KeyError(f"unknown site {site!r}")


class Instrumenter:
    """Inserts feature counters at every control-flow site."""

    def instrument(self, program: Program) -> InstrumentedProgram:
        """Return an instrumented copy of ``program`` and its site schema.

        Raises:
            ValueError: If two control nodes share a site label — features
                would alias and the model could not tell them apart.
        """
        self._check_unique_sites(program)
        sites: list[FeatureSite] = []
        body = self._rewrite(program.body, sites)
        instrumented = Program(
            name=program.name,
            body=body,
            globals_init=dict(program.globals_init),
        )
        return InstrumentedProgram(program=instrumented, sites=tuple(sites))

    @staticmethod
    def _check_unique_sites(program: Program) -> None:
        seen: set[str] = set()
        for node in walk(program.body):
            site = getattr(node, "site", None)
            if site is None:
                continue
            if site in seen:
                raise ValueError(f"duplicate control site label {site!r}")
            seen.add(site)

    def _rewrite(self, stmt: Stmt, sites: list[FeatureSite]) -> Stmt:
        if isinstance(stmt, (Block, Assign)):
            return stmt
        if isinstance(stmt, Seq):
            return Seq([self._rewrite(s, sites) for s in stmt.stmts])
        if isinstance(stmt, Hint):
            sites.append(FeatureSite(stmt.site, "hint"))
            return replace(stmt, counted=True)
        if isinstance(stmt, If):
            sites.append(FeatureSite(stmt.site, "branch"))
            return replace(
                stmt,
                counted=True,
                then=self._rewrite(stmt.then, sites),
                orelse=(
                    None
                    if stmt.orelse is None
                    else self._rewrite(stmt.orelse, sites)
                ),
            )
        if isinstance(stmt, (Loop, While)):
            sites.append(FeatureSite(stmt.site, "loop"))
            return replace(
                stmt, counted=True, body=self._rewrite(stmt.body, sites)
            )
        if isinstance(stmt, IndirectCall):
            sites.append(FeatureSite(stmt.site, "call"))
            table = {
                addr: self._rewrite(callee, sites)
                for addr, callee in stmt.table.items()
            }
            default = (
                None
                if stmt.default is None
                else self._rewrite(stmt.default, sites)
            )
            return replace(stmt, counted=True, table=table, default=default)
        raise TypeError(f"unknown statement type {type(stmt).__name__}")
