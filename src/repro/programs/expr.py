"""Expression AST for the mini task language.

Expressions are pure: evaluating one never mutates the environment.  Each
expression knows the set of variable names it reads (:meth:`Expr.variables`),
which is exactly the information the approximate, name-based program slicer
uses for its dependence analysis (paper §3.2: "our tool tracks dependences
based only on variable names").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping

__all__ = [
    "Expr",
    "Const",
    "Var",
    "BinOp",
    "UnaryOp",
    "Compare",
    "BoolOp",
    "IfExpr",
    "as_expr",
]

Value = int | float | bool

_BIN_OPS: dict[str, Callable[[Value, Value], Value]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b != 0 else 0,
    "/": lambda a, b: a / b if b != 0 else 0.0,
    "%": lambda a, b: a % b if b != 0 else 0,
    "min": min,
    "max": max,
}

_CMP_OPS: dict[str, Callable[[Value, Value], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_UNARY_OPS: dict[str, Callable[[Value], Value]] = {
    "-": lambda a: -a,
    "not": lambda a: not a,
    "abs": abs,
    "int": int,
}


class Expr(ABC):
    """Base class for all expressions.

    Expressions compare structurally (same shape, same operators, same
    leaves), which makes IR round-trip tests and program transformations
    straightforward to verify.
    """

    @abstractmethod
    def evaluate(self, env: Mapping[str, Value]) -> Value:
        """Value of this expression under the variable binding ``env``."""

    @abstractmethod
    def variables(self) -> frozenset[str]:
        """Names of all variables this expression reads."""

    @abstractmethod
    def _key(self) -> tuple:
        """Structural identity of this node (children included)."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    # Operator sugar keeps workload definitions readable.
    def __add__(self, other) -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __sub__(self, other) -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __mul__(self, other) -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __floordiv__(self, other) -> "BinOp":
        return BinOp("//", self, as_expr(other))

    def __mod__(self, other) -> "BinOp":
        return BinOp("%", self, as_expr(other))


class Const(Expr):
    """A literal value."""

    def __init__(self, value: Value):
        if not isinstance(value, (int, float, bool)):
            raise TypeError(f"Const requires a scalar, got {type(value).__name__}")
        self.value = value

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Var(Expr):
    """A variable reference, resolved against the environment at run time."""

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"variable name must be a non-empty string: {name!r}")
        self.name = name

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        if self.name not in env:
            raise KeyError(f"undefined variable {self.name!r}")
        return env[self.name]

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class BinOp(Expr):
    """Arithmetic binary operation.

    Division and modulo by zero evaluate to 0 rather than raising: task
    code guarded by data-dependent divisors should not crash the predictor
    slice, mirroring how a C slice would simply produce a garbage-but-
    harmless feature value.
    """

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _BIN_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        return _BIN_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


class UnaryOp(Expr):
    """Unary operation: negation, logical not, abs, int truncation."""

    def __init__(self, op: str, operand: Expr):
        if op not in _UNARY_OPS:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        return _UNARY_OPS[self.op](self.operand.evaluate(env))

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def _key(self) -> tuple:
        return (self.op, self.operand)

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"


class Compare(Expr):
    """Comparison producing a bool (used as branch conditions)."""

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, Value]) -> bool:
        return _CMP_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"Compare({self.op!r}, {self.left!r}, {self.right!r})"


class BoolOp(Expr):
    """Short-circuiting ``and`` / ``or`` over two or more operands."""

    def __init__(self, op: str, operands: list[Expr]):
        if op not in ("and", "or"):
            raise ValueError(f"unknown boolean operator {op!r}")
        if len(operands) < 2:
            raise ValueError("BoolOp requires at least two operands")
        self.op = op
        self.operands = list(operands)

    def evaluate(self, env: Mapping[str, Value]) -> bool:
        if self.op == "and":
            return all(bool(o.evaluate(env)) for o in self.operands)
        return any(bool(o.evaluate(env)) for o in self.operands)

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for operand in self.operands:
            out |= operand.variables()
        return out

    def _key(self) -> tuple:
        return (self.op, tuple(self.operands))

    def __repr__(self) -> str:
        return f"BoolOp({self.op!r}, {self.operands!r})"


class IfExpr(Expr):
    """Ternary conditional expression ``then if cond else orelse``."""

    def __init__(self, cond: Expr, then: Expr, orelse: Expr):
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def evaluate(self, env: Mapping[str, Value]) -> Value:
        if self.cond.evaluate(env):
            return self.then.evaluate(env)
        return self.orelse.evaluate(env)

    def variables(self) -> frozenset[str]:
        return self.cond.variables() | self.then.variables() | self.orelse.variables()

    def _key(self) -> tuple:
        return (self.cond, self.then, self.orelse)

    def __repr__(self) -> str:
        return f"IfExpr({self.cond!r}, {self.then!r}, {self.orelse!r})"


def as_expr(value: Expr | Value | str) -> Expr:
    """Coerce a Python scalar (to Const) or name (to Var) into an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(value)
