"""Mini task language: IR, interpreter, instrumentation, and slicing.

This package is the stand-in for the paper's C-source tooling: the same
pipeline — annotate a task, instrument its control flow, profile it, slice
out a fast feature-computing fragment — operates on a small structured IR
instead of C.  Control-flow semantics (branches, counted loops, calls
through function pointers) are real, so instrumentation and slicing are
genuine program transformations.
"""

from repro.programs.env import Environment
from repro.programs.expr import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    IfExpr,
    UnaryOp,
    Var,
    as_expr,
)
from repro.programs.instrument import (
    FeatureSite,
    InstrumentedProgram,
    Instrumenter,
)
from repro.programs.interpreter import (
    ExecutionResult,
    Interpreter,
    RawFeatures,
)
from repro.programs.ir import (
    Assign,
    Block,
    Hint,
    If,
    IndirectCall,
    Loop,
    Program,
    Seq,
    Stmt,
    While,
    control_sites,
    walk,
)
from repro.programs.slicer import PredictionSlice, Slicer
from repro.programs.validate import (
    free_variables,
    static_instruction_bound,
    validate_program,
)

__all__ = [
    "Environment",
    "BinOp",
    "BoolOp",
    "Compare",
    "Const",
    "Expr",
    "IfExpr",
    "UnaryOp",
    "Var",
    "as_expr",
    "FeatureSite",
    "InstrumentedProgram",
    "Instrumenter",
    "ExecutionResult",
    "Interpreter",
    "RawFeatures",
    "Assign",
    "Block",
    "Hint",
    "If",
    "IndirectCall",
    "Loop",
    "Program",
    "Seq",
    "Stmt",
    "While",
    "control_sites",
    "walk",
    "PredictionSlice",
    "Slicer",
    "free_variables",
    "static_instruction_bound",
    "validate_program",
]
