"""The fleet coordinator: plan shards, run them, merge the results.

``run_fleet`` is the one entry point: it deals a
:class:`~repro.fleet.tenant.TenantSpec` roster out to N shards
(:func:`repro.fleet.shard.plan_shards`), executes them serially or on
a ``multiprocessing`` pool, and folds the per-session results into a
:class:`~repro.fleet.aggregate.FleetReport` in canonical order.

Determinism contract: the report depends only on ``(tenants, seed)``.
Shard count changes which event loop a session runs in; worker count
changes which process; neither enters any seed path, and the merge
re-sorts results canonically — so ``run_fleet(spec)`` is bit-identical
for every ``shards``/``workers`` choice.  Tests assert this directly.

Worker pools fork (where the platform allows), so the coordinator
pre-warms the per-process controller cache *before* the pool spawns:
children inherit the trained artifacts and skip training entirely.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from repro.fleet.aggregate import FleetReport, aggregate_fleet
from repro.fleet.session import FleetBuild, lab_for
from repro.fleet.shard import ShardResult, plan_shards, run_shard
from repro.fleet.tenant import TenantSpec
from repro.telemetry.hostprof import ProfileState, merge_profiles

__all__ = ["FleetSpec", "FleetOutcome", "run_fleet"]


@dataclass(frozen=True)
class FleetSpec:
    """Everything that determines a fleet simulation's results.

    Attributes:
        tenants: The roster (order matters: it keys the canonical
            session order and the report layout).
        seed: Root seed; every stream in the fleet derives from it.
        shards: Event-loop partitions (display/scale knob, not a
            result knob).
        top_k: Worst-tenant table length.
        profile_jobs / switch_samples: Controller build size (see
            :class:`~repro.fleet.session.FleetBuild`).
        energy: Attribute every session's joules (conservation-checked
            per-session ledgers, rolled up per tenant and fleet-wide in
            the report's energy section).  Deterministic given
            ``(tenants, seed)``, so the byte-identical-report contract
            extends to attribution-enabled runs.
    """

    tenants: tuple[TenantSpec, ...]
    seed: int = 42
    shards: int = 1
    top_k: int = 5
    profile_jobs: int = 60
    switch_samples: int = 60
    energy: bool = False

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if self.shards < 1:
            raise ValueError(f"need >= 1 shard, got {self.shards}")

    @property
    def build(self) -> FleetBuild:
        return FleetBuild(
            root_seed=self.seed,
            profile_jobs=self.profile_jobs,
            switch_samples=self.switch_samples,
        )

    @property
    def total_sessions(self) -> int:
        return sum(t.sessions for t in self.tenants)


@dataclass(frozen=True)
class FleetOutcome:
    """A fleet run's full yield: the report plus execution metadata.

    The report is the deterministic part; ``shard_results`` carry the
    partition-dependent extras (per-shard job counts) callers may want
    for diagnostics without contaminating the report.  The merged host
    profile is likewise diagnostics-only: wall-clock data lives here
    and in separate artifacts, never inside the report, so the
    byte-identical-report contract holds with profiling on or off.
    """

    report: FleetReport
    shard_results: tuple[ShardResult, ...] = field(repr=False)
    host_profile: ProfileState | None = None

    @property
    def sessions(self) -> int:
        return sum(len(s.sessions) for s in self.shard_results)


def _prewarm(spec: FleetSpec) -> None:
    """Train every needed controller once, in this process."""
    lab = lab_for(spec.build)
    for tenant in spec.tenants:
        # Static governors train nothing; prediction/adaptive cache a
        # controller inside the Lab for all sessions (and, when the
        # pool forks, for all workers).
        lab.make_governor(tenant.governor, tenant.app)


def run_fleet(
    spec: FleetSpec, workers: int = 1, profile: bool = False
) -> FleetOutcome:
    """Simulate a fleet; results are independent of ``workers``.

    Args:
        spec: The fleet to simulate.
        workers: Process count.  1 runs shards in-process; more uses a
            ``multiprocessing`` pool over shard plans (capped at the
            shard count — a shard is the unit of dispatch).
        profile: Host-profile every shard and merge the snapshots into
            one fleet-level :class:`ProfileState`
            (:attr:`FleetOutcome.host_profile`).  Observational only:
            the report stays byte-identical to an unprofiled run.
    """
    if workers < 1:
        raise ValueError(f"need >= 1 worker, got {workers}")
    plans = plan_shards(
        spec.tenants, spec.shards, spec.build, profile=profile,
        energy=spec.energy,
    )
    _prewarm(spec)
    workers = min(workers, len(plans))
    if workers == 1:
        shard_results = tuple(run_shard(plan) for plan in plans)
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            shard_results = tuple(pool.map(run_shard, plans))
    results = [
        session for shard in shard_results for session in shard.sessions
    ]
    report = aggregate_fleet(
        spec.tenants, results, seed=spec.seed, top_k=spec.top_k
    )
    host_profile = None
    if profile:
        host_profile = ProfileState()
        for shard in shard_results:
            if shard.host_profile is not None:
                host_profile = merge_profiles(
                    host_profile, shard.host_profile
                )
    return FleetOutcome(
        report=report,
        shard_results=shard_results,
        host_profile=host_profile,
    )
