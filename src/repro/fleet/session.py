"""One tenant session: an executor plus its SLO accounting.

A session is the fleet's unit of work: one
:class:`~repro.runtime.executor.TaskLoopRunner` over one job stream,
with a :class:`~repro.telemetry.slo.SloTracker` per spec fed directly
from the job records as they complete.  Sessions are built entirely
from ``(tenant spec, session index, root seed)`` — every random
stream is named by :func:`repro.fleet.seeding.session_seed` — so the
same session computes identically on any shard of any worker.

Controller training is the one expensive, shareable step (profiling
hundreds of jobs per app), so each process keeps a module-level
:class:`~repro.analysis.harness.Lab` per build configuration; a
coordinator can pre-warm it before forking workers and every child
inherits the trained artifacts for free.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.analysis.harness import Lab
from repro.fleet.seeding import derive_seed, session_seed
from repro.fleet.tenant import TenantSpec
from repro.online.inject import StepDriftJitter
from repro.pipeline.config import PipelineConfig
from repro.platform.board import Board
from repro.platform.jitter import LogNormalJitter, NoJitter
from repro.platform.switching import SwitchLatencyModel
from repro.runtime.executor import TaskLoopRunner
from repro.telemetry import NO_TELEMETRY
from repro.telemetry.energy import EnergyLedger, EnergyState
from repro.telemetry.hostprof import HostProfiler
from repro.telemetry.slo import (
    JobObservation,
    SloTracker,
    SloTrackerState,
    default_slos,
)

__all__ = ["FleetBuild", "SessionResult", "Session", "run_session", "lab_for"]


@dataclass(frozen=True)
class FleetBuild:
    """Shared build configuration for a fleet's trained artifacts.

    Attributes:
        root_seed: The fleet's root seed; controller training derives
            its own seed from it (never from shard/worker identity).
        profile_jobs: Jobs profiled per app when training predictive
            controllers.  Smaller than the single-run default: a fleet
            amortizes one controller over thousands of sessions and the
            training cost is paid per worker process.
        switch_samples: Samples per OPP pair for the switch-time
            microbenchmark.
    """

    root_seed: int
    profile_jobs: int = 60
    switch_samples: int = 60


#: Per-process Lab cache: (root_seed, profile_jobs, switch_samples) ->
#: Lab.  Forked workers inherit a pre-warmed parent cache.
_LABS: dict[tuple[int, int, int], Lab] = {}


def lab_for(build: FleetBuild) -> Lab:
    """This process's shared Lab for a build configuration."""
    key = (build.root_seed, build.profile_jobs, build.switch_samples)
    if key not in _LABS:
        _LABS[key] = Lab(
            pipeline_config=PipelineConfig(n_profile_jobs=build.profile_jobs),
            seed=derive_seed(build.root_seed, "fleet", "build"),
            switch_samples=build.switch_samples,
        )
    return _LABS[key]


@dataclass(frozen=True)
class SessionResult:
    """What one session did, ready to merge shard-count-independently.

    Attributes:
        tenant: Owning tenant's name.
        index: Session index within the tenant (the seed path).
        jobs: Jobs completed.
        misses: Deadline misses.
        energy_j: Total board energy over the session.
        switches: DVFS transitions performed.
        makespan_s: Virtual time from first release to last completion.
        slacks_s: Per-job slack values, in job order (fleet-level
            percentile roll-ups need the raw values).
        slo_states: One mergeable tracker snapshot per tenant SLO spec,
            in spec order.
        energy_state: Mergeable energy-attribution snapshot, present
            when the fleet ran with attribution on (``--energy``);
            None otherwise.
    """

    tenant: str
    index: int
    jobs: int
    misses: int
    energy_j: float
    switches: int
    makespan_s: float
    slacks_s: tuple[float, ...]
    slo_states: tuple[SloTrackerState, ...]
    energy_state: EnergyState | None = None


class Session:
    """A live session: steps its runner, classifies each job.

    Args:
        tenant: Owning tenant's spec.
        index: Session index within the tenant (the seed path).
        build: Shared build configuration.
        hostprof: Optional host profiler handed down to the runner
            (``fleet run --profile``).  Purely observational: it
            touches no seed path, so profiled and unprofiled fleets
            produce byte-identical reports.
        energy: When True, attribute this session's joules with a
            per-session :class:`~repro.telemetry.energy.EnergyLedger`
            (``fleet run --energy``).  Also purely observational — the
            ledger only watches the board's segment stream — so fleet
            reports stay byte-identical across shard/worker counts
            whether attribution is on or off.
    """

    def __init__(
        self,
        tenant: TenantSpec,
        index: int,
        build: FleetBuild,
        hostprof: HostProfiler | None = None,
        energy: bool = False,
    ):
        self.tenant = tenant
        self.index = index
        lab = lab_for(build)
        app = lab.app(tenant.app)
        budget = app.task.budget_s * tenant.budget_scale
        n_jobs = tenant.jobs_per_session
        root = build.root_seed

        arrival_rng = random.Random(
            session_seed(root, tenant.name, index, "arrivals")
        )
        arrivals = tenant.arrival.arrivals(n_jobs, budget, arrival_rng)

        jitter_seed = session_seed(root, tenant.name, index, "jitter")
        base = (
            LogNormalJitter(tenant.jitter_sigma, seed=jitter_seed)
            if tenant.jitter_sigma > 0
            else NoJitter()
        )
        board = Board(
            opps=lab.opps,
            switcher=SwitchLatencyModel(
                lab.opps,
                seed=session_seed(root, tenant.name, index, "switch"),
            ),
        )
        if tenant.drift_factor is not None and tenant.drift_factor != 1.0:
            board.cpu.jitter = StepDriftJitter(
                base,
                tenant.drift_factor,
                shift_at_s=tenant.drift_at_frac * n_jobs * budget,
                clock=lambda: board.now,
            )
        else:
            board.cpu.jitter = base

        self.energy_ledger = (
            EnergyLedger(board.power, board.opps) if energy else None
        )
        self.runner = TaskLoopRunner(
            board=board,
            task=app.task.with_budget(budget),
            governor=lab.make_governor(tenant.governor, tenant.app),
            inputs=app.inputs(
                n_jobs, seed=session_seed(root, tenant.name, index, "inputs")
            ),
            arrivals=arrivals,
            interpreter=lab.interpreter,
            telemetry=NO_TELEMETRY,
            hostprof=hostprof,
            energy=self.energy_ledger,
        )
        self.trackers = tuple(
            SloTracker(spec)
            for spec in default_slos(
                budget_s=budget, miss_objective=tenant.miss_objective
            )
        )
        self._energy_mark = 0.0
        self._finished_at = 0.0

    def next_arrival_s(self) -> float | None:
        """Release time of the next pending job (None when exhausted)."""
        return self.runner.next_arrival_s()

    def step(self) -> bool:
        """Run the next job; False when the session is exhausted."""
        record = self.runner.step()
        if record is None:
            return False
        energy = self.runner.board.energy_j()
        predicted = record.predicted_time_s
        residual = float("nan")
        if not math.isnan(predicted) and predicted > 0:
            residual = (record.exec_time_s - predicted) / predicted
        observation = JobObservation(
            index=record.index,
            t_s=record.end_s,
            missed=record.missed,
            slack_s=record.slack_s,
            energy_j=energy - self._energy_mark,
            residual_rel=residual,
        )
        self._energy_mark = energy
        self._finished_at = record.end_s
        for tracker in self.trackers:
            tracker.observe(observation)
        return True

    def result(self) -> SessionResult:
        run = self.runner.result()
        energy_state = None
        if self.energy_ledger is not None:
            # The invariant is cheap to enforce on every session, so a
            # leaking attribution path can never reach the roll-up.
            self.energy_ledger.check_conservation(self.runner.board)
            energy_state = self.energy_ledger.state()
        return SessionResult(
            tenant=self.tenant.name,
            index=self.index,
            jobs=run.n_jobs,
            misses=run.n_missed,
            energy_j=run.energy_j,
            switches=run.switch_count,
            makespan_s=self._finished_at,
            slacks_s=tuple(job.slack_s for job in run.jobs),
            slo_states=tuple(tracker.state() for tracker in self.trackers),
            energy_state=energy_state,
        )


def run_session(
    tenant: TenantSpec, index: int, build: FleetBuild
) -> SessionResult:
    """Run one session start to finish (the shard loop inlines this)."""
    session = Session(tenant, index, build)
    while session.step():
        pass
    return session.result()
