"""Seed derivation for the fleet: one root, stable named children.

The whole determinism contract of the fleet simulator rests on this
module: every random stream a session uses (its input script, its
timing jitter, its arrival process) is seeded from the *path* that
names it — ``root -> tenant -> session index -> purpose`` — never from
the shard or worker that happens to execute it.  Two fleets with the
same root seed therefore produce bit-identical per-session results
regardless of how sessions were partitioned.

Derivation uses :func:`zlib.crc32` over the rendered path, the same
cross-process-stable scheme :class:`repro.analysis.harness.Lab` uses
for run seeds (builtin ``hash()`` is salted per interpreter run, so it
must never leak into a seed path).
"""

from __future__ import annotations

import zlib

__all__ = ["derive_seed", "session_seed"]


def derive_seed(root: int, *path: object) -> int:
    """A 32-bit child seed for the stream named by ``path``.

    Path components are rendered with ``str`` and joined with ``|``,
    so ``derive_seed(7, "video", 3)`` differs from
    ``derive_seed(7, "video", 31)`` and from
    ``derive_seed(7, "video3")`` — component boundaries are part of
    the name.
    """
    rendered = "|".join(str(part) for part in (root, *path))
    return zlib.crc32(rendered.encode())


def session_seed(root: int, tenant: str, index: int, purpose: str) -> int:
    """The seed for one named stream of one tenant session.

    Purposes in use: ``"inputs"`` (the job input script),
    ``"jitter"`` (timing noise), ``"arrivals"`` (the release
    schedule), ``"switch"`` (the board's switch-latency draws).
    """
    return derive_seed(root, "fleet", tenant, index, purpose)
