"""Fleet-scale serving simulator: sharded multi-tenant executors.

The paper evaluates one interactive session at a time; a deployment of
its controller serves *fleets* of them.  This package simulates
thousands of concurrent sessions on the existing simulated clock:

- :mod:`repro.fleet.tenant` declares per-tenant service classes
  (workload, governor, deadline budget, arrival process) and
  :mod:`repro.fleet.arrivals` generates their job release schedules
  (periodic, Poisson, bursty/MMPP, diurnal).
- :mod:`repro.fleet.shard` runs many interleaved
  :class:`~repro.runtime.executor.TaskLoopRunner` sessions under one
  virtual clock per shard; :mod:`repro.fleet.coordinator` splits a
  fleet across N shards (optionally a ``multiprocessing`` pool) and
  merges the results.
- :mod:`repro.fleet.aggregate` rolls the per-session SLO tracker
  states up into per-tenant and fleet-wide error budgets, multi-window
  burn rates, and a top-K worst-tenants report.

The determinism contract (see ``docs/fleet.md``): every session's
stream is derived from ``(root seed, tenant name, session index)`` via
:mod:`repro.fleet.seeding` — shard and worker counts never enter the
derivation, and results merge in canonical session order — so a fleet
report is bit-identical no matter how the fleet was partitioned.
"""

from repro.fleet.aggregate import (
    FleetReport,
    TenantRollup,
    aggregate_fleet,
    fleet_metrics,
)
from repro.fleet.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    arrival_from_dict,
)
from repro.fleet.coordinator import FleetOutcome, FleetSpec, run_fleet
from repro.fleet.seeding import derive_seed, session_seed
from repro.fleet.session import SessionResult, run_session
from repro.fleet.shard import ShardPlan, ShardResult, plan_shards, run_shard
from repro.fleet.tenant import TenantSpec, tenants_from_json, tenants_to_json

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "PeriodicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "arrival_from_dict",
    "derive_seed",
    "session_seed",
    "TenantSpec",
    "tenants_to_json",
    "tenants_from_json",
    "SessionResult",
    "run_session",
    "ShardPlan",
    "ShardResult",
    "plan_shards",
    "run_shard",
    "FleetSpec",
    "FleetOutcome",
    "run_fleet",
    "TenantRollup",
    "FleetReport",
    "aggregate_fleet",
    "fleet_metrics",
]
