"""Arrival processes: how a tenant's jobs are released onto the clock.

The single-session executor releases jobs strictly periodically (one
per budget).  Fleets are burstier: user think time makes releases
Poisson, correlated load makes them bursty (a two-state Markov-
modulated Poisson process), and daily usage cycles modulate the rate
slowly.  Each process here turns ``(n_jobs, period_s, rng)`` into a
non-decreasing arrival schedule the executor consumes via its
``arrivals`` parameter; deadlines stay ``arrival + budget``, so a
burst genuinely queues work against the deadline clock.

Processes are frozen declarations that round-trip through JSON (the
``kind`` key selects the class), so a fleet spec file fully determines
every tenant's traffic shape.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "ArrivalProcess",
    "PeriodicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ARRIVAL_KINDS",
    "arrival_from_dict",
]


class ArrivalProcess(ABC):
    """Generates one session's job release times."""

    kind: str

    @abstractmethod
    def arrivals(
        self, n_jobs: int, period_s: float, rng: random.Random
    ) -> list[float]:
        """``n_jobs`` non-decreasing release times starting at 0.0.

        ``period_s`` is the tenant's mean inter-arrival target (the
        task budget by convention) so one tenant spec produces
        comparable load across apps with different budgets.
        """

    def as_dict(self) -> dict:
        data = {"kind": self.kind}
        data.update(
            {
                field: getattr(self, field)
                for field in getattr(self, "__dataclass_fields__", ())
            }
        )
        return data

    def _check(self, n_jobs: int, period_s: float) -> None:
        if n_jobs < 1:
            raise ValueError(f"need at least one job, got {n_jobs}")
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")


@dataclass(frozen=True)
class PeriodicArrivals(ArrivalProcess):
    """The paper's release model: one job per period, no randomness."""

    kind = "periodic"

    def arrivals(
        self, n_jobs: int, period_s: float, rng: random.Random
    ) -> list[float]:
        self._check(n_jobs, period_s)
        return [i * period_s for i in range(n_jobs)]


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless releases: exponential gaps with mean ``period/rate``.

    Attributes:
        rate: Load multiplier; 1.0 matches the periodic throughput on
            average, 2.0 releases twice as fast (sustained overload).
    """

    rate: float = 1.0
    kind = "poisson"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def arrivals(
        self, n_jobs: int, period_s: float, rng: random.Random
    ) -> list[float]:
        self._check(n_jobs, period_s)
        mean_gap = period_s / self.rate
        times, t = [], 0.0
        for _ in range(n_jobs):
            times.append(t)
            t += rng.expovariate(1.0 / mean_gap)
        return times


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: calm stretches interrupted by fast bursts.

    The process alternates between a calm state (releases at
    ``period / calm_rate``) and a burst state (``burst_factor`` times
    faster); after each release it stays in its state with probability
    ``1 - 1/dwell`` (geometric dwell of ``dwell`` jobs on average).

    Attributes:
        burst_factor: Rate multiplier while bursting (> 1).
        calm_rate: Load multiplier in the calm state.
        dwell: Mean jobs spent in a state before switching.
    """

    burst_factor: float = 4.0
    calm_rate: float = 0.8
    dwell: float = 8.0
    kind = "bursty"

    def __post_init__(self) -> None:
        if self.burst_factor <= 1.0:
            raise ValueError(
                f"burst_factor must exceed 1, got {self.burst_factor}"
            )
        if self.calm_rate <= 0:
            raise ValueError(f"calm_rate must be positive, got {self.calm_rate}")
        if self.dwell < 1.0:
            raise ValueError(f"dwell must be >= 1 job, got {self.dwell}")

    def arrivals(
        self, n_jobs: int, period_s: float, rng: random.Random
    ) -> list[float]:
        self._check(n_jobs, period_s)
        switch_p = 1.0 / self.dwell
        bursting = False
        times, t = [], 0.0
        for _ in range(n_jobs):
            times.append(t)
            rate = self.calm_rate * (self.burst_factor if bursting else 1.0)
            t += rng.expovariate(rate / period_s)
            if rng.random() < switch_p:
                bursting = not bursting
        return times


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Slow sinusoidal rate cycle: the daily peak-and-trough pattern.

    The instantaneous rate over a cycle of ``cycle_jobs`` releases is
    ``1 + amplitude * sin(2*pi * i / cycle_jobs)`` times the base rate,
    with exponential gaps at that rate (so the peak half of the cycle
    is genuinely overloaded when ``amplitude`` is high).

    Attributes:
        amplitude: Peak rate excursion as a fraction of base, in [0, 1).
        cycle_jobs: Releases per full cycle.
    """

    amplitude: float = 0.5
    cycle_jobs: int = 64
    kind = "diurnal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.cycle_jobs < 2:
            raise ValueError(
                f"cycle needs >= 2 jobs, got {self.cycle_jobs}"
            )

    def arrivals(
        self, n_jobs: int, period_s: float, rng: random.Random
    ) -> list[float]:
        self._check(n_jobs, period_s)
        times, t = [], 0.0
        for i in range(n_jobs):
            times.append(t)
            phase = 2.0 * math.pi * i / self.cycle_jobs
            rate = (1.0 + self.amplitude * math.sin(phase)) / period_s
            t += rng.expovariate(rate)
        return times


#: JSON ``kind`` -> class, the registry ``arrival_from_dict`` consults.
ARRIVAL_KINDS: dict[str, type[ArrivalProcess]] = {
    cls.kind: cls
    for cls in (
        PeriodicArrivals,
        PoissonArrivals,
        BurstyArrivals,
        DiurnalArrivals,
    )
}


def arrival_from_dict(data: dict) -> ArrivalProcess:
    """Rebuild a process from its :meth:`ArrivalProcess.as_dict` form."""
    kind = data.get("kind")
    if kind not in ARRIVAL_KINDS:
        raise ValueError(
            f"unknown arrival kind {kind!r}; "
            f"expected one of {sorted(ARRIVAL_KINDS)}"
        )
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    return ARRIVAL_KINDS[kind](**kwargs)
