"""``repro fleet`` — run a simulated fleet and report on it.

Two subcommands:

``fleet run``
    Build a tenant roster (from flags or a ``--spec`` JSON file),
    simulate it across N shards (optionally a worker pool), and render
    the fleet report as text, markdown, or JSON.  ``--trace DIR``
    additionally writes ``fleet.<name>.metrics.json`` (the file
    ``repro report --gate`` consumes), ``fleet_report.json``, and
    ``fleet_report.md`` into DIR.

``fleet report PATH``
    Re-render a saved ``fleet_report.json`` (or a directory containing
    one) without re-simulating.

The rendered report never contains the shard/worker partitioning —
that is printed separately as invocation metadata — so saving the
report from two differently-sharded runs yields byte-identical files.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.fleet.arrivals import ARRIVAL_KINDS, arrival_from_dict
from repro.fleet.coordinator import FleetSpec, run_fleet
from repro.fleet.tenant import TenantSpec, tenants_from_json

__all__ = ["fleet_command"]


def fleet_command(argv: list[str]) -> int:
    """Entry point for ``repro fleet ...``; returns an exit code."""
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: repro fleet run [options]  |  repro fleet report PATH\n"
            "run 'repro fleet run --help' for the full option list"
        )
        return 0 if argv else 2
    if argv[0] == "run":
        return _run_command(argv[1:])
    if argv[0] == "report":
        return _report_command(argv[1:])
    print(f"unknown fleet subcommand: {argv[0]}", file=sys.stderr)
    return 2


def _build_tenants(args) -> tuple[TenantSpec, ...]:
    """Roster from flags: sessions dealt evenly across the apps."""
    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    if not apps:
        raise ValueError("--apps needs at least one workload name")
    if len(set(apps)) != len(apps):
        raise ValueError(f"--apps must be unique, got {apps}")
    if args.sessions < len(apps):
        raise ValueError(
            f"--sessions {args.sessions} cannot cover {len(apps)} apps"
        )
    per_app, extra = divmod(args.sessions, len(apps))
    arrival = arrival_from_dict({"kind": args.arrival})
    tenants = []
    for i, app in enumerate(apps):
        drift = (
            args.drift
            if args.drift_tenant is not None and args.drift_tenant == app
            else None
        )
        tenants.append(
            TenantSpec(
                name=app,
                app=app,
                governor=args.governor,
                sessions=per_app + (1 if i < extra else 0),
                jobs_per_session=args.jobs,
                arrival=arrival,
                jitter_sigma=args.jitter,
                drift_factor=drift,
            )
        )
    if args.drift_tenant is not None and args.drift_tenant not in apps:
        raise ValueError(
            f"--drift-tenant {args.drift_tenant!r} is not one of {apps}"
        )
    return tuple(tenants)


def _run_command(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fleet run",
        description=(
            "Simulate a multi-tenant fleet of interactive sessions on "
            "the virtual clock and roll up per-tenant/fleet-wide error "
            "budgets, burn rates, and a top-K worst-tenants table."
        ),
    )
    parser.add_argument(
        "--sessions", type=int, default=100,
        help="total sessions, dealt across --apps (default 100)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="event-loop partitions (never changes results)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the shard pool (never changes results)",
    )
    parser.add_argument("--seed", type=int, default=42, help="root seed")
    parser.add_argument(
        "--apps", default="rijndael,2048",
        help="comma-separated workloads, one tenant each",
    )
    parser.add_argument(
        "--governor", default="prediction", help="governor for every tenant"
    )
    parser.add_argument(
        "--jobs", type=int, default=20, help="jobs per session"
    )
    parser.add_argument(
        "--arrival", default="poisson", choices=sorted(ARRIVAL_KINDS),
        help="arrival process for every tenant",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.02, help="timing-noise sigma"
    )
    parser.add_argument(
        "--top-k", type=int, default=5, help="worst-tenant table length"
    )
    parser.add_argument(
        "--profile-jobs", type=int, default=60,
        help="jobs profiled per app when training predictive controllers",
    )
    parser.add_argument(
        "--drift-tenant", default=None, metavar="NAME",
        help="inject execution-time drift into this tenant's sessions",
    )
    parser.add_argument(
        "--drift", type=float, default=1.5, metavar="FACTOR",
        help="drift slowdown factor for --drift-tenant",
    )
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON tenant roster (overrides --sessions/--apps/... flags)",
    )
    parser.add_argument(
        "--name", default="run",
        help="trace run name: metrics land in fleet.<name>.metrics.json",
    )
    parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="write fleet.<name>.metrics.json + fleet_report.{json,md} "
        "into DIR (the directory `repro report --gate` consumes)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print the report as markdown"
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the rendered report to FILE",
    )
    parser.add_argument(
        "--fail-on-page", action="store_true",
        help="exit 1 when any page-severity alert fired",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="host-profile every shard and merge into one fleet profile "
        "(host.fleet.<name>.* artifacts under --trace; never touches "
        "the deterministic report)",
    )
    parser.add_argument(
        "--energy", action="store_true",
        help="attribute every session's joules with conservation-checked "
        "ledgers and add per-tenant/fleet energy sections to the report "
        "(deterministic: byte-identical across shard/worker counts)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)
    if args.json and args.markdown:
        print("--json and --markdown are mutually exclusive", file=sys.stderr)
        return 2

    try:
        if args.spec is not None:
            tenants = tenants_from_json(pathlib.Path(args.spec).read_text())
        else:
            tenants = _build_tenants(args)
        spec = FleetSpec(
            tenants=tenants,
            seed=args.seed,
            shards=args.shards,
            top_k=args.top_k,
            profile_jobs=args.profile_jobs,
            energy=args.energy,
        )
    except (ValueError, FileNotFoundError) as error:
        print(str(error), file=sys.stderr)
        return 2

    started = time.time()
    outcome = run_fleet(spec, workers=args.workers, profile=args.profile)
    elapsed = time.time() - started
    report = outcome.report

    if args.json:
        text = report.to_json()
    elif args.markdown:
        text = report.render_markdown()
    else:
        text = report.render_text()
    print(text)
    # Invocation metadata stays out of the report itself so the report
    # is a determinism witness across partitionings.
    print(
        f"[fleet: {report.sessions} sessions / {report.jobs} jobs on "
        f"{spec.shards} shard(s) x {args.workers} worker(s) in "
        f"{elapsed:.1f}s]",
        file=sys.stderr,
    )

    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    if outcome.host_profile is not None:
        # Host profile to stderr with the other invocation metadata:
        # wall-clock observations never touch the deterministic report.
        from repro.telemetry.hostprof import render_profile

        print(
            render_profile(
                outcome.host_profile,
                title=f"fleet host profile ({spec.shards} shard(s))",
            ),
            file=sys.stderr,
        )
    if args.trace is not None:
        written = write_fleet_trace(report, args.trace, name=args.name)
        if outcome.host_profile is not None:
            from repro.telemetry.hostprof import write_host_profile

            # host.fleet.<name> keeps the host artifacts clear of the
            # deterministic fleet.<name>.metrics.json gate input while
            # still landing under the `host.` run prefix.
            written += write_host_profile(
                outcome.host_profile, args.trace, f"host.fleet.{args.name}"
            )
        print(
            f"[trace: {len(written)} file(s) -> {args.trace}]",
            file=sys.stderr,
        )

    if args.fail_on_page and report.page_alerts > 0:
        print(
            f"\nFLEET SLO VIOLATED ({report.page_alerts} page alert(s))",
            file=sys.stderr,
        )
        return 1
    return 0


def write_fleet_trace(
    report, directory: pathlib.Path | str, name: str = "run"
) -> list[pathlib.Path]:
    """Write a fleet's trace artifacts; returns the paths.

    ``fleet.<name>.metrics.json`` matches the registry-dump shape the
    report/gate tooling reads, so fleet summaries gate through the
    same ``repro report DIR --gate BASELINE`` flow as single runs.
    """
    from repro.fleet.aggregate import fleet_metrics

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    metrics_path = directory / f"fleet.{name}.metrics.json"
    metrics_path.write_text(json.dumps(fleet_metrics(report), indent=2))
    written.append(metrics_path)
    json_path = directory / "fleet_report.json"
    json_path.write_text(report.to_json() + "\n")
    written.append(json_path)
    md_path = directory / "fleet_report.md"
    md_path.write_text(report.render_markdown() + "\n")
    written.append(md_path)
    return written


def _report_command(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fleet report",
        description="Re-render a saved fleet_report.json.",
    )
    parser.add_argument(
        "path", help="fleet_report.json, or a directory containing one"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render markdown"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    path = pathlib.Path(args.path)
    if path.is_dir():
        path = path / "fleet_report.json"
    if not path.is_file():
        print(f"no fleet report at {path}", file=sys.stderr)
        return 2
    report = _report_from_dict(json.loads(path.read_text()))
    print(report.render_markdown() if args.markdown else report.render_text())
    return 0


def _report_from_dict(data: dict):
    """Rebuild a renderable FleetReport from its as_dict() JSON."""
    from repro.fleet.aggregate import FleetReport, SloRollup, TenantRollup
    from repro.telemetry.energy import EnergyState

    def energy_state(payload):
        # Absent or null in pre-attribution reports -> None.
        return None if payload is None else EnergyState.from_dict(payload)

    tenants = tuple(
        TenantRollup(
            name=t["name"],
            app=t["app"],
            governor=t["governor"],
            sessions=int(t["sessions"]),
            jobs=int(t["jobs"]),
            misses=int(t["misses"]),
            energy_j=float(t["energy_j"]),
            switches=int(t["switches"]),
            miss_rate=float(t["miss_rate"]),
            slack_p50_s=float(t["slack_p50_s"]),
            slack_p95_s=float(t["slack_p95_s"]),
            objective=float(t["objective"]),
            slo=tuple(
                SloRollup(
                    spec_name=s["spec_name"],
                    severity=s["severity"],
                    jobs=int(s["jobs"]),
                    bad=int(s["bad"]),
                    budget_consumed=float(s["budget_consumed"]),
                    burn_rates={
                        k: float(v) for k, v in s["burn_rates"].items()
                    },
                    window_tails={
                        k: (int(v[0]), int(v[1]))
                        for k, v in s["window_tails"].items()
                    },
                    exceeding=bool(s["exceeding"]),
                    alerts=int(s["alerts"]),
                )
                for s in t["slo"]
            ),
            energy=energy_state(t.get("energy")),
        )
        for t in data["tenants"]
    )
    return FleetReport(
        seed=int(data["seed"]),
        tenants=tenants,
        sessions=int(data["sessions"]),
        jobs=int(data["jobs"]),
        misses=int(data["misses"]),
        energy_j=float(data["energy_j"]),
        switches=int(data["switches"]),
        miss_rate=float(data["miss_rate"]),
        slack_p50_s=float(data["slack_p50_s"]),
        slack_p95_s=float(data["slack_p95_s"]),
        budget_consumed=float(data["budget_consumed"]),
        burn_rates={k: float(v) for k, v in data["burn_rates"].items()},
        page_alerts=int(data["page_alerts"]),
        ticket_alerts=int(data["ticket_alerts"]),
        top_k=tuple(data["top_k"]),
        energy=energy_state(data.get("energy")),
        energy_top_k=tuple(data.get("energy_top_k", ())),
    )
