"""Shards: many interleaved sessions under one virtual clock.

A shard owns a slice of the fleet's sessions and runs them as one
event loop: a heap keyed by each session's next release time picks
whichever session fires next, that session executes exactly one job,
and the loop re-keys it.  This is the serving-system shape — thousands
of independent deadline clocks multiplexed onto one scheduler — and it
bounds the shard's virtual-time skew to one job.

Sessions are computationally independent (each has its own board), so
the interleaving order cannot change any session's results; what the
loop buys is a single monotone fleet timeline per shard (live
dashboards and traces see jobs in virtual-time order) at O(log n)
scheduling cost per job.  :class:`ShardPlan` is a frozen, picklable
value so a coordinator can ship shards to worker processes; results
come back in canonical ``(tenant, session index)`` order regardless of
how the event loop interleaved them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.fleet.session import FleetBuild, Session, SessionResult
from repro.fleet.tenant import TenantSpec
from repro.telemetry.hostprof import (
    HostProfiler,
    ProfileState,
    StackSampler,
)

__all__ = ["ShardPlan", "ShardResult", "plan_shards", "run_shard"]


@dataclass(frozen=True)
class ShardPlan:
    """One shard's share of a fleet, fully self-describing.

    Attributes:
        index: Shard number, 0-based.
        n_shards: Total shards in the fleet (for display only — it
            never enters any seed derivation).
        build: Shared build configuration (root seed, training size).
        tenants: The full tenant roster (specs are small; shipping all
            of them keeps the plan self-contained).
        assignments: ``(tenant name, session index)`` pairs this shard
            runs.
        profile: Host-profile this shard's execution (phase timers +
            stack sampler).  Observational only — it never enters a
            seed path, so the session results are identical either
            way; the profile comes back in
            :attr:`ShardResult.host_profile`.
        energy: Attribute every session's joules with a per-session
            energy ledger (conservation-checked).  Observational like
            ``profile``: no seed path, identical session results, the
            states ride back on each
            :attr:`~repro.fleet.session.SessionResult.energy_state`.
    """

    index: int
    n_shards: int
    build: FleetBuild
    tenants: tuple[TenantSpec, ...]
    assignments: tuple[tuple[str, int], ...]
    profile: bool = False
    energy: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n_shards:
            raise ValueError(
                f"shard index {self.index} outside [0, {self.n_shards})"
            )


@dataclass(frozen=True)
class ShardResult:
    """One shard's outcome: session results in canonical order.

    Attributes:
        index: The shard that produced this.
        sessions: Results sorted by (tenant order in the roster,
            session index) — the order the coordinator merges in.
        jobs_run: Total jobs the shard's event loop executed.
        host_profile: This shard's host profile when the plan asked
            for one (picklable, so it survives the worker-pool trip
            back; the coordinator merges shards' profiles).
    """

    index: int
    sessions: tuple[SessionResult, ...]
    jobs_run: int
    host_profile: ProfileState | None = None


def plan_shards(
    tenants: tuple[TenantSpec, ...],
    n_shards: int,
    build: FleetBuild,
    profile: bool = False,
    energy: bool = False,
) -> tuple[ShardPlan, ...]:
    """Split a fleet round-robin across ``n_shards`` shards.

    Sessions are enumerated in canonical order (roster order, then
    session index) and dealt out one at a time, so shard loads stay
    balanced even when tenants differ wildly in session count.
    """
    if n_shards < 1:
        raise ValueError(f"need >= 1 shard, got {n_shards}")
    roster: list[tuple[str, int]] = [
        (tenant.name, index)
        for tenant in tenants
        for index in range(tenant.sessions)
    ]
    return tuple(
        ShardPlan(
            index=shard,
            n_shards=n_shards,
            build=build,
            tenants=tuple(tenants),
            assignments=tuple(roster[shard::n_shards]),
            profile=profile,
            energy=energy,
        )
        for shard in range(n_shards)
    )


def run_shard(plan: ShardPlan) -> ShardResult:
    """Execute one shard's sessions as a single interleaved event loop.

    Top-level (hence picklable) so a ``multiprocessing`` pool can map
    over plans directly.  With ``plan.profile`` set, the whole shard
    runs under a :class:`HostProfiler` (session construction charged to
    the ``fleet`` phase, per-job phases charged inside the runners) and
    the snapshot rides back on the result.
    """
    hostprof = (
        HostProfiler(sampler=StackSampler()) if plan.profile else None
    )
    by_name = {tenant.name: tenant for tenant in plan.tenants}
    order = {tenant.name: i for i, tenant in enumerate(plan.tenants)}

    def execute() -> tuple[list[Session], int]:
        sessions: list[Session] = []
        if hostprof is not None:
            build_from = hostprof.clock()
        for tenant_name, session_index in plan.assignments:
            if tenant_name not in by_name:
                raise ValueError(
                    f"shard {plan.index} assigned unknown tenant "
                    f"{tenant_name!r}"
                )
            sessions.append(
                Session(
                    by_name[tenant_name],
                    session_index,
                    plan.build,
                    hostprof=hostprof,
                    energy=plan.energy,
                )
            )
        if hostprof is not None:
            hostprof.add("fleet", hostprof.clock() - build_from)

        # The event loop: (next release, tie-break seq) -> session.  One
        # job per pop keeps every session within one job of the shard's
        # clock.
        heap: list[tuple[float, int, int]] = []
        for slot, session in enumerate(sessions):
            arrival = session.next_arrival_s()
            if arrival is not None:
                heapq.heappush(heap, (arrival, slot, slot))
        jobs_run = 0
        while heap:
            _, _, slot = heapq.heappop(heap)
            session = sessions[slot]
            if session.step():
                jobs_run += 1
            arrival = session.next_arrival_s()
            if arrival is not None:
                heapq.heappush(heap, (arrival, slot, slot))
        return sessions, jobs_run

    if hostprof is not None:
        with hostprof.running():
            sessions, jobs_run = execute()
    else:
        sessions, jobs_run = execute()

    results = sorted(
        (session.result() for session in sessions),
        key=lambda r: (order[r.tenant], r.index),
    )
    return ShardResult(
        index=plan.index,
        sessions=tuple(results),
        jobs_run=jobs_run,
        host_profile=hostprof.state() if hostprof is not None else None,
    )
