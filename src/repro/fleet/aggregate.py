"""Fleet roll-up: per-tenant and fleet-wide SLO accounting.

The fleet analogue of the single-run SLO watchdog: every session
carries mergeable :class:`~repro.telemetry.slo.SloTrackerState`
snapshots, and this module folds them — always in canonical
``(roster order, session index)`` order, so the numbers are
bit-identical however the fleet was sharded — into:

- a :class:`TenantRollup` per tenant: merged error budget, multi-window
  burn rates, miss rate, energy, slack tail;
- fleet-wide totals, where the error budget generalizes to
  ``sum(bad) / sum(objective_i * jobs_i)`` (each tenant spends its own
  allowance; the fleet budget is the sum of allowances) and burn rates
  weigh each tenant's window tail against the job-weighted mean
  objective;
- a top-K worst-tenants table ranked by page-severity budget consumed.

The rendered report deliberately excludes shard/worker counts — those
are invocation metadata, printed separately — so a report file is a
determinism witness: byte-equal across partitionings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import reduce

from repro.fleet.session import SessionResult
from repro.fleet.tenant import TenantSpec
from repro.telemetry.energy import EnergyState, merge_energy
from repro.telemetry.metrics import percentile
from repro.telemetry.slo import SloTrackerState, merge_states

__all__ = [
    "SloRollup",
    "TenantRollup",
    "FleetReport",
    "aggregate_fleet",
    "fleet_metrics",
]


def _table(headers: list[str], rows: list[tuple], title: str = "") -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True)
class SloRollup:
    """One SLO spec's merged accounting across a tenant's sessions.

    Attributes:
        spec_name: The spec that was tracked.
        severity: ``"page"`` or ``"ticket"``.
        jobs: Jobs classified across all merged sessions.
        bad: Bad jobs.
        budget_consumed: Fraction of the merged error budget spent.
        burn_rates: Merged burn rate per window, keyed ``"w<jobs>"``.
        window_tails: Per window, ``(bad, observed)`` over the merged
            ring tail — the raw numerator/denominator behind the burn
            rate, which the fleet-wide roll-up re-weighs.
        exceeding: Whether the merged tails violate every window.
        alerts: Alerts fired across the constituent sessions.
    """

    spec_name: str
    severity: str
    jobs: int
    bad: int
    budget_consumed: float
    burn_rates: dict[str, float]
    window_tails: dict[str, tuple[int, int]]
    exceeding: bool
    alerts: int

    @classmethod
    def from_state(cls, state: SloTrackerState, alerts: int) -> "SloRollup":
        return cls(
            spec_name=state.spec.name,
            severity=state.spec.severity,
            jobs=state.jobs,
            bad=state.bad,
            budget_consumed=state.budget_consumed,
            burn_rates=state.burn_rates(),
            window_tails={
                f"w{window.jobs}": (sum(ring), len(ring))
                for window, ring in zip(state.spec.windows, state.rings)
            },
            exceeding=state.exceeding,
            alerts=alerts,
        )

    def as_dict(self) -> dict:
        return {
            "spec_name": self.spec_name,
            "severity": self.severity,
            "jobs": self.jobs,
            "bad": self.bad,
            "budget_consumed": self.budget_consumed,
            "burn_rates": dict(self.burn_rates),
            "window_tails": {
                window: list(tail)
                for window, tail in self.window_tails.items()
            },
            "exceeding": self.exceeding,
            "alerts": self.alerts,
        }


@dataclass(frozen=True)
class TenantRollup:
    """One tenant's merged outcome.

    Attributes:
        name / app / governor: Identity, echoed from the spec.
        sessions: Sessions merged.
        jobs / misses / energy_j / switches: Summed over sessions.
        miss_rate: ``misses / jobs``.
        slack_p50_s / slack_p95_s: Percentiles over every job's slack.
        slo: Merged accounting per spec, in spec order.
        objective: The tenant's page miss objective (budget weighting).
        energy: Merged energy-attribution state (phase/OPP marginals,
            counterfactual), present when the fleet ran with
            attribution on; None otherwise.
    """

    name: str
    app: str
    governor: str
    sessions: int
    jobs: int
    misses: int
    energy_j: float
    switches: int
    miss_rate: float
    slack_p50_s: float
    slack_p95_s: float
    slo: tuple[SloRollup, ...]
    objective: float
    energy: EnergyState | None = None

    @property
    def worst_budget_consumed(self) -> float:
        """Budget consumed on the worst page-severity objective."""
        page = [r.budget_consumed for r in self.slo if r.severity == "page"]
        return max(page) if page else 0.0

    @property
    def page_alerts(self) -> int:
        return sum(r.alerts for r in self.slo if r.severity == "page")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "app": self.app,
            "governor": self.governor,
            "sessions": self.sessions,
            "jobs": self.jobs,
            "misses": self.misses,
            "energy_j": self.energy_j,
            "switches": self.switches,
            "miss_rate": self.miss_rate,
            "slack_p50_s": self.slack_p50_s,
            "slack_p95_s": self.slack_p95_s,
            "objective": self.objective,
            "slo": [r.as_dict() for r in self.slo],
            "energy": None if self.energy is None else self.energy.as_dict(),
        }


@dataclass(frozen=True)
class FleetReport:
    """The fleet-wide roll-up (the ``fleet run`` deliverable).

    Content excludes the partitioning (shards/workers) on purpose:
    byte-equality of two reports proves the runs computed the same
    fleet.

    Attributes:
        seed: Root seed the fleet derived everything from.
        tenants: Per-tenant roll-ups, roster order.
        sessions / jobs / misses / energy_j / switches: Fleet totals.
        miss_rate: Fleet miss fraction.
        slack_p50_s / slack_p95_s: Percentiles over every fleet job.
        budget_consumed: ``sum(bad) / sum(objective_i * jobs_i)`` over
            tenants' page deadline objectives.
        burn_rates: Fleet burn per window: summed window tails over the
            job-weighted mean objective.
        page_alerts / ticket_alerts: Alert totals by severity.
        top_k: Worst tenants by page budget consumed (name order breaks
            ties), at most K entries.
        energy: Fleet-wide merged energy-attribution state (folded from
            the tenant roll-ups in roster order), present only when the
            fleet ran with attribution on.  Conservation holds at this
            level too: its ``total_j`` equals the per-tenant ledgers'
            sum, each of which was checked against its board.
        energy_top_k: Most energy-hungry tenants ranked by attributed
            joules (name order breaks ties), at most K entries; empty
            when attribution was off.
    """

    seed: int
    tenants: tuple[TenantRollup, ...]
    sessions: int
    jobs: int
    misses: int
    energy_j: float
    switches: int
    miss_rate: float
    slack_p50_s: float
    slack_p95_s: float
    budget_consumed: float
    burn_rates: dict[str, float]
    page_alerts: int
    ticket_alerts: int
    top_k: tuple[str, ...]
    energy: EnergyState | None = None
    energy_top_k: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "sessions": self.sessions,
            "jobs": self.jobs,
            "misses": self.misses,
            "energy_j": self.energy_j,
            "switches": self.switches,
            "miss_rate": self.miss_rate,
            "slack_p50_s": self.slack_p50_s,
            "slack_p95_s": self.slack_p95_s,
            "budget_consumed": self.budget_consumed,
            "burn_rates": dict(self.burn_rates),
            "page_alerts": self.page_alerts,
            "ticket_alerts": self.ticket_alerts,
            "top_k": list(self.top_k),
            "energy": None if self.energy is None else self.energy.as_dict(),
            "energy_top_k": list(self.energy_top_k),
            "tenants": [t.as_dict() for t in self.tenants],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def _top_k_rows(self) -> list[tuple]:
        by_name = {t.name: t for t in self.tenants}
        rows = []
        for rank, name in enumerate(self.top_k, start=1):
            t = by_name[name]
            rows.append(
                (
                    rank,
                    name,
                    f"{t.worst_budget_consumed:.3f}",
                    f"{100 * t.miss_rate:.2f}%",
                    t.misses,
                    t.jobs,
                    t.page_alerts,
                )
            )
        return rows

    def _energy_tenant_rows(self) -> list[tuple]:
        by_name = {t.name: t for t in self.tenants}
        rows = []
        for rank, name in enumerate(self.energy_top_k, start=1):
            t = by_name[name]
            state = t.energy
            assert state is not None  # ranked only when attribution ran
            savings = state.savings_frac
            rows.append(
                (
                    rank,
                    name,
                    f"{state.total_j:.3f}",
                    f"{state.j_per_job * 1e3:.3f}",
                    f"{100 * savings:.1f}%" if savings == savings else "-",
                    f"{state.phase_j('execute'):.3f}",
                    f"{state.phase_j('idle'):.3f}",
                )
            )
        return rows

    def _energy_summary(self, sep: str) -> str:
        """One-line fleet energy roll-up, with ``sep`` between fields."""
        state = self.energy
        assert state is not None
        savings = state.savings_frac
        fields = [
            f"attributed {state.total_j:.3f} J",
            f"counterfactual {state.counterfactual_j:.3f} J",
            (
                f"savings {100 * savings:.1f}%"
                if savings == savings
                else "savings -"
            ),
            f"J/job {state.j_per_job * 1e3:.3f} mJ",
            f"overlap {state.overlap_j * 1e3:.3f} mJ",
        ]
        return sep.join(fields)

    def render_text(self) -> str:
        """Plain-text report (the CLI default)."""
        sections = [
            f"fleet report (seed {self.seed}): "
            f"{self.sessions} sessions, {self.jobs} jobs"
        ]
        tenant_rows = [
            (
                t.name,
                t.app,
                t.governor,
                t.sessions,
                t.jobs,
                f"{100 * t.miss_rate:.2f}%",
                f"{t.worst_budget_consumed:.3f}",
                f"{t.energy_j:.3f}",
                t.page_alerts,
            )
            for t in self.tenants
        ]
        sections.append(
            _table(
                ["tenant", "app", "governor", "sessions", "jobs",
                 "miss-rate", "budget", "energy[J]", "alerts"],
                tenant_rows,
                title="tenants (budget = error budget consumed, page severity)",
            )
        )
        burn = "  ".join(
            f"{window}={rate:.2f}x"
            for window, rate in sorted(self.burn_rates.items())
        )
        sections.append(
            "fleet: "
            f"miss-rate {100 * self.miss_rate:.2f}%  "
            f"budget {self.budget_consumed:.3f}  "
            f"burn [{burn}]  "
            f"energy {self.energy_j:.3f} J  "
            f"slack p50/p95 {self.slack_p50_s * 1e3:.2f}/"
            f"{self.slack_p95_s * 1e3:.2f} ms  "
            f"alerts page={self.page_alerts} ticket={self.ticket_alerts}"
        )
        sections.append(
            _table(
                ["#", "tenant", "budget", "miss-rate", "misses", "jobs",
                 "alerts"],
                self._top_k_rows(),
                title=f"top-{len(self.top_k)} worst tenants",
            )
        )
        if self.energy is not None:
            sections.append(
                "energy attribution: " + self._energy_summary("  ")
            )
            sections.append(
                _table(
                    ["#", "tenant", "energy[J]", "J/job[mJ]", "savings",
                     "execute[J]", "idle[J]"],
                    self._energy_tenant_rows(),
                    title=(
                        f"top-{len(self.energy_top_k)} energy-hungry "
                        "tenants (savings vs performance governor)"
                    ),
                )
            )
        return "\n\n".join(sections)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown (the CI artifact format)."""

        def md_table(headers: list[str], rows: list[tuple]) -> str:
            lines = [
                "| " + " | ".join(headers) + " |",
                "|" + "|".join("---" for _ in headers) + "|",
            ]
            for row in rows:
                lines.append(
                    "| " + " | ".join(str(c) for c in row) + " |"
                )
            return "\n".join(lines)

        tenant_rows = [
            (
                t.name,
                t.app,
                t.governor,
                t.sessions,
                t.jobs,
                f"{100 * t.miss_rate:.2f}%",
                f"{t.worst_budget_consumed:.3f}",
                f"{t.energy_j:.3f}",
                t.page_alerts,
            )
            for t in self.tenants
        ]
        burn = ", ".join(
            f"{window}: {rate:.2f}x"
            for window, rate in sorted(self.burn_rates.items())
        )
        parts = [
            f"# Fleet report (seed {self.seed})",
            f"- sessions: {self.sessions}",
            f"- jobs: {self.jobs}",
            f"- miss rate: {100 * self.miss_rate:.2f}%",
            f"- error budget consumed: {self.budget_consumed:.3f}",
            f"- burn rates: {burn}",
            f"- energy: {self.energy_j:.3f} J",
            f"- alerts: {self.page_alerts} page, "
            f"{self.ticket_alerts} ticket",
            "",
            "## Tenants",
            md_table(
                ["tenant", "app", "governor", "sessions", "jobs",
                 "miss rate", "budget", "energy [J]", "page alerts"],
                tenant_rows,
            ),
            "",
            f"## Top-{len(self.top_k)} worst tenants",
            md_table(
                ["#", "tenant", "budget", "miss rate", "misses", "jobs",
                 "page alerts"],
                self._top_k_rows(),
            ),
        ]
        if self.energy is not None:
            parts.extend(
                [
                    "",
                    "## Energy attribution",
                    "- " + self._energy_summary("\n- "),
                    "",
                    (
                        f"### Top-{len(self.energy_top_k)} energy-hungry "
                        "tenants"
                    ),
                    md_table(
                        ["#", "tenant", "energy [J]", "J/job [mJ]",
                         "savings", "execute [J]", "idle [J]"],
                        self._energy_tenant_rows(),
                    ),
                ]
            )
        return "\n".join(parts)


def _merge_tenant(
    tenant: TenantSpec, results: list[SessionResult]
) -> TenantRollup:
    """Fold one tenant's session results (already in canonical order)."""
    if not results:
        raise ValueError(f"tenant {tenant.name!r} produced no sessions")
    n_specs = len(results[0].slo_states)
    merged_states = [
        reduce(merge_states, (r.slo_states[i] for r in results))
        for i in range(n_specs)
    ]
    slacks = [s for r in results for s in r.slacks_s]
    jobs = sum(r.jobs for r in results)
    misses = sum(r.misses for r in results)
    energy = None
    if all(r.energy_state is not None for r in results):
        # Canonical (session index) fold order keeps the float sums
        # bit-identical for every shard partitioning.
        energy = reduce(merge_energy, (r.energy_state for r in results))
    return TenantRollup(
        name=tenant.name,
        app=tenant.app,
        governor=tenant.governor,
        sessions=len(results),
        jobs=jobs,
        misses=misses,
        energy_j=sum(r.energy_j for r in results),
        switches=sum(r.switches for r in results),
        miss_rate=misses / jobs if jobs else 0.0,
        slack_p50_s=percentile(slacks, 50) if slacks else float("nan"),
        slack_p95_s=percentile(slacks, 95) if slacks else float("nan"),
        slo=tuple(
            SloRollup.from_state(state, alerts=len(state.alerts))
            for state in merged_states
        ),
        objective=tenant.miss_objective,
        energy=energy,
    )


def aggregate_fleet(
    tenants: tuple[TenantSpec, ...],
    results: list[SessionResult] | tuple[SessionResult, ...],
    seed: int,
    top_k: int = 5,
) -> FleetReport:
    """Roll session results up into a :class:`FleetReport`.

    Results may arrive in any order (shards finish when they finish);
    they are re-sorted into canonical ``(roster order, session index)``
    order first, so the folded floating-point sums — and therefore the
    rendered report — are identical for every partitioning.
    """
    order = {tenant.name: i for i, tenant in enumerate(tenants)}
    unknown = {r.tenant for r in results} - set(order)
    if unknown:
        raise ValueError(f"results reference unknown tenants {sorted(unknown)}")
    canonical = sorted(results, key=lambda r: (order[r.tenant], r.index))

    rollups = []
    for tenant in tenants:
        mine = [r for r in canonical if r.tenant == tenant.name]
        rollups.append(_merge_tenant(tenant, mine))

    jobs = sum(t.jobs for t in rollups)
    misses = sum(t.misses for t in rollups)
    slacks = [s for r in canonical for s in r.slacks_s]

    # Fleet error budget: each tenant's allowance is objective_i * jobs_i
    # bad jobs; the fleet-wide budget is the sum of allowances, spent by
    # the sum of page-objective violations.
    allowance = sum(t.objective * t.jobs for t in rollups)
    page_bad = 0
    # Fleet burn per window: pool every tenant's page-severity window
    # tail and weigh the pooled bad fraction against the job-weighted
    # mean objective (each tenant contributes its own allowance).
    ring_bad: dict[str, int] = {}
    ring_len: dict[str, int] = {}
    for rollup in rollups:
        for slo in rollup.slo:
            if slo.severity != "page":
                continue
            page_bad += slo.bad
            for window, (bad, observed) in slo.window_tails.items():
                ring_bad[window] = ring_bad.get(window, 0) + bad
                ring_len[window] = ring_len.get(window, 0) + observed
    mean_objective = allowance / jobs if jobs else 1.0
    burn_rates = {
        window: (
            (ring_bad[window] / ring_len[window]) / mean_objective
            if ring_len[window]
            else 0.0
        )
        for window in sorted(ring_bad)
    }

    ranked = sorted(
        rollups,
        key=lambda t: (-t.worst_budget_consumed, -t.misses, t.name),
    )

    fleet_energy = None
    energy_top_k: tuple[str, ...] = ()
    if all(t.energy is not None for t in rollups):
        # Roster-order fold mirrors the per-tenant session fold, so the
        # fleet state is the same bytes however the fleet was sharded.
        fleet_energy = reduce(merge_energy, (t.energy for t in rollups))
        hungry = sorted(
            rollups, key=lambda t: (-t.energy.total_j, t.name)
        )
        energy_top_k = tuple(t.name for t in hungry[: max(top_k, 0)])
    return FleetReport(
        seed=seed,
        tenants=tuple(rollups),
        sessions=sum(t.sessions for t in rollups),
        jobs=jobs,
        misses=misses,
        energy_j=sum(t.energy_j for t in rollups),
        switches=sum(t.switches for t in rollups),
        miss_rate=misses / jobs if jobs else 0.0,
        slack_p50_s=percentile(slacks, 50) if slacks else float("nan"),
        slack_p95_s=percentile(slacks, 95) if slacks else float("nan"),
        budget_consumed=page_bad / allowance if allowance else 0.0,
        burn_rates=burn_rates,
        page_alerts=sum(t.page_alerts for t in rollups),
        ticket_alerts=sum(
            slo.alerts
            for t in rollups
            for slo in t.slo
            if slo.severity == "ticket"
        ),
        top_k=tuple(t.name for t in ranked[: max(top_k, 0)]),
        energy=fleet_energy,
        energy_top_k=energy_top_k,
    )


def fleet_metrics(report: FleetReport) -> dict:
    """The report as a metrics-registry dump (``*.metrics.json`` shape).

    Written as ``fleet.<name>.metrics.json`` into a trace directory so
    the existing ``repro report --gate`` flow can hold fleet summaries
    to a committed baseline.  Names are chosen for
    :func:`repro.telemetry.report.metric_direction`: ``fleet.misses`` /
    ``fleet.*_alerts`` / ``fleet.energy_j`` gate lower-is-better,
    ``fleet.slack_*`` higher-is-better, counts gate as neutral drift.
    With attribution on, the attributed roll-up additionally exports
    ``fleet.energy_attributed_j`` / ``fleet.energy_j_per_job``
    (lower-is-better) and ``fleet.energy_savings_frac``
    (higher-is-better — "savings" outranks "energy" in the direction
    table).
    """
    gauges = {
        "fleet.energy_j": report.energy_j,
        "fleet.miss_rate": report.miss_rate,
        "fleet.budget_consumed": report.budget_consumed,
        "fleet.slack_p50_s": report.slack_p50_s,
        "fleet.slack_p95_s": report.slack_p95_s,
    }
    if report.energy is not None:
        state = report.energy
        gauges["fleet.energy_attributed_j"] = state.total_j
        gauges["fleet.energy_counterfactual_j"] = state.counterfactual_j
        if state.jobs:
            gauges["fleet.energy_j_per_job"] = state.j_per_job
        savings = state.savings_frac
        if savings == savings:
            gauges["fleet.energy_savings_frac"] = savings
    return {
        "counters": {
            "fleet.sessions": report.sessions,
            "fleet.jobs": report.jobs,
            "fleet.misses": report.misses,
            "fleet.switches": report.switches,
            "fleet.page_alerts": report.page_alerts,
            "fleet.ticket_alerts": report.ticket_alerts,
        },
        "gauges": gauges,
        "histograms": {},
    }
