"""Tenant specs: the service classes a fleet is made of.

A tenant is a population of identical sessions — same workload, same
governor, same deadline budget, same traffic shape, same objective.
The spec is a frozen declaration that round-trips through JSON, so a
committed fleet file fully determines a simulation (together with the
root seed); everything runtime-ish (boards, governors, trackers) is
built per session from the spec by :mod:`repro.fleet.session`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.fleet.arrivals import (
    ArrivalProcess,
    PeriodicArrivals,
    arrival_from_dict,
)

__all__ = ["TenantSpec", "tenants_to_json", "tenants_from_json"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service class.

    Attributes:
        name: Stable identifier (keys seeds, roll-ups, reports).
        app: Workload name from the registry (``repro list``).
        governor: Governor name (:data:`repro.analysis.harness.GOVERNOR_NAMES`).
        sessions: How many sessions of this tenant the fleet runs.
        jobs_per_session: Jobs in each session's stream.
        budget_scale: Deadline budget as a multiple of the app default
            (0.8 = a tenant that bought a tighter SLO).
        arrival: The release process shaping this tenant's traffic.
        miss_objective: Allowed deadline-miss fraction for the tenant's
            page-severity SLO.
        jitter_sigma: Timing-noise level for this tenant's sessions.
        drift_factor: Optional mid-session execution-time slowdown
            (> 1 engages :class:`repro.online.inject.StepDriftJitter`).
        drift_at_frac: Where the drift step lands, as a fraction of the
            session's nominal length.
    """

    name: str
    app: str
    governor: str = "prediction"
    sessions: int = 1
    jobs_per_session: int = 40
    budget_scale: float = 1.0
    arrival: ArrivalProcess = field(default_factory=PeriodicArrivals)
    miss_objective: float = 0.02
    jitter_sigma: float = 0.02
    drift_factor: float | None = None
    drift_at_frac: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a non-empty name")
        if self.sessions < 1:
            raise ValueError(
                f"tenant {self.name!r} needs >= 1 session, got {self.sessions}"
            )
        if self.jobs_per_session < 1:
            raise ValueError(
                f"tenant {self.name!r} needs >= 1 job per session, "
                f"got {self.jobs_per_session}"
            )
        if self.budget_scale <= 0:
            raise ValueError(
                f"budget_scale must be positive, got {self.budget_scale}"
            )
        if not 0.0 < self.miss_objective < 1.0:
            raise ValueError(
                f"miss_objective must be in (0, 1), got {self.miss_objective}"
            )
        if self.jitter_sigma < 0:
            raise ValueError(
                f"jitter_sigma must be non-negative, got {self.jitter_sigma}"
            )
        if self.drift_factor is not None and self.drift_factor <= 0:
            raise ValueError(
                f"drift_factor must be positive, got {self.drift_factor}"
            )
        if not 0.0 < self.drift_at_frac < 1.0:
            raise ValueError(
                f"drift_at_frac must be inside (0, 1), got {self.drift_at_frac}"
            )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "app": self.app,
            "governor": self.governor,
            "sessions": self.sessions,
            "jobs_per_session": self.jobs_per_session,
            "budget_scale": self.budget_scale,
            "arrival": self.arrival.as_dict(),
            "miss_objective": self.miss_objective,
            "jitter_sigma": self.jitter_sigma,
            "drift_factor": self.drift_factor,
            "drift_at_frac": self.drift_at_frac,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        return cls(
            name=str(data["name"]),
            app=str(data["app"]),
            governor=str(data.get("governor", "prediction")),
            sessions=int(data.get("sessions", 1)),
            jobs_per_session=int(data.get("jobs_per_session", 40)),
            budget_scale=float(data.get("budget_scale", 1.0)),
            arrival=(
                arrival_from_dict(data["arrival"])
                if "arrival" in data
                else PeriodicArrivals()
            ),
            miss_objective=float(data.get("miss_objective", 0.02)),
            jitter_sigma=float(data.get("jitter_sigma", 0.02)),
            drift_factor=(
                None
                if data.get("drift_factor") is None
                else float(data["drift_factor"])
            ),
            drift_at_frac=float(data.get("drift_at_frac", 0.5)),
        )


def tenants_to_json(tenants: tuple[TenantSpec, ...] | list[TenantSpec]) -> str:
    """Serialize a tenant roster (the ``fleet run --spec FILE`` format)."""
    return json.dumps([t.as_dict() for t in tenants], indent=2)


def tenants_from_json(text: str) -> tuple[TenantSpec, ...]:
    """Parse a roster written by :func:`tenants_to_json`."""
    data = json.loads(text)
    if not isinstance(data, list) or not data:
        raise ValueError("fleet spec must be a non-empty JSON array of tenants")
    tenants = tuple(TenantSpec.from_dict(item) for item in data)
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    return tenants
