"""Timing-noise models.

Real job execution times vary even with identical inputs (cache state,
TLB state, OS interference).  The paper handles this with a 10% safety
margin on predicted times (§3.4).  The reproduction calibration notes that
timing jitter is the main threat to governor fidelity, so jitter is a
first-class, seeded, injectable component rather than an afterthought.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

__all__ = ["JitterModel", "NoJitter", "LogNormalJitter"]


class JitterModel(ABC):
    """Produces multiplicative noise factors applied to execution times."""

    @abstractmethod
    def sample(self) -> float:
        """Return a positive multiplicative factor (median ~1.0)."""

    @abstractmethod
    def clone(self, seed: int) -> "JitterModel":
        """Return a fresh model of the same shape with a new seed."""


class NoJitter(JitterModel):
    """Deterministic timing: every sample is exactly 1.0."""

    def sample(self) -> float:
        return 1.0

    def clone(self, seed: int) -> "NoJitter":
        return NoJitter()


class LogNormalJitter(JitterModel):
    """Log-normal multiplicative jitter with median 1.0.

    A log-normal keeps factors strictly positive and produces the mild
    right skew seen in real job-time distributions (occasional slow jobs
    from cache pollution or an OS tick, never a negative-time job).

    Attributes:
        sigma: Standard deviation of ``ln(factor)``.  ``sigma = 0.02``
            gives ~2% typical deviation; the 95th percentile factor is
            ``exp(1.645 * sigma)``.
        max_factor: Hard cap so a pathological draw cannot dominate a
            simulation (mirrors the paper's exclusion of rare outliers).
    """

    def __init__(self, sigma: float, seed: int = 0, max_factor: float = 1.5):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if max_factor < 1.0:
            raise ValueError(f"max_factor must be >= 1, got {max_factor}")
        self.sigma = sigma
        self.max_factor = max_factor
        self._seed = seed
        self._rng = random.Random(seed)

    def sample(self) -> float:
        if self.sigma == 0:
            return 1.0
        factor = math.exp(self._rng.gauss(0.0, self.sigma))
        return min(max(factor, 1.0 / self.max_factor), self.max_factor)

    def clone(self, seed: int) -> "LogNormalJitter":
        return LogNormalJitter(self.sigma, seed=seed, max_factor=self.max_factor)

    def __repr__(self) -> str:
        return f"LogNormalJitter(sigma={self.sigma}, seed={self._seed})"
