"""Heterogeneous (big.LITTLE) operating settings — paper §3.5 extension.

The paper notes its last pipeline stage "could be substituted to support
other performance-energy trade-off mechanisms, such as heterogeneous
cores".  The evaluation platform (Exynos 5422) is in fact big.LITTLE:
a power-efficient Cortex-A7 cluster next to a fast, power-hungry
Cortex-A15 cluster.

This module merges both clusters' DVFS levels into one ladder of
*operating settings* ordered by **effective frequency** — the real clock
times the cluster's instructions-per-cycle factor — so the unmodified
DVFS model (``t = T_mem + N_dep / f_eff``) and every existing governor
work across clusters.  Non-Pareto settings (slower AND hungrier than an
alternative) are pruned, exactly like an energy-aware scheduler's
capacity table, so "lowest feasible effective frequency" remains
"lowest feasible power".  Switching across clusters pays an extra
migration cost (cache warm-up and task hand-off).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.opp import OperatingPoint, OppTable
from repro.platform.power import PowerModel
from repro.platform.switching import SwitchLatencyModel

__all__ = [
    "ClusterSpec",
    "ClusterOperatingPoint",
    "HeterogeneousPowerModel",
    "MigrationAwareSwitchModel",
    "LITTLE_A7",
    "BIG_A15",
    "build_biglittle_platform",
]


@dataclass(frozen=True)
class ClusterSpec:
    """Physics of one core cluster.

    Attributes:
        name: Cluster label ("A7", "A15").
        perf_factor: Throughput relative to the little cluster at equal
            clock (the A15's wide out-of-order pipeline retires ~1.9x
            the A7's instructions per cycle on these workloads).
        c_eff_farads: Effective switched capacitance.
        i_leak_amps: Leakage current.
        freq_range_mhz: (min, max, step) of the real clock.
        voltage_range_v: (v_at_min, v_at_max), linear in frequency.
    """

    name: str
    perf_factor: float
    c_eff_farads: float
    i_leak_amps: float
    freq_range_mhz: tuple[int, int, int]
    voltage_range_v: tuple[float, float]

    def points(self) -> list["ClusterOperatingPoint"]:
        """This cluster's settings (indices assigned later by the table)."""
        lo, hi, step = self.freq_range_mhz
        v_lo, v_hi = self.voltage_range_v
        out = []
        for mhz in range(lo, hi + 1, step):
            frac = (mhz - lo) / max(hi - lo, 1)
            out.append(
                ClusterOperatingPoint(
                    index=-1,  # placeholder; set when the ladder is built
                    freq_hz=mhz * 1e6 * self.perf_factor,
                    voltage_v=v_lo + (v_hi - v_lo) * frac,
                    cluster=self.name,
                    real_freq_hz=mhz * 1e6,
                    c_eff_farads=self.c_eff_farads,
                    i_leak_amps=self.i_leak_amps,
                )
            )
        return out


@dataclass(frozen=True, order=True)
class ClusterOperatingPoint(OperatingPoint):
    """An operating setting: a cluster plus a real clock frequency.

    ``freq_hz`` (inherited) is the EFFECTIVE frequency — real clock x
    perf factor — which is what the timing model consumes.  The physical
    fields live alongside for the power model.
    """

    cluster: str = ""
    real_freq_hz: float = 0.0
    c_eff_farads: float = 0.0
    i_leak_amps: float = 0.0

    def __str__(self) -> str:
        return (
            f"{self.cluster}@{self.real_freq_hz / 1e6:.0f}MHz"
            f"(eff {self.freq_mhz:.0f})"
        )


#: The Exynos 5422's LITTLE cluster (matches the homogeneous default).
LITTLE_A7 = ClusterSpec(
    name="A7",
    perf_factor=1.0,
    c_eff_farads=3.0e-10,
    i_leak_amps=0.05,
    freq_range_mhz=(200, 1400, 100),
    voltage_range_v=(0.90, 1.25),
)

#: The big cluster: ~1.9x throughput per MHz, ~4x the capacitance.
BIG_A15 = ClusterSpec(
    name="A15",
    perf_factor=1.9,
    c_eff_farads=1.2e-9,
    i_leak_amps=0.18,
    freq_range_mhz=(800, 2000, 100),
    voltage_range_v=(0.95, 1.30),
)


class HeterogeneousPowerModel(PowerModel):
    """Power model that honours per-setting cluster physics.

    Falls back to the base constants for plain operating points, so a
    heterogeneous board remains compatible with homogeneous tables.
    """

    def dynamic_power(self, opp: OperatingPoint, activity: float = 1.0) -> float:
        if not 0 <= activity <= 1:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        if isinstance(opp, ClusterOperatingPoint):
            return (
                opp.c_eff_farads
                * opp.voltage_v**2
                * opp.real_freq_hz
                * activity
            )
        return super().dynamic_power(opp, activity)

    def leakage_power(self, opp: OperatingPoint) -> float:
        if isinstance(opp, ClusterOperatingPoint):
            return opp.i_leak_amps * opp.voltage_v
        return super().leakage_power(opp)


class MigrationAwareSwitchModel(SwitchLatencyModel):
    """DVFS switch latency plus a cross-cluster migration penalty.

    Moving the task between clusters costs extra: the scheduler hand-off
    plus refilling cold caches on the destination core.
    """

    def __init__(self, *args, migration_s: float = 2.0e-3, **kwargs):
        super().__init__(*args, **kwargs)
        if migration_s < 0:
            raise ValueError("migration_s must be non-negative")
        self.migration_s = migration_s

    def nominal_s(self, start: OperatingPoint, end: OperatingPoint) -> float:
        base = super().nominal_s(start, end)
        start_cluster = getattr(start, "cluster", None)
        end_cluster = getattr(end, "cluster", None)
        if start_cluster != end_cluster:
            return base + self.migration_s
        return base


def build_biglittle_platform(
    little: ClusterSpec = LITTLE_A7,
    big: ClusterSpec = BIG_A15,
    switch_seed: int = 0,
) -> tuple[OppTable, HeterogeneousPowerModel, MigrationAwareSwitchModel]:
    """Merged Pareto ladder plus matching power and switch models.

    Candidate settings from both clusters are ordered by effective
    frequency; a setting survives only if nothing at or above its
    effective frequency draws less full-activity power (Pareto pruning).
    The result keeps the invariant every governor relies on: walking the
    ladder upward trades energy for speed.
    """
    power = HeterogeneousPowerModel(
        c_eff_farads=little.c_eff_farads, i_leak_amps=little.i_leak_amps
    )
    candidates = little.points() + big.points()
    candidates.sort(key=lambda p: p.freq_hz)

    def full_power(point: ClusterOperatingPoint) -> float:
        return (
            point.c_eff_farads * point.voltage_v**2 * point.real_freq_hz
            + point.i_leak_amps * point.voltage_v
        )

    pareto: list[ClusterOperatingPoint] = []
    # Walk from the fastest down; keep a setting only if it is cheaper
    # than everything faster than it.
    cheapest_so_far = float("inf")
    for point in reversed(candidates):
        p = full_power(point)
        if p < cheapest_so_far:
            pareto.append(point)
            cheapest_so_far = p
    pareto.reverse()

    points = [
        ClusterOperatingPoint(
            index=i,
            freq_hz=p.freq_hz,
            voltage_v=p.voltage_v,
            cluster=p.cluster,
            real_freq_hz=p.real_freq_hz,
            c_eff_farads=p.c_eff_farads,
            i_leak_amps=p.i_leak_amps,
        )
        for i, p in enumerate(pareto)
    ]
    table = OppTable(points, require_monotone_voltage=False)
    switcher = MigrationAwareSwitchModel(table, seed=switch_seed)
    return table, power, switcher
