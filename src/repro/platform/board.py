"""The Board: a stateful facade over the platform substrate.

A :class:`Board` owns a virtual clock, a current operating point, a power
timeline, and models for execution time, power, and DVFS switching.  The
runtime executor drives it with four primitives:

- :meth:`execute` — run Work at the current operating point;
- :meth:`set_frequency` — perform a DVFS switch (costs time and energy);
- :meth:`idle_until` — clock-gated wait until an absolute time;
- :meth:`busy_run` — run for a fixed duration (used for prediction slices).
"""

from __future__ import annotations

from repro.platform.clock import VirtualClock
from repro.platform.cpu import SimulatedCpu, Work
from repro.platform.jitter import JitterModel, NoJitter
from repro.platform.opp import OperatingPoint, OppTable, default_xu3_a7_table
from repro.platform.power import PowerModel, default_a7_power_model
from repro.platform.sensor import PowerSegment, Timeline
from repro.platform.switching import SwitchLatencyModel

__all__ = ["Board"]


class Board:
    """Simulated development board (the ODROID-XU3 stand-in).

    Attributes:
        opps: Available DVFS operating points.
        cpu: Execution-time model (with jitter).
        power: Power model.
        switcher: DVFS switch latency model.
        timeline: Power history; energy accounting reads from here.
    """

    def __init__(
        self,
        opps: OppTable | None = None,
        power: PowerModel | None = None,
        switcher: SwitchLatencyModel | None = None,
        jitter: JitterModel | None = None,
        initial_opp: OperatingPoint | None = None,
    ):
        self.opps = opps if opps is not None else default_xu3_a7_table()
        self.power = power if power is not None else default_a7_power_model()
        self.switcher = (
            switcher
            if switcher is not None
            else SwitchLatencyModel(self.opps)
        )
        if self.switcher.opps is not self.opps and len(self.switcher.opps) != len(
            self.opps
        ):
            raise ValueError("switch model built for a different OPP table")
        self.cpu = SimulatedCpu(jitter if jitter is not None else NoJitter())
        self.clock = VirtualClock()
        self.timeline = Timeline()
        self._opp = initial_opp if initial_opp is not None else self.opps.fmax
        self.switch_count = 0
        self._observer = None

    def set_segment_observer(self, observer) -> None:
        """Attach a callback invoked for every appended power segment.

        The observer is called as ``observer(segment, opp_index)`` right
        after the segment lands on the timeline, where ``opp_index`` is
        the operating point the energy attributes to — the level the
        segment ran at, or, for a DVFS switch (whose power is the mean
        across the transition), the *destination* level.  This is the
        attribution hook the energy ledger subscribes to; it must not
        mutate the board.  Pass ``None`` to detach.
        """
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self.clock.now

    @property
    def current_opp(self) -> OperatingPoint:
        """The operating point the cluster is currently running at."""
        return self._opp

    def _record(self, duration_s: float, activity: float, tag: str) -> None:
        start = self.clock.now
        end = self.clock.advance(duration_s)
        segment = PowerSegment(
            start, end, self.power.power(self._opp, activity), tag
        )
        self.timeline.append(segment)
        if self._observer is not None:
            self._observer(segment, self._opp.index)

    def execute(self, work: Work, tag: str = "job") -> float:
        """Run ``work`` to completion at the current OPP; returns seconds."""
        duration = self.cpu.execution_time(work, self._opp)
        if duration > 0:
            self._record(duration, activity=1.0, tag=tag)
        return duration

    def busy_run(self, duration_s: float, tag: str) -> float:
        """Run fully active for a fixed duration (e.g. a prediction slice)."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        if duration_s > 0:
            self._record(duration_s, activity=1.0, tag=tag)
        return duration_s

    def set_frequency(self, target: OperatingPoint, tag: str = "switch") -> float:
        """Switch to ``target``; returns the switch latency in seconds.

        During the regulator settle the cluster is stalled but still
        powered; we charge the mean of the old and new power levels, which
        matches the monotone V(t) ramp to first order.
        """
        if target.index == self._opp.index:
            return 0.0
        latency = self.switcher.sample_s(self._opp, target)
        start_power = self.power.power(self._opp, activity=0.3)
        end_power = self.power.power(target, activity=0.3)
        start = self.clock.now
        end = self.clock.advance(latency)
        segment = PowerSegment(
            start, end, (start_power + end_power) / 2.0, tag
        )
        self.timeline.append(segment)
        if self._observer is not None:
            # A switch spans two levels; attribute it to the destination
            # (the level the energy was spent getting to).
            self._observer(segment, target.index)
        self._opp = target
        self.switch_count += 1
        return latency

    def set_frequency_free(self, target: OperatingPoint) -> None:
        """Switch instantaneously at zero energy cost.

        Models the idealized fast-switching circuits of the paper's §5.3
        limit study (Fig. 18): the level changes but neither time nor
        energy is charged, and the switch counter is not incremented.
        """
        self._opp = target

    def idle_until(self, time_s: float, tag: str = "idle") -> float:
        """Clock-gated wait until absolute time ``time_s``; returns the wait.

        No-op (returns 0) if ``time_s`` is already in the past.
        """
        if time_s <= self.clock.now:
            return 0.0
        duration = time_s - self.clock.now
        self._record(duration, activity=self.power.idle_activity, tag=tag)
        return duration

    def energy_j(self, tag: str | None = None) -> float:
        """Exact energy consumed so far (optionally for a single tag)."""
        return self.timeline.total_energy_j(tag)
