"""Power timeline and the sampled on-board power sensor.

The simulation records every interval of activity as a
:class:`PowerSegment` on a :class:`Timeline`.  Exact energy is the integral
of power over the segments.  The ODROID-XU3 measures power with INA231
sensors sampled at ~213 Hz and integrates over time (paper §5.1);
:class:`PowerSensor` reproduces that discrete sampling so the reproduction
can quantify sensor-quantization error against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerSegment", "Timeline", "PowerSensor"]


@dataclass(frozen=True)
class PowerSegment:
    """A half-open interval ``[start_s, end_s)`` of constant power draw.

    Attributes:
        start_s: Segment start time (seconds).
        end_s: Segment end time (seconds); must be >= start.
        power_w: Constant power over the interval, watts.
        tag: What the platform was doing ("job", "switch", "idle", ...).
    """

    start_s: float
    end_s: float
    power_w: float
    tag: str = ""

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(
                f"segment ends before it starts: [{self.start_s}, {self.end_s})"
            )
        if self.power_w < 0:
            raise ValueError(f"negative power {self.power_w} W")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        return self.power_w * self.duration_s


class Timeline:
    """An append-only, time-ordered record of power segments.

    Energy and time totals are maintained as running accumulators
    updated on :meth:`append`, so :meth:`total_energy_j` is O(1)
    instead of O(segments) — callers (the executor's per-job metrics,
    the SLO watchdog, decision audits) read the total once per job,
    which used to make a run quadratic in its segment count.  The
    accumulators fold segment energies in append order starting from
    0.0, exactly the fold ``sum()`` over the segment list performs, so
    the totals are bit-identical to recomputing them.
    """

    def __init__(self):
        self._segments: list[PowerSegment] = []
        self._energy_by_tag: dict[str, float] = {}
        self._time_by_tag: dict[str, float] = {}
        self._total_energy_j = 0.0
        self._total_time_s = 0.0

    def append(self, segment: PowerSegment) -> None:
        """Add a segment; must start exactly where the previous one ended."""
        if self._segments and segment.start_s < self._segments[-1].end_s:
            raise ValueError(
                f"segment starting at {segment.start_s} overlaps previous "
                f"segment ending at {self._segments[-1].end_s}"
            )
        self._segments.append(segment)
        energy = segment.energy_j
        duration = segment.duration_s
        tag = segment.tag
        self._energy_by_tag[tag] = self._energy_by_tag.get(tag, 0.0) + energy
        self._time_by_tag[tag] = self._time_by_tag.get(tag, 0.0) + duration
        self._total_energy_j += energy
        self._total_time_s += duration

    @property
    def segments(self) -> tuple[PowerSegment, ...]:
        return tuple(self._segments)

    @property
    def end_s(self) -> float:
        """Time at which the last segment ends (0 when empty)."""
        return self._segments[-1].end_s if self._segments else 0.0

    def tags(self) -> tuple[str, ...]:
        """Every distinct tag recorded so far, in first-seen order."""
        return tuple(self._energy_by_tag)

    def energy_by_tag(self) -> dict[str, float]:
        """Exact energy per tag; values sum to :meth:`total_energy_j`."""
        return dict(self._energy_by_tag)

    def total_energy_j(self, tag: str | None = None) -> float:
        """Exact energy integral; restricted to one tag if given."""
        if tag is None:
            return self._total_energy_j
        return self._energy_by_tag.get(tag, 0.0)

    def total_time_s(self, tag: str | None = None) -> float:
        """Total duration covered by segments (optionally one tag)."""
        if tag is None:
            return self._total_time_s
        return self._time_by_tag.get(tag, 0.0)

    def power_at(self, t_s: float) -> float:
        """Instantaneous power at time ``t_s`` (0 outside all segments)."""
        for segment in self._segments:
            if segment.start_s <= t_s < segment.end_s:
                return segment.power_w
        return 0.0


class PowerSensor:
    """A discrete-sampling power meter (INA231-like).

    Samples instantaneous power at a fixed rate and integrates with the
    rectangle rule — exactly what the paper's measurement setup does at
    213 samples/second.  Sampling error vanishes as the rate grows, which
    the test suite verifies.
    """

    def __init__(self, sample_hz: float = 213.0):
        if sample_hz <= 0:
            raise ValueError(f"sample rate must be positive, got {sample_hz}")
        self.sample_hz = sample_hz

    def sample_powers(self, timeline: Timeline) -> list[tuple[float, float]]:
        """(time, power) samples covering the whole timeline."""
        period = 1.0 / self.sample_hz
        end = timeline.end_s
        # Integer sample index avoids float accumulation drift in the count.
        count = int(end * self.sample_hz - 1e-9) + 1 if end > 0 else 0
        return [
            (i * period, timeline.power_at(i * period)) for i in range(count)
        ]

    def measure_energy_j(self, timeline: Timeline) -> float:
        """Energy estimated from discrete samples (joules)."""
        period = 1.0 / self.sample_hz
        return sum(p * period for _, p in self.sample_powers(timeline))
