"""Simulated hardware platform substrate.

The paper evaluates on an ODROID-XU3 development board (Samsung Exynos 5422,
Cortex-A7 cluster).  This package provides a faithful software stand-in:

- :mod:`repro.platform.opp` — discrete operating points (frequency/voltage).
- :mod:`repro.platform.power` — CMOS dynamic + leakage power model.
- :mod:`repro.platform.switching` — DVFS switch latency model and the
  microbenchmark that produces the 95th-percentile switch-time table (Fig. 11).
- :mod:`repro.platform.sensor` — on-board power sensor (INA231-like, 213 Hz).
- :mod:`repro.platform.cpu` — execution-time model ``t = T_mem + N_dep / f``.
- :mod:`repro.platform.jitter` — seeded timing-noise models.
- :mod:`repro.platform.board` — the stateful facade tying it all together.
"""

from repro.platform.biglittle import (
    BIG_A15,
    LITTLE_A7,
    ClusterOperatingPoint,
    ClusterSpec,
    HeterogeneousPowerModel,
    MigrationAwareSwitchModel,
    build_biglittle_platform,
)
from repro.platform.board import Board
from repro.platform.clock import VirtualClock
from repro.platform.cpu import SimulatedCpu, Work
from repro.platform.jitter import JitterModel, LogNormalJitter, NoJitter
from repro.platform.opp import (
    OperatingPoint,
    OppTable,
    default_xu3_a7_table,
    default_xu3_a15_table,
)
from repro.platform.power import (
    PowerModel,
    default_a7_power_model,
    default_a15_power_model,
)
from repro.platform.sensor import PowerSegment, PowerSensor, Timeline
from repro.platform.switching import SwitchLatencyModel, SwitchTimeTable

__all__ = [
    "BIG_A15",
    "LITTLE_A7",
    "ClusterOperatingPoint",
    "ClusterSpec",
    "HeterogeneousPowerModel",
    "MigrationAwareSwitchModel",
    "build_biglittle_platform",
    "Board",
    "VirtualClock",
    "SimulatedCpu",
    "Work",
    "JitterModel",
    "LogNormalJitter",
    "NoJitter",
    "OperatingPoint",
    "OppTable",
    "default_xu3_a7_table",
    "default_xu3_a15_table",
    "PowerModel",
    "default_a7_power_model",
    "default_a15_power_model",
    "PowerSegment",
    "PowerSensor",
    "Timeline",
    "SwitchLatencyModel",
    "SwitchTimeTable",
]
