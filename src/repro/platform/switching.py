"""DVFS switch latency model and microbenchmark.

Changing DVFS level is not free: the voltage regulator must slew to the new
voltage and the kernel cpufreq path adds overhead.  The paper measures this
with a microbenchmark and uses the **95th-percentile** switch time per
(start, end) frequency pair when budgeting (Fig. 11), "to be conservative
... while omitting rare outliers".

The model here produces latencies with the same structure as Fig. 11:

- zero for a no-op switch (same level);
- a fixed kernel/PLL overhead for any real switch;
- a regulator-settle term proportional to the voltage delta
  (bigger swings between the table corners take the longest);
- long-tailed multiplicative noise, so the 95th percentile is meaningfully
  above the median, as on the real board.
"""

from __future__ import annotations

import math
import random

from repro.platform.opp import OperatingPoint, OppTable

__all__ = ["SwitchLatencyModel", "SwitchTimeTable"]


class SwitchTimeTable:
    """95th-percentile switch times for every (start, end) OPP pair.

    This is the artifact the predictive controller consumes when shrinking
    the effective budget (paper §3.4 / Fig. 10): the switch has not happened
    yet when the frequency decision is made, so a conservative estimate is
    required.
    """

    def __init__(self, opps: OppTable, times_s: dict[tuple[int, int], float]):
        expected = {(a, b) for a in range(len(opps)) for b in range(len(opps))}
        if set(times_s) != expected:
            missing = expected - set(times_s)
            raise ValueError(f"switch table incomplete; missing pairs: {missing}")
        for pair, t in times_s.items():
            if t < 0:
                raise ValueError(f"negative switch time {t} for pair {pair}")
        self._opps = opps
        self._times = dict(times_s)

    @property
    def opps(self) -> OppTable:
        return self._opps

    def time_s(self, start: OperatingPoint, end: OperatingPoint) -> float:
        """Conservative (95th-pct) switch time from ``start`` to ``end``."""
        return self._times[(start.index, end.index)]

    def worst_case_s(self) -> float:
        """The largest entry in the table."""
        return max(self._times.values())

    def as_matrix(self) -> list[list[float]]:
        """Row-major matrix ``[start][end]`` of times in seconds (Fig. 11)."""
        n = len(self._opps)
        return [[self._times[(a, b)] for b in range(n)] for a in range(n)]


class SwitchLatencyModel:
    """Samples individual DVFS switch latencies.

    Attributes:
        kernel_overhead_s: Fixed cost of the cpufreq transition path plus
            PLL relock, paid on every real switch.
        settle_s_per_volt: Regulator slew cost per volt of delta.
        noise_sigma: Log-normal sigma of the multiplicative noise (the
            long tail that separates the 95th percentile from the median).
    """

    def __init__(
        self,
        opps: OppTable,
        kernel_overhead_s: float = 150e-6,
        settle_s_per_volt: float = 2.5e-3,
        noise_sigma: float = 0.35,
        seed: int = 0,
    ):
        if kernel_overhead_s < 0 or settle_s_per_volt < 0 or noise_sigma < 0:
            raise ValueError("switch latency parameters must be non-negative")
        self.opps = opps
        self.kernel_overhead_s = kernel_overhead_s
        self.settle_s_per_volt = settle_s_per_volt
        self.noise_sigma = noise_sigma
        self._rng = random.Random(seed)

    def nominal_s(self, start: OperatingPoint, end: OperatingPoint) -> float:
        """Median (noise-free) switch latency."""
        if start.index == end.index:
            return 0.0
        dv = abs(end.voltage_v - start.voltage_v)
        return self.kernel_overhead_s + self.settle_s_per_volt * dv

    def sample_s(self, start: OperatingPoint, end: OperatingPoint) -> float:
        """One noisy switch latency draw, in seconds."""
        nominal = self.nominal_s(start, end)
        if nominal == 0.0:
            return 0.0
        return nominal * math.exp(self._rng.gauss(0.0, self.noise_sigma))

    def percentile_s(
        self, start: OperatingPoint, end: OperatingPoint, pct: float
    ) -> float:
        """Closed-form percentile of the log-normal latency distribution."""
        if not 0 < pct < 100:
            raise ValueError(f"percentile must be in (0, 100), got {pct}")
        nominal = self.nominal_s(start, end)
        if nominal == 0.0:
            return 0.0
        z = _normal_quantile(pct / 100.0)
        return nominal * math.exp(z * self.noise_sigma)

    def microbenchmark(
        self, samples_per_pair: int = 200, pct: float = 95.0
    ) -> SwitchTimeTable:
        """Empirically build the percentile switch-time table (Fig. 11).

        Mirrors the paper's procedure: repeatedly perform each possible
        (start, end) transition, record latencies, report the ``pct``-th
        percentile per pair.
        """
        if samples_per_pair < 1:
            raise ValueError("samples_per_pair must be at least 1")
        times: dict[tuple[int, int], float] = {}
        for start in self.opps:
            for end in self.opps:
                draws = sorted(
                    self.sample_s(start, end) for _ in range(samples_per_pair)
                )
                rank = min(
                    len(draws) - 1, max(0, math.ceil(pct / 100.0 * len(draws)) - 1)
                )
                times[(start.index, end.index)] = draws[rank]
        return SwitchTimeTable(self.opps, times)


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation to the standard normal quantile.

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the core.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a = (
        -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
        1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
        6.680131188771972e01, -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
        -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (
        ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
    ) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
