"""CMOS power model for the simulated CPU.

Active power at an operating point decomposes into switching (dynamic) and
leakage (static) components:

    P(f, V, a) = C_eff * V^2 * f * a  +  I_leak * V

where ``a`` is the activity factor (1.0 while a job runs, a small residual
while idling).  Only *ratios* of energy between governors matter for the
paper's normalized plots, but the constants below are calibrated so absolute
numbers land in the realistic range for a Cortex-A7 cluster (~0.1–0.8 W).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.opp import OperatingPoint

__all__ = ["PowerModel", "default_a7_power_model", "default_a15_power_model"]


@dataclass(frozen=True)
class PowerModel:
    """Maps an operating point and activity factor to power in watts.

    Attributes:
        c_eff_farads: Effective switched capacitance of the cluster.
        i_leak_amps: Leakage current, modelled as proportional to voltage.
        idle_activity: Activity factor between jobs.  Interactive apps
            poll for input and vsync rather than entering deep cpuidle,
            so the "idle" loop still toggles a substantial fraction of
            the cluster — this is why the paper's §5.5 idling-at-fmin
            study finds so much energy left on the table.
    """

    c_eff_farads: float
    i_leak_amps: float
    idle_activity: float = 0.30

    def __post_init__(self) -> None:
        if self.c_eff_farads <= 0:
            raise ValueError("c_eff_farads must be positive")
        if self.i_leak_amps < 0:
            raise ValueError("i_leak_amps must be non-negative")
        if not 0 <= self.idle_activity <= 1:
            raise ValueError("idle_activity must be in [0, 1]")

    def dynamic_power(self, opp: OperatingPoint, activity: float = 1.0) -> float:
        """Switching power ``C_eff * V^2 * f * a`` in watts."""
        if not 0 <= activity <= 1:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        return self.c_eff_farads * opp.voltage_v**2 * opp.freq_hz * activity

    def leakage_power(self, opp: OperatingPoint) -> float:
        """Static power ``I_leak * V`` in watts."""
        return self.i_leak_amps * opp.voltage_v

    def power(self, opp: OperatingPoint, activity: float = 1.0) -> float:
        """Total power in watts at ``opp`` with the given activity factor."""
        return self.dynamic_power(opp, activity) + self.leakage_power(opp)

    def idle_power(self, opp: OperatingPoint) -> float:
        """Power while idling (clock-gated busy-wait) at ``opp``."""
        return self.power(opp, self.idle_activity)

    def energy(self, opp: OperatingPoint, activity: float, duration_s: float) -> float:
        """Energy in joules consumed over ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        return self.power(opp, activity) * duration_s


def default_a7_power_model() -> PowerModel:
    """Constants calibrated to a Cortex-A7 quad cluster.

    At 1400 MHz / 1.25 V full activity this yields ~0.66 W dynamic plus
    ~0.06 W leakage, in line with published Exynos 5422 LITTLE-cluster
    measurements.
    """
    return PowerModel(c_eff_farads=3.0e-10, i_leak_amps=0.05)


def default_a15_power_model() -> PowerModel:
    """Constants calibrated to a Cortex-A15 quad cluster.

    The big cluster's wide out-of-order pipeline toggles roughly four
    times the capacitance of the A7's and leaks substantially more —
    ~3.6 W dynamic at 2 GHz / 1.30 V, matching published Exynos 5422
    big-cluster measurements.
    """
    return PowerModel(c_eff_farads=1.2e-9, i_leak_amps=0.18)
