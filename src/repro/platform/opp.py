"""Discrete DVFS operating points (OPPs).

DVFS hardware exposes a finite set of (frequency, voltage) pairs.  The
predictive controller computes an ideal continuous frequency and then rounds
*up* to the smallest available frequency at or above it (paper §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OperatingPoint",
    "OppTable",
    "default_xu3_a7_table",
    "default_xu3_a15_table",
]


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """A single DVFS level: an index into the table plus its physics.

    Attributes:
        index: Position in the owning :class:`OppTable`, lowest frequency
            first.  Ordering of operating points follows ``index``.
        freq_hz: Clock frequency in hertz.
        voltage_v: Supply voltage in volts at this frequency.
    """

    index: int
    freq_hz: float
    voltage_v: float

    @property
    def freq_mhz(self) -> float:
        """Frequency expressed in megahertz (convenience for display)."""
        return self.freq_hz / 1e6

    def __str__(self) -> str:
        return f"{self.freq_mhz:.0f}MHz@{self.voltage_v:.3f}V"


class OppTable:
    """An ordered, validated collection of operating points.

    The table is immutable after construction.  Points must have strictly
    increasing frequency and — on a homogeneous cluster — non-decreasing
    voltage: a higher clock never runs at a *lower* voltage on real
    silicon.  Heterogeneous (big.LITTLE) ladders interleave two clusters'
    points by *effective* frequency, where that invariant genuinely does
    not hold; they pass ``require_monotone_voltage=False``.
    """

    def __init__(
        self,
        points: list[OperatingPoint],
        require_monotone_voltage: bool = True,
    ):
        if not points:
            raise ValueError("OppTable requires at least one operating point")
        ordered = sorted(points, key=lambda p: p.freq_hz)
        for i, point in enumerate(ordered):
            if point.index != i:
                raise ValueError(
                    f"operating point {point} has index {point.index}, "
                    f"expected {i} (indices must match frequency order)"
                )
            if point.freq_hz <= 0:
                raise ValueError(f"non-positive frequency in {point}")
            if point.voltage_v <= 0:
                raise ValueError(f"non-positive voltage in {point}")
        for low, high in zip(ordered, ordered[1:]):
            if high.freq_hz == low.freq_hz:
                raise ValueError(f"duplicate frequency {low.freq_hz} Hz")
            if require_monotone_voltage and high.voltage_v < low.voltage_v:
                raise ValueError(
                    f"voltage must be non-decreasing with frequency: "
                    f"{low} -> {high}"
                )
        self._points = tuple(ordered)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OppTable) and self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    @property
    def fmin(self) -> OperatingPoint:
        """The lowest-frequency operating point."""
        return self._points[0]

    @property
    def fmax(self) -> OperatingPoint:
        """The highest-frequency operating point."""
        return self._points[-1]

    @property
    def frequencies_hz(self) -> tuple[float, ...]:
        """All frequencies, ascending, in hertz."""
        return tuple(p.freq_hz for p in self._points)

    def lowest_at_or_above(self, freq_hz: float) -> OperatingPoint:
        """Smallest available frequency >= ``freq_hz``.

        This is how the predictive controller quantizes its continuous
        frequency request.  Requests above ``fmax`` saturate at ``fmax``
        (the job is then expected to miss its deadline; nothing faster
        exists).
        """
        for point in self._points:
            if point.freq_hz >= freq_hz:
                return point
        return self.fmax

    def highest_at_or_below(self, freq_hz: float) -> OperatingPoint:
        """Largest available frequency <= ``freq_hz`` (saturates at fmin)."""
        for point in reversed(self._points):
            if point.freq_hz <= freq_hz:
                return point
        return self.fmin

    def nearest(self, freq_hz: float) -> OperatingPoint:
        """The operating point whose frequency is closest to ``freq_hz``."""
        return min(self._points, key=lambda p: abs(p.freq_hz - freq_hz))


def default_xu3_a7_table() -> OppTable:
    """Operating points modelled on the Exynos 5422 Cortex-A7 cluster.

    The ODROID-XU3's A7 cluster exposes 200 MHz–1400 MHz in 100 MHz steps.
    Voltages follow the near-linear ramp typical of the part (~0.9 V at the
    bottom of the curve up to ~1.25 V at the top).
    """
    freqs_mhz = range(200, 1500, 100)
    points = []
    for i, mhz in enumerate(freqs_mhz):
        frac = (mhz - 200) / (1400 - 200)
        voltage = 0.90 + 0.35 * frac
        points.append(OperatingPoint(index=i, freq_hz=mhz * 1e6, voltage_v=voltage))
    return OppTable(points)


def default_xu3_a15_table() -> OppTable:
    """Operating points modelled on the Exynos 5422 Cortex-A15 cluster.

    The big cluster clocks 800 MHz–2000 MHz.  The paper ran its main
    results on the A7 but notes "we saw similar trends when running on
    the A15 core" (§5.1); this table supports reproducing that check
    (``benchmarks/test_ablations.py::test_ablation_a15_platform``).
    """
    freqs_mhz = range(800, 2100, 100)
    points = []
    for i, mhz in enumerate(freqs_mhz):
        frac = (mhz - 800) / (2000 - 800)
        voltage = 0.95 + 0.35 * frac
        points.append(OperatingPoint(index=i, freq_hz=mhz * 1e6, voltage_v=voltage))
    return OppTable(points)
