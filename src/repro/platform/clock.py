"""Virtual time.

Everything in the simulation runs against a :class:`VirtualClock`; nothing
reads the wall clock.  This makes every experiment exactly reproducible and
lets a multi-minute interactive session simulate in milliseconds.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError(f"start time must be non-negative, got {start_s}")
        self._now = start_s

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, duration_s: float) -> float:
        """Move time forward by ``duration_s`` seconds; returns the new time.

        Raises:
            ValueError: If ``duration_s`` is negative — simulated time never
                runs backwards.
        """
        if duration_s < 0:
            raise ValueError(f"cannot advance by negative time {duration_s}")
        self._now += duration_s
        return self._now

    def advance_to(self, time_s: float) -> float:
        """Jump forward to an absolute time (no-op if already past it)."""
        if time_s > self._now:
            self._now = time_s
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f}s)"
