"""Execution-time model of the simulated CPU.

The paper (§3.4, Fig. 9) validates the classical two-term DVFS model

    t = T_mem + N_dep / f

where ``T_mem`` is memory-bound time that does not scale with the core
clock and ``N_dep`` is the count of CPU cycles that do.  Jobs in this
reproduction are therefore characterized by a :class:`Work` value — the
amount of frequency-dependent and frequency-independent work — and the
:class:`SimulatedCpu` turns Work into elapsed time at a given operating
point, with optional multiplicative jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.jitter import JitterModel, NoJitter
from repro.platform.opp import OperatingPoint

__all__ = ["Work", "SimulatedCpu"]


@dataclass(frozen=True)
class Work:
    """The cost of one job, independent of the frequency it runs at.

    Attributes:
        cycles: CPU cycles that scale with frequency (``N_dep``).
        mem_time_s: Seconds of memory-bound time (``T_mem``) that do not
            scale with the core clock.
    """

    cycles: float
    mem_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {self.cycles}")
        if self.mem_time_s < 0:
            raise ValueError(
                f"mem_time_s must be non-negative, got {self.mem_time_s}"
            )

    def __add__(self, other: "Work") -> "Work":
        return Work(self.cycles + other.cycles, self.mem_time_s + other.mem_time_s)

    def scaled(self, factor: float) -> "Work":
        """Both components multiplied by ``factor`` (used for calibration)."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return Work(self.cycles * factor, self.mem_time_s * factor)

    @staticmethod
    def zero() -> "Work":
        return Work(0.0, 0.0)


class SimulatedCpu:
    """Computes elapsed time for Work at an operating point.

    The ideal (jitter-free) time is exactly ``mem_time + cycles / f``;
    :meth:`execution_time` multiplies it by one draw from the jitter model,
    reproducing run-to-run variation.  :meth:`ideal_time` is what an oracle
    with perfect knowledge of the work — but not of the noise — would use.
    """

    def __init__(self, jitter: JitterModel | None = None):
        self.jitter = jitter if jitter is not None else NoJitter()

    def ideal_time(self, work: Work, opp: OperatingPoint) -> float:
        """Noise-free execution time of ``work`` at ``opp``, in seconds."""
        return work.mem_time_s + work.cycles / opp.freq_hz

    def execution_time(self, work: Work, opp: OperatingPoint) -> float:
        """One noisy realization of the execution time, in seconds."""
        return self.ideal_time(work, opp) * self.jitter.sample()

    def min_feasible_time(self, work: Work, fmax: OperatingPoint) -> float:
        """Fastest possible (jitter-free) completion — at max frequency."""
        return self.ideal_time(work, fmax)
