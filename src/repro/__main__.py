"""``python -m repro`` — reproduce the paper's tables and figures."""

import sys

from repro.cli import main

sys.exit(main())
