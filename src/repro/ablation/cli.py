"""``repro ablate`` — run and report component-importance matrices.

Two subcommands:

``repro ablate run``
    Plan the matrix (workloads x scenarios x variants), execute it
    (optionally multiprocess — results are byte-identical for every
    ``--workers`` value), score it against the baseline, print the
    ranked component-importance table, and write the artifact family
    into ``--out`` (raw results + gateable metrics always; JSON/CSV/
    markdown reports opt-in).

``repro ablate report``
    Re-score a previously written ``ablation_results.json`` without
    re-simulating anything and print (or re-emit) the report.

Everything on stdout is a deterministic function of the plan; timings
and file listings go to stderr, so piped output is stable enough to
diff across machines and worker counts.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.ablation.planner import DEFAULT_SCENARIOS, plan_matrix
from repro.ablation.registry import component_names
from repro.ablation.runner import AblationResult, run_ablation
from repro.ablation.score import score_ablation
from repro.ablation.emit import ranked_table, write_artifacts

__all__ = ["ablate_command"]


def _csv_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ablate run",
        description=(
            "Execute a baseline-plus-one-off ablation matrix over a "
            "workloads x scenarios grid and rank every control-plane "
            "component by measured consequence."
        ),
    )
    parser.add_argument(
        "--workloads",
        required=True,
        metavar="A,B,...",
        help="comma-separated benchmark names (see repro list)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="matrix root seed"
    )
    parser.add_argument(
        "--jobs", type=int, default=150, help="jobs per cell"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (results are identical for any value)",
    )
    parser.add_argument(
        "--components",
        default=None,
        metavar="A,B,...",
        help="components to ablate (default: all registered: "
        + ", ".join(component_names())
        + ")",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        metavar="A,B,...",
        help="scenario names from the default grid ("
        + ", ".join(s.name for s in DEFAULT_SCENARIOS)
        + "; default: all)",
    )
    parser.add_argument(
        "--pairwise",
        action="store_true",
        help="also run every two-component-off combination "
        "(duplicates of an existing variant are dropped)",
    )
    parser.add_argument(
        "--out",
        default="ablate-out",
        metavar="DIR",
        help="artifact directory (default: ablate-out)",
    )
    parser.add_argument(
        "--profile-jobs",
        type=int,
        default=60,
        help="offline profiling jobs per trained controller",
    )
    parser.add_argument(
        "--switch-samples",
        type=int,
        default=40,
        help="switch-microbenchmark samples per OPP pair",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write the scored report as ablation.json",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="also write per-cell deltas as ablation.csv",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="also write the report as ablation.md",
    )
    return parser


def _report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ablate report",
        description=(
            "Re-score a previously executed matrix from its "
            "ablation_results.json (no re-simulation) and print the "
            "ranked component-importance table."
        ),
    )
    parser.add_argument(
        "directory",
        metavar="DIR",
        help="artifact directory a `repro ablate run --out DIR` wrote",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="(re)write the scored report as DIR/ablation.json",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="(re)write per-cell deltas as DIR/ablation.csv",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="(re)write the report as DIR/ablation.md",
    )
    return parser


def _run(argv: list[str]) -> int:
    try:
        args = _run_parser().parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    scenarios = None
    if args.scenarios is not None:
        by_name = {s.name: s for s in DEFAULT_SCENARIOS}
        wanted = _csv_list(args.scenarios)
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            print(
                f"unknown scenario(s): {', '.join(unknown)} "
                f"(available: {', '.join(by_name)})",
                file=sys.stderr,
            )
            return 2
        scenarios = [by_name[name] for name in wanted]

    try:
        plan = plan_matrix(
            workloads=_csv_list(args.workloads),
            seed=args.seed,
            components=(
                _csv_list(args.components)
                if args.components is not None
                else None
            ),
            scenarios=scenarios,
            pairwise=args.pairwise,
            n_jobs=args.jobs,
            profile_jobs=args.profile_jobs,
            switch_samples=args.switch_samples,
        )
    except (KeyError, ValueError) as error:
        # KeyError reprs its message; unwrap for a readable CLI line.
        message = error.args[0] if error.args else str(error)
        print(str(message), file=sys.stderr)
        return 2

    started = time.time()
    print(
        f"[ablate: {len(plan.cells)} cells = "
        f"{len(plan.workloads)} workload(s) x "
        f"{len(plan.scenarios)} scenario(s) x "
        f"{len(plan.variants)} variant(s), "
        f"{args.workers} worker(s)]",
        file=sys.stderr,
    )
    result = run_ablation(plan, workers=args.workers)
    report = score_ablation(result)
    print(ranked_table(report))
    written = write_artifacts(
        result,
        report,
        args.out,
        json_report=args.json,
        csv_report=args.csv,
        markdown_report=args.markdown,
    )
    print(
        f"[ablate: {len(written)} file(s) -> {args.out}, "
        f"{time.time() - started:.1f}s]",
        file=sys.stderr,
    )
    return 0


def _report(argv: list[str]) -> int:
    try:
        args = _report_parser().parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    raw = pathlib.Path(args.directory) / "ablation_results.json"
    if not raw.is_file():
        print(
            f"no ablation_results.json under {args.directory} — "
            "was it produced by `repro ablate run --out`?",
            file=sys.stderr,
        )
        return 2
    try:
        result = AblationResult.from_dict(json.loads(raw.read_text()))
        report = score_ablation(result)
    except (KeyError, ValueError) as error:
        print(f"unreadable results file {raw}: {error}", file=sys.stderr)
        return 2
    print(ranked_table(report))
    if args.json or args.csv or args.markdown:
        written = write_artifacts(
            result,
            report,
            args.directory,
            json_report=args.json,
            csv_report=args.csv,
            markdown_report=args.markdown,
        )
        print(
            f"[ablate: {len(written)} file(s) -> {args.directory}]",
            file=sys.stderr,
        )
    return 0


def ablate_command(argv: list[str]) -> int:
    """Entry point for ``repro ablate``; returns a process exit code."""
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: repro ablate {run,report} ...\n\n"
            "  run     execute an ablation matrix "
            "(repro ablate run --help)\n"
            "  report  re-score a written matrix "
            "(repro ablate report --help)"
        )
        return 0 if argv else 2
    if argv[0] == "run":
        return _run(argv[1:])
    if argv[0] == "report":
        return _report(argv[1:])
    print(
        f"unknown ablate subcommand {argv[0]!r} (expected run or report)",
        file=sys.stderr,
    )
    return 2
