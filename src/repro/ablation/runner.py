"""Deterministic, multiprocess execution of an ablation matrix.

The determinism contract mirrors the fleet simulator's: every random
stream a cell consumes is seeded from the *path that names it* —
``(root seed, "ablate", workload, scenario, purpose)`` — never from the
variant (so baseline and variants replay identical job inputs, jitter
draws, and switch latencies, making per-job deltas paired comparisons)
and never from the worker (so results are byte-identical for every
``--workers`` value).

Controller training is the expensive shareable step.  Each process
keeps a module-level cache keyed by ``(workload, pipeline config)``;
:func:`run_ablation` pre-warms the parent's cache with every controller
the plan needs before forking, so pool workers inherit the trained
artifacts for free and only replay the cheap online half.  A shared
switch-time table (one microbenchmark per plan) rides along the same
way.

Cells come back as picklable :class:`CellResult` values carrying the
per-job records scoring needs (paired energy/miss/slack arrays and the
full decision audit log), merged in the plan's canonical cell order.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Any, Mapping

from repro.ablation.planner import AblationPlan, CellPlan
from repro.ablation.registry import baseline_pipeline, configs_without
from repro.fleet.seeding import derive_seed
from repro.governors.adaptive import AdaptiveGovernor
from repro.online.inject import StepDriftJitter
from repro.pipeline.config import PipelineConfig
from repro.pipeline.offline import TrainedController, build_controller
from repro.platform.board import Board
from repro.platform.jitter import LogNormalJitter, NoJitter
from repro.platform.switching import SwitchLatencyModel, SwitchTimeTable
from repro.programs.interpreter import Interpreter
from repro.runtime.executor import TaskLoopRunner
from repro.telemetry import DecisionRecord, Telemetry
from repro.telemetry.energy import EnergyLedger
from repro.workloads.registry import get_app

__all__ = ["AblationResult", "CellResult", "run_ablation", "run_cell"]


@dataclass(frozen=True)
class CellResult:
    """One executed cell, ready to merge worker-count-independently.

    Attributes:
        workload: Benchmark name.
        scenario: Scenario name.
        variant: Variant name (``baseline`` or ``no-...``).
        n_jobs: Jobs executed.
        misses: Deadline misses.
        energy_j: Total board energy over the run.
        savings_frac: The energy ledger's normalized saving vs. the
            all-fmax counterfactual (NaN before data).
        switches: DVFS transitions performed.
        job_energy_j: Per-job attributed joules, in job order (paired
            with the same-index entries of every other variant in the
            same (workload, scenario) cell — shared seed paths).
        job_missed: Per-job miss flags, in job order.
        job_slack_s: Per-job slack, in job order.
        decisions: The run's full decision audit log.
    """

    workload: str
    scenario: str
    variant: str
    n_jobs: int
    misses: int
    energy_j: float
    savings_frac: float
    switches: int
    job_energy_j: tuple[float, ...]
    job_missed: tuple[bool, ...]
    job_slack_s: tuple[float, ...]
    decisions: tuple[DecisionRecord, ...]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.n_jobs if self.n_jobs else 0.0

    @property
    def energy_per_job_j(self) -> float:
        return self.energy_j / self.n_jobs if self.n_jobs else 0.0

    def as_dict(self) -> dict:
        """JSON-safe rendering (decisions via their audit schema)."""
        return {
            "workload": self.workload,
            "scenario": self.scenario,
            "variant": self.variant,
            "n_jobs": self.n_jobs,
            "misses": self.misses,
            "energy_j": self.energy_j,
            "savings_frac": self.savings_frac,
            "switches": self.switches,
            "job_energy_j": list(self.job_energy_j),
            "job_missed": list(self.job_missed),
            "job_slack_s": list(self.job_slack_s),
            "decisions": [record.as_dict() for record in self.decisions],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellResult":
        return cls(
            workload=str(payload["workload"]),
            scenario=str(payload["scenario"]),
            variant=str(payload["variant"]),
            n_jobs=int(payload["n_jobs"]),
            misses=int(payload["misses"]),
            energy_j=float(payload["energy_j"]),
            savings_frac=float(
                payload["savings_frac"]
                if payload["savings_frac"] is not None
                else "nan"
            ),
            switches=int(payload["switches"]),
            job_energy_j=tuple(float(v) for v in payload["job_energy_j"]),
            job_missed=tuple(bool(v) for v in payload["job_missed"]),
            job_slack_s=tuple(float(v) for v in payload["job_slack_s"]),
            decisions=tuple(
                DecisionRecord.from_dict(record)
                for record in payload["decisions"]
            ),
        )


@dataclass(frozen=True)
class AblationResult:
    """An executed matrix: the plan plus every cell, in canonical order."""

    plan: AblationPlan
    cells: tuple[CellResult, ...]

    def cell(self, workload: str, scenario: str, variant: str) -> CellResult:
        """Look one cell up (KeyError with the valid axes when absent)."""
        for candidate in self.cells:
            if (
                candidate.workload == workload
                and candidate.scenario == scenario
                and candidate.variant == variant
            ):
                return candidate
        raise KeyError(
            f"no cell ({workload!r}, {scenario!r}, {variant!r}); "
            f"workloads={list(self.plan.workloads)}, "
            f"scenarios={[s.name for s in self.plan.scenarios]}, "
            f"variants={[v.name for v in self.plan.variants]}"
        )

    def as_dict(self) -> dict:
        import json

        return {
            "plan": json.loads(self.plan.to_json()),
            "cells": [cell.as_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AblationResult":
        import json

        return cls(
            plan=AblationPlan.from_json(json.dumps(payload["plan"])),
            cells=tuple(
                CellResult.from_dict(cell) for cell in payload["cells"]
            ),
        )


#: Per-process trained-controller cache: (workload, pipeline config) ->
#: controller.  Forked pool workers inherit the parent's pre-warmed
#: entries, so training happens exactly once per distinct config.
_CONTROLLERS: dict[tuple[str, PipelineConfig], TrainedController] = {}

#: Per-process shared switch-time table: (root seed, samples) -> table.
_SWITCH_TABLES: dict[tuple[int, int], SwitchTimeTable] = {}

#: Per-process shared interpreter (platform timing constants only).
_INTERPRETER = Interpreter()


def _switch_table(seed: int, samples: int) -> SwitchTimeTable:
    key = (seed, samples)
    if key not in _SWITCH_TABLES:
        from repro.platform.opp import default_xu3_a7_table

        _SWITCH_TABLES[key] = SwitchLatencyModel(
            default_xu3_a7_table(),
            seed=derive_seed(seed, "ablate", "switchbench"),
        ).microbenchmark(samples_per_pair=samples)
    return _SWITCH_TABLES[key]


def _controller(
    workload: str, pipeline: PipelineConfig, seed: int
) -> TrainedController:
    key = (workload, pipeline)
    if key not in _CONTROLLERS:
        with warnings.catch_warnings():
            # The slicing-off variant certifies with certify="warn" (a
            # whole program need not pass the slice purity rule); the
            # warning is the expected cost of that ablation, not news.
            warnings.simplefilter("ignore")
            _CONTROLLERS[key] = build_controller(
                get_app(workload),
                config=pipeline,
                switch_table=_switch_table(seed, pipeline.switch_samples),
                interpreter=_INTERPRETER,
            )
    return _CONTROLLERS[key]


def _cell_pipeline(cell: CellPlan) -> tuple[PipelineConfig, object]:
    return configs_without(
        cell.variant.disabled,
        pipeline=baseline_pipeline(
            n_profile_jobs=cell.profile_jobs,
            switch_samples=cell.switch_samples,
        ),
    )


def run_cell(cell: CellPlan) -> CellResult:
    """Execute one cell start to finish.

    Top-level (hence picklable) so a ``multiprocessing`` pool can map
    over cell plans directly.
    """
    pipeline, adaptive = _cell_pipeline(cell)
    controller = _controller(cell.workload, pipeline, cell.seed)
    app = get_app(cell.workload)
    scenario = cell.scenario
    budget = app.task.budget_s * scenario.budget_scale
    root = cell.seed

    def stream_seed(purpose: str) -> int:
        # The variant is deliberately absent: every variant of a
        # (workload, scenario) cell replays identical inputs, jitter,
        # and switch draws, so per-job deltas are paired comparisons.
        return derive_seed(root, "ablate", cell.workload, scenario.name, purpose)

    board = Board(
        opps=controller.dvfs.opps,
        switcher=SwitchLatencyModel(
            controller.dvfs.opps, seed=stream_seed("switch")
        ),
    )
    base = (
        LogNormalJitter(scenario.jitter_sigma, seed=stream_seed("jitter"))
        if scenario.jitter_sigma > 0
        else NoJitter()
    )
    if scenario.drifts:
        board.cpu.jitter = StepDriftJitter(
            base,
            scenario.drift_factor,
            shift_at_s=scenario.drift_at_frac * cell.n_jobs * budget,
            clock=lambda: board.now,
        )
    else:
        board.cpu.jitter = base

    governor = AdaptiveGovernor.from_controller(
        controller, config=adaptive, interpreter=_INTERPRETER
    )
    ledger = EnergyLedger(board.power, board.opps)
    telemetry = Telemetry(
        name=f"{cell.workload}/{scenario.name}/{cell.variant.name}"
    )
    runner = TaskLoopRunner(
        board=board,
        task=app.task.with_budget(budget),
        governor=governor,
        inputs=app.inputs(cell.n_jobs, seed=stream_seed("inputs")),
        interpreter=_INTERPRETER,
        telemetry=telemetry,
        energy=ledger,
    )
    result = runner.run()
    ledger.check_conservation(board)

    return CellResult(
        workload=cell.workload,
        scenario=scenario.name,
        variant=cell.variant.name,
        n_jobs=result.n_jobs,
        misses=result.n_missed,
        energy_j=result.energy_j,
        savings_frac=ledger.savings_frac,
        switches=result.switch_count,
        job_energy_j=tuple(
            ledger.job_energy_j(job.index) for job in result.jobs
        ),
        job_missed=tuple(job.missed for job in result.jobs),
        job_slack_s=tuple(job.slack_s for job in result.jobs),
        decisions=tuple(telemetry.decisions),
    )


def _prewarm(plan: AblationPlan) -> None:
    """Train every needed controller once, in this process."""
    for cell in plan.cells:
        pipeline, _ = _cell_pipeline(cell)
        _controller(cell.workload, pipeline, cell.seed)


def run_ablation(plan: AblationPlan, workers: int = 1) -> AblationResult:
    """Execute a planned matrix; results are independent of ``workers``.

    Args:
        plan: The matrix to run.
        workers: Process count.  1 runs cells in-process; more forks a
            ``multiprocessing`` pool over cell plans (capped at the
            cell count).  Controllers are pre-warmed in the parent
            either way, so workers inherit the trained artifacts.
    """
    if workers < 1:
        raise ValueError(f"need >= 1 worker, got {workers}")
    cells = plan.cells
    _prewarm(plan)
    workers = min(workers, len(cells))
    if workers == 1:
        results = tuple(run_cell(cell) for cell in cells)
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            results = tuple(pool.map(run_cell, cells))
    return AblationResult(plan=plan, cells=results)
