"""Ablation observatory: which control-plane components actually matter.

The reproduction's governor stack is a pile of load-bearing mechanisms
(asymmetric loss, safety margin, program slicing, online recalibration,
certifier bound-skip, AIMD margin adaptation, fallback arming).  This
package turns "we believe component X matters" into ranked, CI-gated,
regenerable evidence:

- :mod:`repro.ablation.registry` — each togglable mechanism as declared
  data: the config overrides that switch it *off*.
- :mod:`repro.ablation.planner` — the baseline-plus-one-off (and opt-in
  pairwise) run matrix over a workloads × scenarios grid.
- :mod:`repro.ablation.runner` — deterministic, multiprocess execution
  of the matrix (fleet-style crc32 path seeding: results are
  byte-identical for every worker count).
- :mod:`repro.ablation.score` — per-variant deltas vs. baseline with
  bootstrap confidence intervals, decision-provenance explanations, and
  the ranked component-importance table.
- :mod:`repro.ablation.emit` — JSON/CSV/markdown artifacts plus the
  gateable ``ablate.*`` metrics file for ``repro report --gate``.
- :mod:`repro.ablation.cli` — the ``repro ablate run`` / ``repro ablate
  report`` commands.
"""

from repro.ablation.planner import (
    DEFAULT_SCENARIOS,
    AblationPlan,
    CellPlan,
    Scenario,
    Variant,
    plan_matrix,
)
from repro.ablation.registry import (
    COMPONENTS,
    Component,
    PLATFORMS,
    Platform,
    baseline_adaptive,
    baseline_pipeline,
    batch_governor,
    component_names,
    configs_without,
    get_component,
)
from repro.ablation.runner import AblationResult, CellResult, run_ablation
from repro.ablation.score import AblationReport, score_ablation

__all__ = [
    "COMPONENTS",
    "Component",
    "PLATFORMS",
    "Platform",
    "baseline_adaptive",
    "baseline_pipeline",
    "batch_governor",
    "component_names",
    "configs_without",
    "get_component",
    "DEFAULT_SCENARIOS",
    "AblationPlan",
    "CellPlan",
    "Scenario",
    "Variant",
    "plan_matrix",
    "AblationResult",
    "CellResult",
    "run_ablation",
    "AblationReport",
    "score_ablation",
]
