"""The run-matrix planner: baseline plus one-offs over a scenario grid.

An ablation matrix is the cross product of three axes:

- **workloads** — which benchmark the governor is driving;
- **scenarios** — the environment the run happens in (budget tightness,
  timing-jitter magnitude, mid-run drift);
- **variants** — which components are switched off: always the
  all-components-on ``baseline``, one ``no-<component>`` variant per
  registered component, and (opt-in) ``no-a+no-b`` pairwise variants.

Planning is pure: :func:`plan_matrix` produces a frozen, picklable,
JSON-round-trippable :class:`AblationPlan` whose cells enumerate in one
canonical order.  Execution (:mod:`repro.ablation.runner`) derives every
random stream from the cell's *path* (root seed, workload, scenario) —
never from the variant, so baseline and variants replay identical jobs,
jitter, and switch draws and per-job deltas are paired; and never from
the worker, so results are byte-identical for every worker count.

Each variant carries a *fingerprint*: a digest of the merged
(pipeline, adaptive) configs it runs with.  Pairwise combinations whose
merged configs collapse onto an already-planned variant (disabling AIMD
adaptation on top of a zero margin changes nothing, for example) are
dropped at planning time rather than burned as duplicate compute, so a
plan never contains two variants with the same fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from repro.ablation.registry import component_names, configs_without
from repro.workloads.registry import app_names

__all__ = [
    "DEFAULT_SCENARIOS",
    "AblationPlan",
    "CellPlan",
    "Scenario",
    "Variant",
    "plan_matrix",
]


@dataclass(frozen=True)
class Scenario:
    """One environment the matrix replays every variant in.

    Attributes:
        name: Stable identifier (enters seed paths and reports).
        budget_scale: Multiplier on the workload's nominal per-job
            budget — below 1.0 tightens deadlines.
        jitter_sigma: Log-normal timing-noise sigma for the run board.
        drift_factor: Workload slowdown factor applied mid-run
            (1.0 = no drift).
        drift_at_frac: Fraction of the run's span at which the drift
            step lands.
    """

    name: str
    budget_scale: float = 1.0
    jitter_sigma: float = 0.02
    drift_factor: float = 1.0
    drift_at_frac: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.budget_scale <= 0:
            raise ValueError(f"budget_scale must be > 0, got {self.budget_scale}")
        if self.jitter_sigma < 0:
            raise ValueError(f"jitter_sigma must be >= 0, got {self.jitter_sigma}")
        if self.drift_factor <= 0:
            raise ValueError(f"drift_factor must be > 0, got {self.drift_factor}")
        if not 0.0 <= self.drift_at_frac <= 1.0:
            raise ValueError(
                f"drift_at_frac must be in [0, 1], got {self.drift_at_frac}"
            )

    @property
    def drifts(self) -> bool:
        return self.drift_factor != 1.0


#: The grid the acceptance evidence was tuned on: a nominal cell, a
#: heavy-jitter cell (where margins and asymmetry earn their keep), and
#: a mid-run drift cell (where recalibration and fallback earn theirs).
DEFAULT_SCENARIOS: tuple[Scenario, ...] = (
    Scenario(name="nominal"),
    Scenario(name="jitter", jitter_sigma=0.10),
    Scenario(name="drift", drift_factor=1.4),
)


@dataclass(frozen=True)
class Variant:
    """One config point of the matrix.

    Attributes:
        name: ``baseline``, ``no-<component>``, or ``no-a+no-b``.
        disabled: Registered component names switched off, in registry
            order (empty for the baseline).
        fingerprint: Digest of the merged (pipeline, adaptive) configs —
            two variants with equal fingerprints would run identical
            code, so a plan never contains both.
    """

    name: str
    disabled: tuple[str, ...] = ()
    fingerprint: str = ""

    @property
    def is_baseline(self) -> bool:
        return not self.disabled


@dataclass(frozen=True)
class CellPlan:
    """One unit of execution: (workload, scenario, variant).

    Self-contained and picklable — a worker process can run a cell from
    this object alone.  ``seed`` is the matrix root seed; the runner
    derives each stream from ``(seed, "ablate", workload, scenario,
    purpose)``, deliberately excluding the variant and the worker.
    """

    workload: str
    scenario: Scenario
    variant: Variant
    seed: int
    n_jobs: int
    profile_jobs: int
    switch_samples: int


@dataclass(frozen=True)
class AblationPlan:
    """The full planned matrix, in canonical execution order.

    Attributes:
        workloads: Benchmark names, in requested order.
        scenarios: Scenario grid, in requested order.
        variants: ``baseline`` first, then one-offs in registry order,
            then any pairwise variants.
        seed: Root seed for every derived stream.
        n_jobs: Jobs per cell.
        profile_jobs: Offline profiling sample size per controller.
        switch_samples: Switch-microbenchmark samples per OPP pair.
    """

    workloads: tuple[str, ...]
    scenarios: tuple[Scenario, ...]
    variants: tuple[Variant, ...]
    seed: int
    n_jobs: int
    profile_jobs: int
    switch_samples: int
    dropped_duplicates: tuple[str, ...] = field(default=())

    @property
    def cells(self) -> tuple[CellPlan, ...]:
        """Every cell, in canonical (workload, scenario, variant) order."""
        return tuple(
            CellPlan(
                workload=workload,
                scenario=scenario,
                variant=variant,
                seed=self.seed,
                n_jobs=self.n_jobs,
                profile_jobs=self.profile_jobs,
                switch_samples=self.switch_samples,
            )
            for workload in self.workloads
            for scenario in self.scenarios
            for variant in self.variants
        )

    def to_json(self) -> str:
        """Canonical JSON rendering (round-trips via :meth:`from_json`)."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AblationPlan":
        raw = json.loads(text)
        return cls(
            workloads=tuple(raw["workloads"]),
            scenarios=tuple(
                Scenario(**scenario) for scenario in raw["scenarios"]
            ),
            variants=tuple(
                Variant(
                    name=variant["name"],
                    disabled=tuple(variant["disabled"]),
                    fingerprint=variant["fingerprint"],
                )
                for variant in raw["variants"]
            ),
            seed=raw["seed"],
            n_jobs=raw["n_jobs"],
            profile_jobs=raw["profile_jobs"],
            switch_samples=raw["switch_samples"],
            dropped_duplicates=tuple(raw.get("dropped_duplicates", ())),
        )


def _fingerprint(
    disabled: Sequence[str], profile_jobs: int, switch_samples: int
) -> str:
    """Digest of the merged configs a variant would run with."""
    from repro.ablation.registry import baseline_pipeline

    pipeline, adaptive = configs_without(
        disabled,
        pipeline=baseline_pipeline(
            n_profile_jobs=profile_jobs, switch_samples=switch_samples
        ),
    )
    rendered = json.dumps(
        {"pipeline": asdict(pipeline), "adaptive": asdict(adaptive)},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha1(rendered.encode()).hexdigest()[:12]


def _registry_order(names: Iterable[str]) -> tuple[str, ...]:
    order = {name: i for i, name in enumerate(component_names())}
    return tuple(sorted(names, key=order.__getitem__))


def plan_matrix(
    workloads: Sequence[str],
    seed: int = 42,
    components: Sequence[str] | None = None,
    scenarios: Sequence[Scenario] | None = None,
    pairwise: bool = False,
    n_jobs: int = 150,
    profile_jobs: int = 60,
    switch_samples: int = 40,
) -> AblationPlan:
    """Plan the ablation matrix.

    Args:
        workloads: Benchmark names (validated against the registry).
        seed: Root seed; the only entropy source for the whole matrix.
        components: Components to ablate; all registered by default.
        scenarios: Scenario grid; :data:`DEFAULT_SCENARIOS` by default.
        pairwise: Also plan every two-component-off combination (those
            whose merged configs duplicate an earlier variant are
            dropped, and recorded in ``dropped_duplicates``).
        n_jobs: Jobs per cell.
        profile_jobs: Profiling sample size for each trained controller.
        switch_samples: Switch-microbenchmark samples per OPP pair.

    Raises:
        KeyError: Unknown workload or component name.
        ValueError: Empty workloads, duplicate names, or bad sizes.
    """
    if not workloads:
        raise ValueError("at least one workload is required")
    if len(set(workloads)) != len(workloads):
        raise ValueError(f"duplicate workloads: {list(workloads)}")
    known_apps = set(app_names())
    for workload in workloads:
        if workload not in known_apps:
            raise KeyError(
                f"unknown app {workload!r}; available: "
                + ", ".join(sorted(known_apps))
            )
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if profile_jobs < 2:
        raise ValueError(f"profile_jobs must be >= 2, got {profile_jobs}")
    if switch_samples < 1:
        raise ValueError(f"switch_samples must be >= 1, got {switch_samples}")

    chosen = (
        _registry_order(set(components))
        if components is not None
        else component_names()
    )
    if components is not None:
        if not chosen:
            raise ValueError("at least one component is required")
        if len(set(components)) != len(tuple(components)):
            raise ValueError(f"duplicate components: {list(components)}")

    scenario_grid = (
        tuple(scenarios) if scenarios is not None else DEFAULT_SCENARIOS
    )
    if not scenario_grid:
        raise ValueError("at least one scenario is required")
    if len({s.name for s in scenario_grid}) != len(scenario_grid):
        raise ValueError(
            f"duplicate scenario names: {[s.name for s in scenario_grid]}"
        )

    def build(disabled: tuple[str, ...]) -> Variant:
        name = (
            "baseline"
            if not disabled
            else "+".join(f"no-{component}" for component in disabled)
        )
        return Variant(
            name=name,
            disabled=disabled,
            fingerprint=_fingerprint(disabled, profile_jobs, switch_samples),
        )

    variants: list[Variant] = [build(())]
    seen = {variants[0].fingerprint: variants[0].name}
    dropped: list[str] = []
    singles = [build((component,)) for component in chosen]
    pairs = (
        [build(pair) for pair in combinations(chosen, 2)] if pairwise else []
    )
    for variant in singles + pairs:
        if variant.fingerprint in seen:
            dropped.append(
                f"{variant.name} (== {seen[variant.fingerprint]})"
            )
            continue
        seen[variant.fingerprint] = variant.name
        variants.append(variant)

    return AblationPlan(
        workloads=tuple(workloads),
        scenarios=scenario_grid,
        variants=tuple(variants),
        seed=seed,
        n_jobs=n_jobs,
        profile_jobs=profile_jobs,
        switch_samples=switch_samples,
        dropped_duplicates=tuple(dropped),
    )
