"""The component registry: every togglable mechanism as declared data.

An ablation is only trustworthy when "component off" means exactly one
thing everywhere it is used — in the run matrix, in the benchmarks, in
the docs.  This module is that single enumeration.  Each
:class:`Component` names one control-plane mechanism and carries the
config overrides that disable it:

``pipeline_off``
    Field overrides applied to the offline
    :class:`~repro.pipeline.config.PipelineConfig` (they change what the
    trained controller looks like, so each distinct pipeline config
    trains its own controller).
``adaptive_off``
    Field overrides applied to the online
    :class:`~repro.governors.adaptive.AdaptiveConfig` (they change the
    run-time loop only; the controller is shared with the baseline).

The ablation *baseline* is the full mechanism set: paper-default
pipeline knobs plus an :class:`AdaptiveConfig` with the certificate
bound-skip armed (the one mechanism the historical adaptive path left
off by default).  Variants are produced by merging one or more
components' off-overrides onto that baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.governors.adaptive import AdaptiveConfig
from repro.pipeline.config import PipelineConfig
from repro.platform.opp import (
    OppTable,
    default_xu3_a15_table,
    default_xu3_a7_table,
)
from repro.platform.power import (
    PowerModel,
    default_a15_power_model,
    default_a7_power_model,
)

__all__ = [
    "Component",
    "COMPONENTS",
    "Platform",
    "PLATFORMS",
    "baseline_adaptive",
    "baseline_pipeline",
    "batch_governor",
    "component_names",
    "configs_without",
    "get_component",
]


@dataclass(frozen=True)
class Component:
    """One togglable mechanism and the overrides that switch it off.

    Attributes:
        name: Stable identifier (CLI ``--components``, metric names,
            variant names all use it).
        title: Short human-readable label for tables.
        summary: One sentence on what the mechanism buys — shown in the
            ranked report so a reader does not need the source.
        pipeline_off: ``(field, value)`` overrides on the baseline
            :class:`PipelineConfig` when this component is disabled.
        adaptive_off: ``(field, value)`` overrides on the baseline
            :class:`AdaptiveConfig` when this component is disabled.
        adaptive_post: Optional transform applied *after* all static
            overrides merged — for off-states that are relative to the
            merged config rather than absolute values (the AIMD freeze
            pins floor/ceiling to whatever the merged initial margin
            is, so it composes with the margin-off component).
    """

    name: str
    title: str
    summary: str
    pipeline_off: tuple[tuple[str, object], ...] = ()
    adaptive_off: tuple[tuple[str, object], ...] = ()
    adaptive_post: Callable[[AdaptiveConfig], AdaptiveConfig] | None = None

    @property
    def retrains_controller(self) -> bool:
        """Whether disabling this component needs its own offline build."""
        return bool(self.pipeline_off)


#: Every registered mechanism, in report order.  The off-state semantics
#: live here and nowhere else.
COMPONENTS: tuple[Component, ...] = (
    Component(
        name="asymmetric_loss",
        title="asymmetric loss",
        summary=(
            "Penalize under-prediction alpha-fold during training and "
            "weight under-predicted samples in the online RLS update "
            "(paper §3.3/Fig. 20); off = symmetric least squares."
        ),
        pipeline_off=(("alpha", 1.0),),
        adaptive_off=(("under_weight", 1.0),),
    ),
    Component(
        name="safety_margin",
        title="safety margin",
        summary=(
            "Inflate predictions by a safety margin before picking a "
            "frequency (paper §3.4); off = margin pinned to zero, "
            "offline and online."
        ),
        pipeline_off=(("margin", 0.0),),
        adaptive_off=(
            ("margin_initial", 0.0),
            ("margin_floor", 0.0),
            ("margin_ceiling", 0.0),
        ),
    ),
    Component(
        name="slicing",
        title="program slicing",
        summary=(
            "Predict from a dependence-pruned slice instead of "
            "re-running the whole program (paper §3.2); off = the "
            "predictor executes the full instrumented program "
            "(certification downgraded to warn: the full body need not "
            "pass the slice purity rule)."
        ),
        pipeline_off=(("slice_mode", "full"), ("certify", "warn")),
    ),
    Component(
        name="recalibration",
        title="online recalibration",
        summary=(
            "Fold observed residuals back into the anchor models with "
            "weighted RLS; off = offline coefficients frozen for the "
            "whole run."
        ),
        adaptive_off=(("recalibrate", False),),
    ),
    Component(
        name="bound_skip",
        title="certifier bound-skip",
        summary=(
            "Use the slice certificate's worst-case cost bound in the "
            "decision path: skip the slice (pin fmax) when even the "
            "bound cannot fit, and keep its unspent remainder reserved; "
            "off = the certificate is ignored at run time."
        ),
        adaptive_off=(("bound_skip", False),),
    ),
    Component(
        name="aimd_margin",
        title="AIMD margin adaptation",
        summary=(
            "Widen the margin multiplicatively on misses and decay it "
            "while compliant; off = margin frozen at its initial value "
            "(the paper's fixed 10% on the baseline)."
        ),
        adaptive_post=lambda cfg: replace(
            cfg,
            margin_floor=cfg.margin_initial,
            margin_ceiling=cfg.margin_initial,
        ),
    ),
    Component(
        name="fallback",
        title="fallback arming",
        summary=(
            "Arm the drift detector's deadline-safe fallback mode; off "
            "= prediction keeps driving through detected drift."
        ),
        adaptive_off=(("fallback_armed", False),),
    ),
)

_BY_NAME = {component.name: component for component in COMPONENTS}


def component_names() -> tuple[str, ...]:
    """Registered component names, in report order."""
    return tuple(component.name for component in COMPONENTS)


def get_component(name: str) -> Component:
    """Look a component up by name.

    Raises:
        KeyError: With the valid names, when ``name`` is unknown.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; registered: "
            f"{', '.join(component_names())}"
        ) from None


def baseline_pipeline(
    n_profile_jobs: int = 60, switch_samples: int = 40
) -> PipelineConfig:
    """The all-components-on offline configuration.

    Paper defaults, sized down for the matrix (controllers are trained
    once per distinct pipeline config and shared across scenarios).
    """
    return PipelineConfig(
        n_profile_jobs=n_profile_jobs, switch_samples=switch_samples
    )


def baseline_adaptive() -> AdaptiveConfig:
    """The all-components-on online configuration.

    ``bound_skip=True`` arms the one mechanism the historical adaptive
    path left off, so the ablation can measure it rather than report a
    structural zero.
    """
    return AdaptiveConfig(bound_skip=True)


def configs_without(
    disabled: Iterable[str],
    pipeline: PipelineConfig | None = None,
    adaptive: AdaptiveConfig | None = None,
) -> tuple[PipelineConfig, AdaptiveConfig]:
    """Baseline configs with the named components switched off.

    Overrides merge in registry order, so pairwise variants are
    deterministic regardless of the order callers name components in.

    Raises:
        KeyError: When a name is not registered.
    """
    pipeline = pipeline if pipeline is not None else baseline_pipeline()
    adaptive = adaptive if adaptive is not None else baseline_adaptive()
    wanted = set(disabled)
    for name in wanted:
        get_component(name)  # validate before mutating anything
    for component in COMPONENTS:
        if component.name not in wanted:
            continue
        if component.pipeline_off:
            pipeline = replace(pipeline, **dict(component.pipeline_off))
        if component.adaptive_off:
            adaptive = replace(adaptive, **dict(component.adaptive_off))
    for component in COMPONENTS:
        if component.name in wanted and component.adaptive_post is not None:
            adaptive = component.adaptive_post(adaptive)
    return pipeline, adaptive


def batch_governor(batch_size: int) -> str:
    """Governor name for the §7 batched-prediction variant.

    The one enumeration the benchmarks share with
    :data:`~repro.analysis.harness.GOVERNOR_NAMES`'s
    ``prediction-batch<N>`` convention.
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    return f"prediction-batch{batch_size}"


@dataclass(frozen=True)
class Platform:
    """A simulated platform the ablations (and benchmarks) can target."""

    name: str
    opps: Callable[[], OppTable]
    power: Callable[[], PowerModel]


#: The two XU3 clusters the paper evaluates on.  Benchmarks that ablate
#: "which cluster" draw the models from here so platform identity is
#: declared once.
PLATFORMS: dict[str, Platform] = {
    "a7": Platform(
        name="a7",
        opps=default_xu3_a7_table,
        power=default_a7_power_model,
    ),
    "a15": Platform(
        name="a15",
        opps=default_xu3_a15_table,
        power=default_a15_power_model,
    ),
}
