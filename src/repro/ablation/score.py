"""Scoring: per-variant deltas vs. baseline and the importance ranking.

Because every variant of a (workload, scenario) cell replayed the same
job inputs, jitter draws, and switch latencies (the runner's seed paths
exclude the variant), deltas are *paired* comparisons: job ``i`` under
the variant is the same job as job ``i`` under the baseline.  The
scorer exploits that twice:

- **bootstrap CIs** resample job indices (600 paired resamples per
  cell, seeded from the matrix root so reports are byte-reproducible)
  and read the 2.5/97.5 percentiles of the resampled delta;
- **decision provenance** aligns the two runs' audit logs job-by-job
  with :func:`~repro.telemetry.provenance.diff_decisions`, so each
  delta arrives with the dominant divergence class (margin-change,
  mode-change, beta-change, ...) explaining *why* the variant decided
  differently, not just that it did.

A component's **importance** is the mean across cells of
``|Δ miss rate| + |Δ energy/job (fraction)| + |Δ savings fraction|`` —
three dimensionless fractions, so components that move reliability and
components that move energy compete on one axis.  The ranked table is
the deliverable: it orders the registry by measured consequence.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.ablation.registry import get_component
from repro.ablation.runner import AblationResult, CellResult
from repro.fleet.seeding import derive_seed
from repro.telemetry.provenance import diff_decisions

__all__ = [
    "AblationReport",
    "BaselineStats",
    "CellDelta",
    "ComponentScore",
    "score_ablation",
]

#: Paired bootstrap resamples per cell.  600 keeps 95% CI endpoints
#: stable to ~a percent of the interval width at the matrix's job
#: counts, and the whole scoring pass under a second.
BOOTSTRAP_RESAMPLES = 600


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]); NaN when empty."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _nan_to_zero(value: float) -> float:
    return 0.0 if math.isnan(value) else value


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


@dataclass(frozen=True)
class CellDelta:
    """One variant vs. baseline in one (workload, scenario) cell.

    Attributes:
        workload: Benchmark name.
        scenario: Scenario name.
        variant: Variant name.
        miss_rate_delta: Variant miss rate minus baseline miss rate
            (fraction; positive = variant misses more).
        miss_rate_ci: 95% paired-bootstrap interval for the miss-rate
            delta.
        energy_delta_frac: Relative change in mean energy per job
            (positive = variant spends more).
        energy_ci_frac: 95% paired-bootstrap interval for the relative
            energy change.
        p05_slack_delta_s: Change in the 5th-percentile job slack
            (negative = the variant's worst jobs run closer to, or past,
            the deadline).
        savings_frac_delta: Change in the ledger's normalized saving vs.
            the all-fmax counterfactual.
        divergences: Aligned jobs whose decisions differ from baseline.
        top_divergence: Most common divergence class (empty when the
            decision streams are identical).
    """

    workload: str
    scenario: str
    variant: str
    miss_rate_delta: float
    miss_rate_ci: tuple[float, float]
    energy_delta_frac: float
    energy_ci_frac: tuple[float, float]
    p05_slack_delta_s: float
    savings_frac_delta: float
    divergences: int
    top_divergence: str

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scenario": self.scenario,
            "variant": self.variant,
            "miss_rate_delta": self.miss_rate_delta,
            "miss_rate_ci": list(self.miss_rate_ci),
            "energy_delta_frac": self.energy_delta_frac,
            "energy_ci_frac": list(self.energy_ci_frac),
            "p05_slack_delta_s": self.p05_slack_delta_s,
            "savings_frac_delta": _nan_to_zero(self.savings_frac_delta),
            "divergences": self.divergences,
            "top_divergence": self.top_divergence,
        }


@dataclass(frozen=True)
class ComponentScore:
    """One variant's aggregate standing across every cell it ran in.

    Attributes:
        variant: Variant name (``no-<component>`` or a pairwise name).
        disabled: The components switched off.
        title: Human label (single-component variants only; pairwise
            joins the titles).
        importance: Mean over cells of ``|Δ miss rate| + |Δ energy
            fraction| + |Δ savings fraction|`` — the ranking key.
        miss_rate_delta: Mean miss-rate delta across cells (fraction).
        miss_rate_ci: Aggregate 95% bootstrap interval (cells resampled
            jointly, then averaged).
        energy_delta_frac: Mean relative energy-per-job change.
        energy_ci_frac: Aggregate 95% bootstrap interval.
        p05_slack_delta_s: Mean change in 5th-percentile slack.
        savings_frac_delta: Mean change in the normalized saving.
        divergences: Total diverging decisions across cells.
        top_divergence: Most common divergence class across cells.
        cells: The per-cell deltas behind the aggregates.
    """

    variant: str
    disabled: tuple[str, ...]
    title: str
    importance: float
    miss_rate_delta: float
    miss_rate_ci: tuple[float, float]
    energy_delta_frac: float
    energy_ci_frac: tuple[float, float]
    p05_slack_delta_s: float
    savings_frac_delta: float
    divergences: int
    top_divergence: str
    cells: tuple[CellDelta, ...]

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "disabled": list(self.disabled),
            "title": self.title,
            "importance": self.importance,
            "miss_rate_delta": self.miss_rate_delta,
            "miss_rate_ci": list(self.miss_rate_ci),
            "energy_delta_frac": self.energy_delta_frac,
            "energy_ci_frac": list(self.energy_ci_frac),
            "p05_slack_delta_s": self.p05_slack_delta_s,
            "savings_frac_delta": _nan_to_zero(self.savings_frac_delta),
            "divergences": self.divergences,
            "top_divergence": self.top_divergence,
            "cells": [cell.as_dict() for cell in self.cells],
        }


@dataclass(frozen=True)
class BaselineStats:
    """The all-components-on reference the deltas are measured against."""

    miss_rate: float
    energy_per_job_j: float
    savings_frac: float
    p05_slack_s: float
    jobs: int

    def as_dict(self) -> dict:
        return {
            "miss_rate": self.miss_rate,
            "energy_per_job_j": self.energy_per_job_j,
            "savings_frac": _nan_to_zero(self.savings_frac),
            "p05_slack_s": self.p05_slack_s,
            "jobs": self.jobs,
        }


@dataclass(frozen=True)
class AblationReport:
    """The scored matrix: baseline stats plus the ranked variants."""

    workloads: tuple[str, ...]
    scenarios: tuple[str, ...]
    seed: int
    n_jobs: int
    baseline: BaselineStats
    scores: tuple[ComponentScore, ...]
    dropped_duplicates: tuple[str, ...] = ()

    def score_for(self, variant: str) -> ComponentScore:
        for score in self.scores:
            if score.variant == variant:
                return score
        raise KeyError(
            f"no variant {variant!r}; have "
            f"{[score.variant for score in self.scores]}"
        )

    def as_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "scenarios": list(self.scenarios),
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "baseline": self.baseline.as_dict(),
            "ranking": [score.as_dict() for score in self.scores],
            "dropped_duplicates": list(self.dropped_duplicates),
        }


def _paired_bootstrap(
    base: CellResult, variant: CellResult, rng: random.Random, resamples: int
) -> tuple[tuple[float, float], tuple[float, float]]:
    """95% CIs for (miss-rate delta, relative energy delta), paired."""
    n = min(base.n_jobs, variant.n_jobs)
    miss_deltas: list[float] = []
    energy_deltas: list[float] = []
    for _ in range(resamples):
        base_miss = 0
        var_miss = 0
        base_energy = 0.0
        var_energy = 0.0
        for _ in range(n):
            i = rng.randrange(n)
            base_miss += base.job_missed[i]
            var_miss += variant.job_missed[i]
            base_energy += base.job_energy_j[i]
            var_energy += variant.job_energy_j[i]
        miss_deltas.append((var_miss - base_miss) / n)
        if base_energy > 0:
            energy_deltas.append(var_energy / base_energy - 1.0)
    miss_ci = (
        _percentile(miss_deltas, 2.5),
        _percentile(miss_deltas, 97.5),
    )
    energy_ci = (
        _percentile(energy_deltas, 2.5),
        _percentile(energy_deltas, 97.5),
    )
    return miss_ci, energy_ci


def _top_kind(kinds: dict[str, int]) -> str:
    if not kinds:
        return ""
    # Deterministic tie-break: count desc, then name.
    return min(kinds, key=lambda kind: (-kinds[kind], kind))


def _cell_delta(
    base: CellResult, variant: CellResult, seed: int, resamples: int
) -> CellDelta:
    rng = random.Random(
        derive_seed(
            seed,
            "ablate",
            "bootstrap",
            base.workload,
            base.scenario,
            variant.variant,
        )
    )
    miss_ci, energy_ci = _paired_bootstrap(base, variant, rng, resamples)
    diff = diff_decisions(
        base.decisions,
        variant.decisions,
        run=f"{base.workload}/{base.scenario}",
    )
    energy_delta_frac = (
        variant.energy_per_job_j / base.energy_per_job_j - 1.0
        if base.energy_per_job_j > 0
        else float("nan")
    )
    return CellDelta(
        workload=base.workload,
        scenario=base.scenario,
        variant=variant.variant,
        miss_rate_delta=variant.miss_rate - base.miss_rate,
        miss_rate_ci=miss_ci,
        energy_delta_frac=energy_delta_frac,
        energy_ci_frac=energy_ci,
        p05_slack_delta_s=(
            _percentile(variant.job_slack_s, 5.0)
            - _percentile(base.job_slack_s, 5.0)
        ),
        savings_frac_delta=(
            variant.savings_frac - base.savings_frac
            if not math.isnan(variant.savings_frac)
            and not math.isnan(base.savings_frac)
            else float("nan")
        ),
        divergences=len(diff.divergences),
        top_divergence=_top_kind(diff.kinds),
    )


def _score_title(disabled: tuple[str, ...]) -> str:
    return " + ".join(get_component(name).title for name in disabled)


def score_ablation(
    result: AblationResult, resamples: int = BOOTSTRAP_RESAMPLES
) -> AblationReport:
    """Score an executed matrix into the ranked report.

    Raises:
        ValueError: When the result is missing its baseline cells.
    """
    plan = result.plan
    scenario_names = tuple(s.name for s in plan.scenarios)
    baselines: dict[tuple[str, str], CellResult] = {}
    for workload in plan.workloads:
        for scenario in scenario_names:
            baselines[(workload, scenario)] = result.cell(
                workload, scenario, "baseline"
            )
    if not baselines:
        raise ValueError("empty matrix: no baseline cells to score against")

    base_cells = list(baselines.values())
    baseline = BaselineStats(
        miss_rate=_mean([cell.miss_rate for cell in base_cells]),
        energy_per_job_j=_mean(
            [cell.energy_per_job_j for cell in base_cells]
        ),
        savings_frac=_mean(
            [
                _nan_to_zero(cell.savings_frac)
                for cell in base_cells
            ]
        ),
        p05_slack_s=_mean(
            [_percentile(cell.job_slack_s, 5.0) for cell in base_cells]
        ),
        jobs=sum(cell.n_jobs for cell in base_cells),
    )

    scores: list[ComponentScore] = []
    for variant in plan.variants:
        if variant.is_baseline:
            continue
        deltas = [
            _cell_delta(
                baselines[(workload, scenario)],
                result.cell(workload, scenario, variant.name),
                plan.seed,
                resamples,
            )
            for workload in plan.workloads
            for scenario in scenario_names
        ]
        importance = _mean(
            [
                abs(delta.miss_rate_delta)
                + abs(_nan_to_zero(delta.energy_delta_frac))
                + abs(_nan_to_zero(delta.savings_frac_delta))
                for delta in deltas
            ]
        )
        kind_totals: dict[str, int] = {}
        for delta in deltas:
            if delta.top_divergence:
                kind_totals[delta.top_divergence] = (
                    kind_totals.get(delta.top_divergence, 0)
                    + delta.divergences
                )
        scores.append(
            ComponentScore(
                variant=variant.name,
                disabled=variant.disabled,
                title=_score_title(variant.disabled),
                importance=importance,
                miss_rate_delta=_mean(
                    [delta.miss_rate_delta for delta in deltas]
                ),
                miss_rate_ci=(
                    _mean([delta.miss_rate_ci[0] for delta in deltas]),
                    _mean([delta.miss_rate_ci[1] for delta in deltas]),
                ),
                energy_delta_frac=_mean(
                    [
                        _nan_to_zero(delta.energy_delta_frac)
                        for delta in deltas
                    ]
                ),
                energy_ci_frac=(
                    _mean([delta.energy_ci_frac[0] for delta in deltas]),
                    _mean([delta.energy_ci_frac[1] for delta in deltas]),
                ),
                p05_slack_delta_s=_mean(
                    [delta.p05_slack_delta_s for delta in deltas]
                ),
                savings_frac_delta=_mean(
                    [
                        _nan_to_zero(delta.savings_frac_delta)
                        for delta in deltas
                    ]
                ),
                divergences=sum(delta.divergences for delta in deltas),
                top_divergence=_top_kind(kind_totals),
                cells=tuple(deltas),
            )
        )

    # The ranking: biggest measured consequence first; name breaks ties
    # so the report is stable when two components tie at zero.
    scores.sort(key=lambda score: (-score.importance, score.variant))
    return AblationReport(
        workloads=plan.workloads,
        scenarios=scenario_names,
        seed=plan.seed,
        n_jobs=plan.n_jobs,
        baseline=baseline,
        scores=tuple(scores),
        dropped_duplicates=plan.dropped_duplicates,
    )
