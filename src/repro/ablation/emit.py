"""Artifact emission: ranked tables, JSON/CSV/markdown, gate metrics.

One executed matrix produces a small artifact family under the output
directory:

- ``ablation_results.json`` — the raw :class:`~repro.ablation.runner.
  AblationResult` (plan + per-cell records, decision logs included),
  always written: ``repro ablate report`` re-scores from it without
  re-simulating anything.
- ``ablation.json`` / ``ablation.csv`` / ``ablation.md`` — the scored
  report in machine-, spreadsheet-, and human-shaped forms (opt-in via
  the CLI's ``--json/--csv/--markdown``).
- ``ablate.summary.metrics.json`` — the run in the telemetry metrics
  schema, so the standard ``repro report DIR --gate`` pipeline (and the
  committed ``BENCH_ablate_baseline.json``) holds the ablation's
  conclusions — baseline health plus every component's measured
  importance — to CI regression gating like any other trace.

Everything here is a pure function of the scored report, so artifacts
are byte-identical whenever the matrix is (which the runner guarantees
across worker counts).
"""

from __future__ import annotations

import json
import pathlib

from repro.ablation.runner import AblationResult
from repro.ablation.score import AblationReport, ComponentScore
from repro.analysis.render import format_table

__all__ = [
    "metrics_payload",
    "ranked_table",
    "report_csv",
    "report_markdown",
    "write_artifacts",
]


def _pct(value: float) -> str:
    return f"{100.0 * value:+.2f}"


def _ci(ci: tuple[float, float]) -> str:
    return f"[{100.0 * ci[0]:+.2f}, {100.0 * ci[1]:+.2f}]"


def ranked_table(report: AblationReport) -> str:
    """The ranked component-importance table (the CLI's stdout)."""
    rows = []
    for rank, score in enumerate(report.scores, start=1):
        rows.append(
            (
                rank,
                score.variant,
                f"{score.importance:.4f}",
                _pct(score.miss_rate_delta),
                _ci(score.miss_rate_ci),
                _pct(score.energy_delta_frac),
                _ci(score.energy_ci_frac),
                _pct(score.savings_frac_delta),
                score.divergences,
                score.top_divergence or "-",
            )
        )
    table = format_table(
        [
            "rank",
            "variant",
            "importance",
            "dmiss[pp]",
            "dmiss 95% CI",
            "denergy[%]",
            "denergy 95% CI",
            "dsavings[pp]",
            "div",
            "top divergence",
        ],
        rows,
        title=(
            "component importance "
            f"(workloads: {', '.join(report.workloads)}; "
            f"scenarios: {', '.join(report.scenarios)}; "
            f"seed {report.seed}, {report.n_jobs} jobs/cell)"
        ),
    )
    base = report.baseline
    footer = (
        f"baseline: miss_rate {base.miss_rate:.4f}, "
        f"energy/job {base.energy_per_job_j:.4g} J, "
        f"savings {base.savings_frac:.4f}, "
        f"p05 slack {base.p05_slack_s * 1e3:.3f} ms "
        f"({base.jobs} jobs)"
    )
    lines = [table, footer]
    if report.dropped_duplicates:
        lines.append(
            "dropped duplicate variants: "
            + "; ".join(report.dropped_duplicates)
        )
    return "\n".join(lines)


def report_csv(report: AblationReport) -> str:
    """Per-cell rows plus ``ALL`` aggregate rows, spreadsheet-shaped."""
    lines = [
        "variant,workload,scenario,importance,miss_rate_delta,"
        "miss_ci_lo,miss_ci_hi,energy_delta_frac,energy_ci_lo,"
        "energy_ci_hi,p05_slack_delta_s,savings_frac_delta,"
        "divergences,top_divergence"
    ]

    def row(
        variant: str,
        workload: str,
        scenario: str,
        importance: str,
        miss: float,
        miss_ci: tuple[float, float],
        energy: float,
        energy_ci: tuple[float, float],
        slack: float,
        savings: float,
        divergences: int,
        kind: str,
    ) -> str:
        return ",".join(
            [
                variant,
                workload,
                scenario,
                importance,
                f"{miss:.6f}",
                f"{miss_ci[0]:.6f}",
                f"{miss_ci[1]:.6f}",
                f"{energy:.6f}",
                f"{energy_ci[0]:.6f}",
                f"{energy_ci[1]:.6f}",
                f"{slack:.6g}",
                f"{savings:.6f}",
                str(divergences),
                kind,
            ]
        )

    for score in report.scores:
        lines.append(
            row(
                score.variant,
                "ALL",
                "ALL",
                f"{score.importance:.6f}",
                score.miss_rate_delta,
                score.miss_rate_ci,
                score.energy_delta_frac,
                score.energy_ci_frac,
                score.p05_slack_delta_s,
                score.savings_frac_delta,
                score.divergences,
                score.top_divergence,
            )
        )
        for cell in score.cells:
            lines.append(
                row(
                    score.variant,
                    cell.workload,
                    cell.scenario,
                    "",
                    cell.miss_rate_delta,
                    cell.miss_rate_ci,
                    (
                        cell.energy_delta_frac
                        if cell.energy_delta_frac == cell.energy_delta_frac
                        else 0.0
                    ),
                    cell.energy_ci_frac,
                    cell.p05_slack_delta_s,
                    (
                        cell.savings_frac_delta
                        if cell.savings_frac_delta == cell.savings_frac_delta
                        else 0.0
                    ),
                    cell.divergences,
                    cell.top_divergence,
                )
            )
    return "\n".join(lines) + "\n"


def _md_score_row(rank: int, score: ComponentScore) -> str:
    return (
        f"| {rank} | `{score.variant}` | {score.importance:.4f} "
        f"| {_pct(score.miss_rate_delta)} {_ci(score.miss_rate_ci)} "
        f"| {_pct(score.energy_delta_frac)} {_ci(score.energy_ci_frac)} "
        f"| {_pct(score.savings_frac_delta)} "
        f"| {score.divergences} | {score.top_divergence or '—'} |"
    )


def report_markdown(report: AblationReport) -> str:
    """The scored matrix as a standalone markdown document."""
    base = report.baseline
    lines = [
        "# Ablation report",
        "",
        f"- workloads: {', '.join(report.workloads)}",
        f"- scenarios: {', '.join(report.scenarios)}",
        f"- seed: {report.seed}; jobs/cell: {report.n_jobs}",
        (
            f"- baseline (all components on): miss rate "
            f"{base.miss_rate:.4f}, energy/job {base.energy_per_job_j:.4g} J, "
            f"savings {base.savings_frac:.4f}, p05 slack "
            f"{base.p05_slack_s * 1e3:.3f} ms over {base.jobs} jobs"
        ),
        "",
        "Deltas are *variant minus baseline* on identical job streams "
        "(paired seeds), with 95% paired-bootstrap CIs in brackets; "
        "`dmiss`/`dsavings` are percentage points, `denergy` percent. "
        "`top divergence` is the dominant decision-provenance class "
        "explaining how the variant decided differently.",
        "",
        "| rank | variant | importance | dmiss [pp] | denergy [%] "
        "| dsavings [pp] | diverging jobs | top divergence |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for rank, score in enumerate(report.scores, start=1):
        lines.append(_md_score_row(rank, score))
    lines.append("")
    lines.append("## What each disabled component is")
    lines.append("")
    from repro.ablation.registry import get_component

    seen: set[str] = set()
    for score in report.scores:
        for name in score.disabled:
            if name in seen:
                continue
            seen.add(name)
            component = get_component(name)
            lines.append(f"- **{component.title}** (`{name}`): "
                         f"{component.summary}")
    lines.append("")
    lines.append("## Per-cell deltas")
    lines.append("")
    lines.append(
        "| variant | workload | scenario | dmiss [pp] | denergy [%] "
        "| dp05 slack [ms] | divergences | top divergence |"
    )
    lines.append("| --- | --- | --- | --- | --- | --- | --- | --- |")
    for score in report.scores:
        for cell in score.cells:
            energy = (
                cell.energy_delta_frac
                if cell.energy_delta_frac == cell.energy_delta_frac
                else 0.0
            )
            lines.append(
                f"| `{score.variant}` | {cell.workload} | {cell.scenario} "
                f"| {_pct(cell.miss_rate_delta)} | {_pct(energy)} "
                f"| {cell.p05_slack_delta_s * 1e3:+.3f} "
                f"| {cell.divergences} | {cell.top_divergence or '—'} |"
            )
    if report.dropped_duplicates:
        lines.append("")
        lines.append(
            "Dropped duplicate variants (merged configs identical to an "
            "earlier variant): "
            + "; ".join(f"`{name}`" for name in report.dropped_duplicates)
        )
    lines.append("")
    return "\n".join(lines)


def metrics_payload(result: AblationResult, report: AblationReport) -> dict:
    """The run in the telemetry metrics schema, for ``report --gate``.

    Counters pin the matrix shape; gauges pin the baseline's health and
    every single-component variant's measured importance and headline
    deltas, so the committed ``BENCH_ablate_baseline.json`` fails CI
    when a code change silently rewrites which components matter.
    """
    base = report.baseline
    gauges: dict[str, float] = {
        "ablate.baseline.miss_rate": base.miss_rate,
        "ablate.baseline.energy_per_job_j": base.energy_per_job_j,
        "ablate.baseline.savings_frac": base.savings_frac,
        "ablate.baseline.p05_slack_s": base.p05_slack_s,
    }
    for score in report.scores:
        if len(score.disabled) != 1:
            continue  # pairwise variants are exploratory, not gated
        component = score.disabled[0]
        gauges[f"ablate.{component}.importance"] = score.importance
        gauges[f"ablate.{component}.miss_rate_delta_pp"] = (
            100.0 * score.miss_rate_delta
        )
        gauges[f"ablate.{component}.energy_delta_frac"] = (
            score.energy_delta_frac
        )
    return {
        "counters": {
            "ablate.cells": float(len(result.cells)),
            "ablate.components": float(
                sum(
                    1
                    for variant in result.plan.variants
                    if len(variant.disabled) == 1
                )
            ),
            "ablate.jobs": float(
                sum(cell.n_jobs for cell in result.cells)
            ),
        },
        "gauges": gauges,
        "histograms": {},
    }


def write_artifacts(
    result: AblationResult,
    report: AblationReport,
    out_dir: pathlib.Path | str,
    json_report: bool = False,
    csv_report: bool = False,
    markdown_report: bool = False,
) -> list[pathlib.Path]:
    """Write the artifact family; returns the paths written."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []

    raw = out / "ablation_results.json"
    raw.write_text(json.dumps(result.as_dict(), sort_keys=True))
    written.append(raw)

    metrics = out / "ablate.summary.metrics.json"
    metrics.write_text(
        json.dumps(metrics_payload(result, report), indent=2, sort_keys=True)
    )
    written.append(metrics)

    if json_report:
        path = out / "ablation.json"
        path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True)
        )
        written.append(path)
    if csv_report:
        path = out / "ablation.csv"
        path.write_text(report_csv(report))
        written.append(path)
    if markdown_report:
        path = out / "ablation.md"
        path.write_text(report_markdown(report))
        written.append(path)
    return written
