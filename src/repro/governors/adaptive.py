"""Self-correcting wrapper around the paper's predictive governor.

The paper trains its execution-time model once, offline (Fig. 13); this
governor closes the loop at run time.  Per job it:

1. runs the prediction slice exactly like the frozen governor (the slice
   cost is charged identically, so comparisons are fair);
2. while **predicting**, picks the frequency from online-recalibrated
   anchor models under an adaptive safety margin;
3. after the job, compares observed to predicted time, feeds the signed
   relative residual to a streaming monitor, an under-prediction drift
   detector, and a recursive-least-squares update of both anchor models
   (asymmetry approximated by per-sample weighting);
4. when the detector flags drift, **falls back** to a conservative
   deadline-safe policy (the ``performance`` governor by default) while
   the slice keeps running in shadow, so recalibration continues on live
   observations;
5. re-engages prediction once the shadow residuals have stabilised for a
   cooldown period.

The feedback computation itself is not free: :meth:`on_job_end` returns
a :class:`~repro.platform.cpu.Work` bill (O(features²) for the RLS
update) that the executor charges as predictor time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.governors.base import Decision, Governor, JobContext
from repro.governors.performance import PerformanceGovernor
from repro.governors.predictive import PredictiveGovernor
from repro.online.drift import (
    DriftDetector,
    PageHinkleyDetector,
    detector_from_state,
)
from repro.online.predictor import OnlineTimePredictor
from repro.online.recalibrate import AdaptiveMargin
from repro.online.residuals import ResidualMonitor, ResidualSnapshot
from repro.platform.board import Board
from repro.platform.cpu import Work
from repro.telemetry.provenance import build_provenance

if TYPE_CHECKING:  # avoid a circular import with the runtime package
    from repro.runtime.records import JobRecord

__all__ = ["AdaptiveMode", "AdaptiveConfig", "AdaptiveGovernor"]

_EPS = 1e-12


class AdaptiveMode(enum.Enum):
    """Which policy is currently driving frequency decisions."""

    PREDICT = "predict"
    FALLBACK = "fallback"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the online adaptation loop.

    Attributes:
        rls_forgetting: RLS forgetting factor (0.98 remembers ~50 jobs).
        rls_p0: Initial RLS covariance — trust in the offline fit.
        under_weight: RLS sample weight for under-predicted jobs (online
            stand-in for the paper's asymmetric penalty alpha).
        ph_delta: Page–Hinkley mean-shift tolerance (relative-residual
            units; shifts below this are noise).
        ph_threshold: Page–Hinkley alarm level.
        warmup_jobs: Observed jobs before drift detection may alarm.
        cooldown_jobs: Minimum jobs spent in fallback before re-engaging.
        reengage_abs_residual: Shadow |relative residual| EWMA must fall
            below this before prediction re-engages.
        margin_initial: Starting safety margin (paper: 0.10).
        margin_floor: Smallest margin the decay may reach.
        margin_ceiling: Largest margin a miss burst may reach.
        target_miss_rate: Smoothed miss rate the margin loop aims for.
        update_base_cycles: Fixed per-job cost of the feedback step
            (monitor + detector updates), in CPU cycles.
        update_cycles_per_feature_sq: RLS update cost per feature², in
            CPU cycles (the rank-1 covariance update is O(n²)).
        recalibrate: Feed observed residuals back into the anchor
            models (the online RLS update).  False freezes the offline
            coefficients — drift is still *detected* but never learned
            away — and drops the O(features²) part of the feedback
            bill.  Exists for ablations.
        fallback_armed: Allow the mode machine to leave PREDICT.  False
            disarms both the drift detector's alarm and external
            :meth:`AdaptiveGovernor.arm_fallback` calls, so prediction
            keeps driving through drift.  Exists for ablations.
        bound_skip: Use a tight slice-cost certificate in the predict
            path the way the frozen governor does: pre-flight the
            certified worst case (pin fmax without slicing when even
            the bound cannot fit) and keep the bound's unspent
            remainder reserved while choosing.  Off by default — the
            historical adaptive path never consulted the certificate —
            and armed by the ablation baseline so its value is
            measurable.
    """

    rls_forgetting: float = 0.98
    rls_p0: float = 0.05
    under_weight: float = 25.0
    ph_delta: float = 0.05
    ph_threshold: float = 0.4
    warmup_jobs: int = 10
    cooldown_jobs: int = 10
    reengage_abs_residual: float = 0.10
    margin_initial: float = 0.10
    margin_floor: float = 0.04
    margin_ceiling: float = 0.40
    target_miss_rate: float = 0.02
    update_base_cycles: float = 15_000.0
    update_cycles_per_feature_sq: float = 40.0
    recalibrate: bool = True
    fallback_armed: bool = True
    bound_skip: bool = False

    def __post_init__(self) -> None:
        if self.warmup_jobs < 1:
            raise ValueError("warmup_jobs must be >= 1")
        if self.cooldown_jobs < 1:
            raise ValueError("cooldown_jobs must be >= 1")
        if self.reengage_abs_residual <= 0:
            raise ValueError("reengage_abs_residual must be positive")
        if self.update_base_cycles < 0 or self.update_cycles_per_feature_sq < 0:
            raise ValueError("update cost cycles must be non-negative")


class AdaptiveGovernor(Governor):
    """Predictive governor + drift detection + recalibration + fallback.

    Composes (rather than subclasses) the frozen
    :class:`~repro.governors.predictive.PredictiveGovernor`: the inner
    governor supplies slice execution, switch estimation, and the
    frequency choice, while this wrapper owns the mode machine and the
    feedback loop.  Placement is always sequential — the feedback needs
    the slice features of the *current* job.

    Attributes:
        inner: Predictive governor wired to the online predictor.
        predictor: The recalibrating execution-time predictor.
        fallback: Deadline-safe governor used while drift is flagged.
        monitor: Streaming residual statistics.
        detector: Under-prediction drift detector.
        mode: Current :class:`AdaptiveMode`.
    """

    def __init__(
        self,
        predictive: PredictiveGovernor,
        fallback: Governor | None = None,
        config: AdaptiveConfig | None = None,
        detector: DriftDetector | None = None,
    ):
        self.config = config if config is not None else AdaptiveConfig()
        cfg = self.config
        offline = predictive.predictor
        if isinstance(offline, OnlineTimePredictor):
            # Already online (e.g. rebuilt from persisted state).
            self.predictor = offline
        else:
            self.predictor = OnlineTimePredictor(
                offline,
                margin=AdaptiveMargin(
                    initial=cfg.margin_initial,
                    floor=cfg.margin_floor,
                    ceiling=cfg.margin_ceiling,
                    target_miss_rate=cfg.target_miss_rate,
                ),
                lam=cfg.rls_forgetting,
                p0=cfg.rls_p0,
                under_weight=cfg.under_weight,
            )
        self.inner = PredictiveGovernor(
            slice=predictive.slice,
            predictor=self.predictor,
            dvfs=predictive.dvfs,
            switch_table=predictive.switch_table,
            interpreter=predictive.interpreter,
            certificate=predictive.certificate,
        )
        self.fallback = (
            fallback
            if fallback is not None
            else PerformanceGovernor(predictive.dvfs.opps)
        )
        self.monitor = ResidualMonitor()
        self.detector = (
            detector
            if detector is not None
            else PageHinkleyDetector(
                delta=cfg.ph_delta,
                threshold=cfg.ph_threshold,
                min_samples=cfg.warmup_jobs,
            )
        )
        self.mode = AdaptiveMode.PREDICT
        self.jobs_in_mode = 0
        self.drift_events = 0
        # Sampled governors (interactive/conservative fallbacks) need the
        # executor's utilization timer; expose the fallback's period.
        self.timer_period_s = self.fallback.timer_period_s
        self._pending: tuple[Any, Any] | None = None

    @classmethod
    def from_controller(
        cls,
        controller,
        fallback: Governor | None = None,
        config: AdaptiveConfig | None = None,
        interpreter=None,
    ) -> "AdaptiveGovernor":
        """Build from a trained offline controller (the common path)."""
        return cls(
            predictive=controller.governor(interpreter),
            fallback=fallback,
            config=config,
        )

    @property
    def name(self) -> str:
        return "adaptive"

    @property
    def predicting(self) -> bool:
        return self.mode is AdaptiveMode.PREDICT

    def residuals(self) -> ResidualSnapshot:
        """Current residual statistics (for experiments and dashboards)."""
        return self.monitor.snapshot()

    # -- decision path ---------------------------------------------------------
    def start(self, board: Board, budget_s: float) -> None:
        self.fallback.start(board, budget_s)

    def bind_telemetry(self, telemetry) -> None:
        """Forward the run's telemetry to the composed governors too."""
        super().bind_telemetry(telemetry)
        self.inner.bind_telemetry(telemetry)
        self.fallback.bind_telemetry(telemetry)

    def bind_hostprof(self, hostprof) -> None:
        """Forward the host profiler so the inner predictive governor's
        sub-phase timers (features/predict/ladder) still fire when it is
        driven through the adaptive wrapper."""
        super().bind_hostprof(hostprof)
        self.inner.bind_hostprof(hostprof)
        self.fallback.bind_hostprof(hostprof)

    def decide(self, ctx: JobContext) -> Decision | None:
        """Run the slice (always — shadow predictions feed recalibration),
        then decide via prediction or the fallback policy."""
        board = ctx.board
        telemetry = self.telemetry
        bound_work = None
        if self.config.bound_skip and self.mode is AdaptiveMode.PREDICT:
            bound_work = self.inner.slice_bound_work()
        if bound_work is not None and ctx.charge_overheads:
            # Pre-flight against the certified worst case, exactly like
            # the frozen governor: when even the bound plus a switch
            # cannot fit, the slice is pure overhead on a doomed job.
            bound_time = board.cpu.execution_time(
                bound_work, board.current_opp
            )
            headroom = (
                ctx.deadline_s
                - board.now
                - bound_time
                - self.inner.switch_estimate_s(ctx)
            )
            if headroom <= 0:
                if telemetry.enabled:
                    telemetry.metrics.counter("predict.bound_skips").inc()
                # No slice ran, so there is nothing to learn from this
                # job; the feedback path sees no pending features.
                self._pending = None
                decision = Decision(self.inner.dvfs.opps.fmax)
                self.audit_decision(
                    ctx,
                    decision,
                    effective_budget_s=headroom,
                    margin=self.predictor.margin.value,
                    mode="bound-skip",
                )
                return decision
        outcome = self.inner.analyze(ctx)
        slice_time = 0.0
        if ctx.charge_overheads:
            slice_from = board.now
            slice_time = board.cpu.execution_time(
                outcome.slice_work, board.current_opp
            )
            board.busy_run(slice_time, tag="predictor")
            if telemetry.enabled:
                telemetry.span(
                    "predict.slice",
                    slice_from,
                    board.now,
                    category="predictor",
                    args={"job": ctx.index, "shadow": not self.predicting},
                )
        # analyze() routed through the online predictor, which stashed the
        # encoded features and raw anchors for the post-job feedback.
        self._pending = (self.predictor.last_x, self.predictor.last_raw)
        if self.mode is AdaptiveMode.FALLBACK:
            decision = self.fallback.decide(ctx)
            if telemetry.enabled and not telemetry.has_decision_for(ctx.index):
                self.audit_decision(
                    ctx,
                    decision,
                    margin=self.predictor.margin.value,
                    mode=AdaptiveMode.FALLBACK.value,
                    features=outcome.features,
                )
            return decision
        if ctx.charge_overheads:
            switch_estimate = self.inner.switch_estimate_s(ctx)
            budget = ctx.deadline_s - board.now - switch_estimate
            if bound_work is not None:
                # Keep the unspent remainder of the certified bound
                # reserved (a lucky fast slice run must not unlock
                # headroom the static analysis does not guarantee).
                bound_time = board.cpu.execution_time(
                    bound_work, board.current_opp
                )
                budget -= max(0.0, bound_time - slice_time)
                if slice_time > bound_time and telemetry.enabled:
                    telemetry.metrics.counter(
                        "certifier.bound_exceeded"
                    ).inc()
        else:
            budget = ctx.deadline_s - board.now
            switch_estimate = (
                self.inner.switch_estimate_s(ctx)
                if telemetry.enabled
                else float("nan")
            )
        decision = self.inner.choose(outcome, budget)
        attribution, ladder, generation = None, (), -1
        if telemetry.enabled:
            attribution, ladder, generation = build_provenance(
                predictor=self.predictor,
                dvfs=self.inner.dvfs,
                raw_features=outcome.raw,
                prediction=outcome.prediction,
                margin=self.predictor.margin.value,
                effective_budget_s=budget,
                switch_estimate_s=switch_estimate,
                opp=decision.opp,
                budget_s=ctx.budget_s,
                deadline_s=ctx.deadline_s,
            )
        self.audit_decision(
            ctx,
            decision,
            effective_budget_s=budget,
            margin=self.predictor.margin.value,
            mode=AdaptiveMode.PREDICT.value,
            features=outcome.features,
            attribution=attribution,
            ladder=ladder,
            beta_generation=generation,
        )
        return decision

    def on_timer(self, now_s: float, utilization: float):
        """Utilization samples drive the fallback only while it is active."""
        if self.mode is AdaptiveMode.FALLBACK:
            return self.fallback.on_timer(now_s, utilization)
        return None

    # -- feedback path ---------------------------------------------------------
    def on_job_end(self, record: JobRecord, ctx: JobContext) -> Work | None:
        """Close the loop: residual -> monitor/detector/RLS -> mode machine.

        Returns the computational bill of the update, which the executor
        charges as predictor time.
        """
        if self.mode is AdaptiveMode.FALLBACK:
            self.fallback.on_job_end(record, ctx)
        if self._pending is None:
            return None
        x, raw = self._pending
        self._pending = None
        if x is None or raw is None:
            return None

        t_predicted = self._predicted_at(raw, record.opp_mhz * 1e6)
        t_observed = record.exec_time_s
        residual = (t_observed - t_predicted) / max(t_predicted, _EPS)

        telemetry = self.telemetry
        if telemetry.enabled:
            now = ctx.board.now
            telemetry.counter("residual_rel", now, residual)
            telemetry.counter("margin", now, self.predictor.margin.value)
            metrics = telemetry.metrics
            metrics.counter("adaptive.recalibration_steps").inc()
            metrics.histogram(
                "adaptive.abs_residual_rel",
                bounds=[i / 50.0 for i in range(1, 101)],
            ).observe(abs(residual))
            metrics.gauge("adaptive.margin").set(self.predictor.margin.value)
            metrics.gauge("adaptive.detector_statistic").set(
                self.detector.statistic
            )

        self.monitor.update(residual, record.missed)
        # Project the observation to both anchors with the model's own
        # time decomposition: a multiplicative residual at the executed
        # frequency is applied to both anchor predictions.  Uniform drift
        # (throttling, heavier content) is captured exactly; a drifting
        # memory/compute split is folded into the same factor.
        factor = t_observed / max(t_predicted, _EPS)
        if self.config.recalibrate:
            self.predictor.observe(
                x, raw.t_fmax_s * factor, raw.t_fmin_s * factor
            )
        self.jobs_in_mode += 1

        if self.mode is AdaptiveMode.PREDICT:
            self.predictor.margin.update(record.missed)
            if (
                self.detector.update(max(residual, 0.0))
                and self.config.fallback_armed
            ):
                self.mode = AdaptiveMode.FALLBACK
                self.jobs_in_mode = 0
                self.drift_events += 1
                if telemetry.enabled:
                    telemetry.instant(
                        "drift.alarm",
                        ctx.board.now,
                        track="online",
                        category="drift",
                        args={
                            "job": record.index,
                            "statistic": self.detector.statistic,
                            "residual": residual,
                        },
                    )
                    telemetry.metrics.counter("adaptive.drift_alarms").inc()
                    telemetry.metrics.counter(
                        "adaptive.transitions[predict->fallback]"
                    ).inc()
        else:
            stable = (
                self.jobs_in_mode >= self.config.cooldown_jobs
                and self.monitor.magnitude.get(default=1.0)
                < self.config.reengage_abs_residual
            )
            if stable:
                self.mode = AdaptiveMode.PREDICT
                self.jobs_in_mode = 0
                self.detector.reset()
                if telemetry.enabled:
                    telemetry.instant(
                        "drift.reengage",
                        ctx.board.now,
                        track="online",
                        category="drift",
                        args={"job": record.index},
                    )
                    telemetry.metrics.counter(
                        "adaptive.transitions[fallback->predict]"
                    ).inc()

        n = self.predictor.n_features
        rls_cycles = (
            self.config.update_cycles_per_feature_sq * float(n * n)
            if self.config.recalibrate
            else 0.0
        )
        return Work(cycles=self.config.update_base_cycles + rls_cycles)

    def arm_fallback(self, reason: str = "external", t_s: float = 0.0) -> bool:
        """Force the deadline-safe fallback mode from outside the loop.

        The SLO watchdog (:mod:`repro.telemetry.watch`) calls this when a
        page-severity burn-rate alert fires before the governor's own
        drift detector has: the mode machine treats it exactly like an
        internal alarm, so the usual cooldown-and-stability path governs
        re-engagement.  Returns True when the mode actually changed.
        """
        if self.mode is AdaptiveMode.FALLBACK or not self.config.fallback_armed:
            return False
        self.mode = AdaptiveMode.FALLBACK
        self.jobs_in_mode = 0
        self.drift_events += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.instant(
                "fallback.armed",
                t_s,
                track="online",
                category="drift",
                args={"reason": reason},
            )
            telemetry.metrics.counter(
                "adaptive.transitions[predict->fallback]"
            ).inc()
            telemetry.metrics.counter("adaptive.external_arms").inc()
        return True

    def _predicted_at(self, raw, freq_hz: float) -> float:
        """The raw (unmargined) predicted time at an executed frequency."""
        components = self.inner.dvfs.components(raw.t_fmin_s, raw.t_fmax_s)
        return components.time_at(freq_hz)

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Everything the feedback loop has learned, JSON-serializable."""
        return {
            "mode": self.mode.value,
            "jobs_in_mode": self.jobs_in_mode,
            "drift_events": self.drift_events,
            "predictor": self.predictor.state_dict(),
            "monitor": self.monitor.state_dict(),
            "detector": self.detector.state_dict(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore the full adaptation loop from :meth:`state_dict`."""
        self.mode = AdaptiveMode(state["mode"])
        self.jobs_in_mode = int(state["jobs_in_mode"])
        self.drift_events = int(state["drift_events"])
        self.predictor.load_state_dict(state["predictor"])
        self.monitor.load_state_dict(state["monitor"])
        self.detector = detector_from_state(state["detector"])
