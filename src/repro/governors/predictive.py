"""The paper's prediction-based DVFS controller.

Per job (Fig. 6 / §3): run the prediction slice on the job's inputs and
live program state to obtain control-flow features; map features to
execution-time predictions at the anchor frequencies with the trained
asymmetric-Lasso models; fit the per-job DVFS components; pick the lowest
discrete frequency whose predicted time fits the *effective* budget —
the budget minus the slice time already spent and a conservative
(95th-percentile) estimate of the upcoming switch time (Fig. 10).

When the offline pipeline attached a :class:`~repro.programs.analysis.
SliceCertificate` with a tight static cost bound, the governor also uses
it in the effective-budget computation: before the slice runs, the
certified worst case tells the governor whether slicing is affordable at
all (if bound + switch time already exceed the remaining budget, it
skips the slice and pins fmax — the slice would only make a doomed job
later), and while choosing it keeps the not-yet-spent remainder of the
bound reserved, so a fast slice execution cannot talk the governor into
headroom the certificate does not guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.governors.base import Decision, Governor, JobContext
from repro.models.dvfs import DvfsModel
from repro.models.timing import ExecutionTimePredictor, TimePrediction
from repro.platform.cpu import Work
from repro.platform.switching import SwitchTimeTable
from repro.programs.analysis import SliceCertificate
from repro.programs.interpreter import Interpreter, RawFeatures
from repro.programs.slicer import PredictionSlice
from repro.telemetry.provenance import build_provenance

__all__ = ["SliceOutcome", "PredictiveGovernor"]


@dataclass(frozen=True)
class SliceOutcome:
    """Result of running the prediction slice for one job.

    Attributes:
        slice_work: What the slice itself cost to run.
        prediction: Margin-inflated anchor-time predictions.
        features: The slice's feature counters (site label -> value);
            kept for the decision audit log.
        raw: The full slice feature object (counters + call addresses);
            decision provenance re-encodes it into model space.
    """

    slice_work: Work
    prediction: TimePrediction
    features: dict[str, float] | None = None
    raw: RawFeatures | None = None


class PredictiveGovernor(Governor):
    """Slice -> execution-time model -> frequency (paper §3).

    Attributes:
        slice: The prediction slice extracted by the offline pipeline.
        predictor: Trained execution-time predictor (both anchors).
        dvfs: DVFS frequency-performance model.
        switch_table: 95th-percentile switch times from the
            microbenchmark; used to shrink the effective budget.
        interpreter: Executes the slice (isolated) at run time.
        certificate: The slice certifier's verdict from the offline
            pipeline; a tight certificate's cost bound feeds the
            effective-budget computation (None disables that).
    """

    def __init__(
        self,
        slice: PredictionSlice,
        predictor: ExecutionTimePredictor,
        dvfs: DvfsModel,
        switch_table: SwitchTimeTable,
        interpreter: Interpreter | None = None,
        certificate: SliceCertificate | None = None,
    ):
        self.slice = slice
        self.predictor = predictor
        self.dvfs = dvfs
        self.switch_table = switch_table
        self.interpreter = interpreter if interpreter is not None else Interpreter()
        self.certificate = certificate

    @property
    def name(self) -> str:
        return "prediction"

    def slice_bound_work(self) -> Work | None:
        """The certified worst-case slice cost as schedulable work.

        None when there is no certificate or its bound is not tight
        (a max_trips-clamped bound is sound but orders of magnitude
        above reality — scheduling against it would pin fmax forever).
        """
        cert = self.certificate
        if cert is None or not cert.cost_bound_tight:
            return None
        return Work(
            cycles=cert.cost_bound_instructions
            * self.interpreter.cycles_per_instruction,
            mem_time_s=cert.cost_bound_mem_refs
            * self.interpreter.mem_seconds_per_ref,
        )

    def analyze(self, ctx: JobContext) -> SliceOutcome:
        """Run the prediction slice (pure: charges nothing on the board).

        The slice executes with isolated globals so its writes cannot
        corrupt task state (paper §3.2).  The executor decides where the
        slice's cost lands — sequential, pipelined, or parallel placement
        (paper §4.3, Fig. 14).
        """
        hp = self.hostprof
        if hp.enabled:
            t0 = hp.clock()
        slice_result = self.interpreter.execute_isolated(
            self.slice.program, ctx.inputs, ctx.task_globals
        )
        if hp.enabled:
            hp.add("features", hp.clock() - t0)
            t0 = hp.clock()
        prediction = self.predictor.predict(slice_result.features)
        if hp.enabled:
            hp.add("predict", hp.clock() - t0)
        return SliceOutcome(
            slice_work=slice_result.work,
            prediction=prediction,
            features=dict(slice_result.features.counters),
            raw=slice_result.features,
        )

    def switch_estimate_s(self, ctx: JobContext) -> float:
        """Conservative estimate of the upcoming DVFS switch (Fig. 10).

        The target level is unknown until after the decision, so take the
        95th-percentile time of the worst switch out of the current level.
        """
        return max(
            self.switch_table.time_s(ctx.board.current_opp, end)
            for end in self.dvfs.opps
        )

    def choose(
        self, outcome: SliceOutcome, effective_budget_s: float
    ) -> Decision:
        """Lowest discrete frequency whose predicted time fits the budget."""
        hp = self.hostprof
        if hp.enabled:
            t0 = hp.clock()
        prediction = outcome.prediction
        opp = self.dvfs.choose_opp(
            prediction.t_fmin_s, prediction.t_fmax_s, effective_budget_s
        )
        components = self.dvfs.components(
            prediction.t_fmin_s, prediction.t_fmax_s
        )
        decision = Decision(opp, predicted_time_s=components.time_at(opp.freq_hz))
        if hp.enabled:
            hp.add("ladder", hp.clock() - t0)
        return decision

    def margin_value(self) -> float:
        """The current safety margin (adaptive predictors expose an
        :class:`~repro.online.recalibrate.AdaptiveMargin`; the frozen
        predictor a plain float)."""
        margin = getattr(self.predictor, "margin", None)
        value = getattr(margin, "value", margin)
        return float(value) if isinstance(value, (int, float)) else float("nan")

    def bind_telemetry(self, telemetry) -> None:
        super().bind_telemetry(telemetry)
        cert = self.certificate
        if cert is None or not telemetry.enabled:
            return
        metrics = telemetry.metrics
        for diagnostic in cert.diagnostics:
            metrics.counter(
                f"certifier.diagnostics[{diagnostic.severity}]"
            ).inc()
        metrics.gauge("certifier.certified").set(float(cert.certified))
        metrics.gauge("certifier.cost_bound_tight").set(
            float(cert.cost_bound_tight)
        )
        metrics.gauge("certifier.cost_bound_instructions").set(
            cert.cost_bound_instructions
        )

    def decide(self, ctx: JobContext) -> Decision | None:
        """Sequential placement: slice, charge its time, then choose."""
        board = ctx.board
        bound_work = self.slice_bound_work()
        if ctx.charge_overheads and bound_work is not None:
            # Pre-flight against the certified worst case: if paying the
            # slice's bound plus a switch cannot fit the remaining budget,
            # the slice is pure overhead on an already-doomed job — pin
            # fmax without running it (the certificate makes this call
            # possible *before* spending the slice time).
            bound_time = board.cpu.execution_time(
                bound_work, board.current_opp
            )
            headroom = (
                ctx.deadline_s
                - board.now
                - bound_time
                - self.switch_estimate_s(ctx)
            )
            if headroom <= 0:
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter(
                        "predict.bound_skips"
                    ).inc()
                decision = Decision(self.dvfs.opps.fmax)
                self.audit_decision(
                    ctx,
                    decision,
                    effective_budget_s=headroom,
                    margin=self.margin_value(),
                    mode="bound-skip",
                )
                return decision
        outcome = self.analyze(ctx)
        mode = ""
        if ctx.charge_overheads:
            slice_from = board.now
            slice_time = board.cpu.execution_time(
                outcome.slice_work, board.current_opp
            )
            board.busy_run(slice_time, tag="predictor")
            if self.telemetry.enabled:
                self.telemetry.span(
                    "predict.slice",
                    slice_from,
                    board.now,
                    category="predictor",
                    args={"job": ctx.index},
                )
            switch_estimate = self.switch_estimate_s(ctx)
            effective_budget = ctx.deadline_s - board.now - switch_estimate
            if bound_work is not None:
                # Keep the unspent remainder of the certified bound
                # reserved: a lucky fast slice run must not unlock
                # headroom the static analysis does not guarantee.
                bound_time = board.cpu.execution_time(
                    bound_work, board.current_opp
                )
                effective_budget -= max(0.0, bound_time - slice_time)
                mode = "certified"
                if (
                    slice_time > bound_time
                    and self.telemetry.enabled
                ):
                    self.telemetry.metrics.counter(
                        "certifier.bound_exceeded"
                    ).inc()
        else:
            effective_budget = ctx.deadline_s - board.now
            switch_estimate = (
                self.switch_estimate_s(ctx)
                if self.telemetry.enabled
                else float("nan")
            )
        decision = self.choose(outcome, effective_budget)
        attribution, ladder, generation = None, (), -1
        if self.telemetry.enabled:
            attribution, ladder, generation = build_provenance(
                predictor=self.predictor,
                dvfs=self.dvfs,
                raw_features=outcome.raw,
                prediction=outcome.prediction,
                margin=self.margin_value(),
                effective_budget_s=effective_budget,
                switch_estimate_s=switch_estimate,
                opp=decision.opp,
                budget_s=ctx.budget_s,
                deadline_s=ctx.deadline_s,
            )
        self.audit_decision(
            ctx,
            decision,
            effective_budget_s=effective_budget,
            margin=self.margin_value(),
            mode=mode,
            features=outcome.features,
            attribution=attribution,
            ladder=ladder,
            beta_generation=generation,
        )
        return decision
