"""The Linux ``interactive`` governor (the paper's main OS baseline).

Per the paper's description (§5.1): samples CPU utilization every 80 ms
and jumps to maximum frequency when utilization exceeds 85%.  Below the
go-to-max threshold it scales frequency to hold utilization near a target
load, like the real governor's ``target_loads`` logic.  It is completely
deadline-blind — that is exactly the weakness the paper exploits.
"""

from __future__ import annotations

from repro.governors.base import Decision, Governor, JobContext
from repro.platform.opp import OperatingPoint, OppTable

__all__ = ["InteractiveGovernor"]


class InteractiveGovernor(Governor):
    """Utilization-sampled governor with a go-to-max threshold.

    Attributes:
        opps: Operating points.
        sample_period_s: Utilization sampling period (paper: 80 ms).
        hispeed_load: Utilization above which it jumps to fmax (paper: 0.85).
        target_load: Utilization the scaling rule tries to maintain.  The
            default is deliberately conservative (well under the hispeed
            threshold), reproducing the stock governor's profile in the
            paper's Fig. 15: modest energy savings, low deadline misses.
    """

    def __init__(
        self,
        opps: OppTable,
        sample_period_s: float = 0.080,
        hispeed_load: float = 0.85,
        target_load: float = 0.45,
        input_boost: bool = True,
        hispeed_frac: float = 0.55,
    ):
        if sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if not 0 < hispeed_load <= 1 or not 0 < target_load <= 1:
            raise ValueError("loads must be in (0, 1]")
        if not 0 < hispeed_frac <= 1:
            raise ValueError("hispeed_frac must be in (0, 1]")
        self.opps = opps
        self.sample_period_s = sample_period_s
        self.hispeed_load = hispeed_load
        self.target_load = target_load
        self.input_boost = input_boost
        self.hispeed_opp = opps.lowest_at_or_above(
            hispeed_frac * opps.fmax.freq_hz
        )
        self.timer_period_s = sample_period_s
        self._board = None

    @property
    def name(self) -> str:
        return "interactive"

    def decide(self, ctx: JobContext) -> Decision | None:
        """Input boost: user interaction bumps the clock to hispeed.

        The stock governor raises frequency on touch/input events so the
        UI reacts before the next utilization sample; a job release is
        our analogue of an input event.  This is also why the real
        governor never settles at fmin on interactive apps — and why its
        energy savings trail prediction-based control (Fig. 15).
        """
        if (
            self.input_boost
            and ctx.board.current_opp.freq_hz < self.hispeed_opp.freq_hz
        ):
            return Decision(self.hispeed_opp)
        return None

    def on_timer(
        self, now_s: float, utilization: float
    ) -> OperatingPoint | None:
        """Linux-interactive-like scaling rule.

        Above ``hispeed_load`` go straight to fmax.  Otherwise pick the
        lowest frequency that would have kept the observed load at or
        below ``target_load`` (busy cycles conserved: load*f invariant).
        """
        if utilization > self.hispeed_load:
            return self.opps.fmax
        current = self._board.current_opp if self._board else self.opps.fmax
        wanted_hz = utilization * current.freq_hz / self.target_load
        return self.opps.lowest_at_or_above(wanted_hz)

    def start(self, board, budget_s: float) -> None:
        self._board = board
