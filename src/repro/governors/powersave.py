"""The Linux ``powersave`` governor: always minimum frequency.

Not evaluated in the paper's figures, but the natural lower bound on
power (and upper bound on misses); useful for sanity checks and
ablations.
"""

from __future__ import annotations

from repro.governors.base import Decision, Governor, JobContext
from repro.platform.board import Board
from repro.platform.opp import OppTable

__all__ = ["PowersaveGovernor"]


class PowersaveGovernor(Governor):
    """Pins the CPU at fmin for the whole run."""

    def __init__(self, opps: OppTable):
        self.opps = opps

    @property
    def name(self) -> str:
        return "powersave"

    def start(self, board: Board, budget_s: float) -> None:
        board.set_frequency(self.opps.fmin)

    def decide(self, ctx: JobContext) -> Decision | None:
        if ctx.board.current_opp != self.opps.fmin:
            return Decision(self.opps.fmin)
        return None
