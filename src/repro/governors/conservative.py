"""A Linux ``conservative``-style governor.

The classic gradual sibling of ``ondemand``: instead of sprinting to
fmax on load, it steps the frequency up or down ONE level per sampling
period.  Completes the stock-governor family for ablations; like the
others it is deadline-blind.
"""

from __future__ import annotations

from repro.governors.base import Decision, Governor, JobContext
from repro.platform.opp import OperatingPoint, OppTable

__all__ = ["ConservativeGovernor"]


class ConservativeGovernor(Governor):
    """Sampled governor: one-step ramps in both directions."""

    def __init__(
        self,
        opps: OppTable,
        sample_period_s: float = 0.080,
        up_threshold: float = 0.70,
        down_threshold: float = 0.30,
    ):
        if sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if not 0 < down_threshold < up_threshold <= 1:
            raise ValueError("need 0 < down_threshold < up_threshold <= 1")
        self.opps = opps
        self.sample_period_s = sample_period_s
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.timer_period_s = sample_period_s
        self._board = None

    @property
    def name(self) -> str:
        return "conservative"

    def start(self, board, budget_s: float) -> None:
        """Remember the board so timers can read the current level."""
        self._board = board

    def decide(self, ctx: JobContext) -> Decision | None:
        """Jobs are invisible; all decisions happen on the timer."""
        return None

    def on_timer(
        self, now_s: float, utilization: float
    ) -> OperatingPoint | None:
        """Step one level toward the load, never further."""
        current = self._board.current_opp if self._board else self.opps.fmax
        if utilization > self.up_threshold and current.index < len(self.opps) - 1:
            return self.opps[current.index + 1]
        if utilization < self.down_threshold and current.index > 0:
            return self.opps[current.index - 1]
        return None
