"""DVFS governors: stock Linux baselines, PID, prediction-based, oracle."""

from repro.governors.adaptive import (
    AdaptiveConfig,
    AdaptiveGovernor,
    AdaptiveMode,
)
from repro.governors.base import Decision, Governor, JobContext
from repro.governors.batch import BatchPredictiveGovernor
from repro.governors.conservative import ConservativeGovernor
from repro.governors.idle import IdlePolicy
from repro.governors.interactive import InteractiveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.pid import PidGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.predictive import PredictiveGovernor

__all__ = [
    "AdaptiveConfig",
    "AdaptiveGovernor",
    "AdaptiveMode",
    "Decision",
    "Governor",
    "JobContext",
    "BatchPredictiveGovernor",
    "ConservativeGovernor",
    "IdlePolicy",
    "InteractiveGovernor",
    "OndemandGovernor",
    "OracleGovernor",
    "PerformanceGovernor",
    "PidGovernor",
    "PowersaveGovernor",
    "PredictiveGovernor",
]
