"""Governor interface.

A governor is the policy half of DVFS control.  The runtime executor owns
the mechanism (switching, timing, energy accounting) and consults the
governor at three moments:

- :meth:`Governor.decide` — before each job runs, with the job's inputs
  and live program state available.  Prediction-based control does its
  work here.  Returning ``None`` means "no opinion" (utilization-driven
  governors decide on timers instead).
- :meth:`Governor.on_timer` — on a fixed sampling period (when
  :attr:`Governor.timer_period_s` is set), with the CPU utilization of
  the elapsed window.  This is how the Linux governors operate.
- :meth:`Governor.on_job_end` — after each job, with its record.  History-
  based controllers (PID) learn here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.platform.board import Board
from repro.platform.cpu import Work
from repro.platform.opp import OperatingPoint
from repro.programs.expr import Value
from repro.telemetry import NO_TELEMETRY, DecisionRecord
from repro.telemetry.hostprof import NO_HOSTPROF

if TYPE_CHECKING:  # avoid a circular import with the runtime package
    from repro.runtime.records import JobRecord
    from repro.telemetry import Telemetry
    from repro.telemetry.hostprof import HostProfiler

__all__ = ["JobContext", "Decision", "Governor"]


@dataclass
class Decision:
    """A governor's choice for one job.

    Attributes:
        opp: Target operating point for the job.
        predicted_time_s: The governor's estimate of the job's execution
            time at ``opp`` (NaN when the policy does not predict).
    """

    opp: OperatingPoint
    predicted_time_s: float = float("nan")


@dataclass
class JobContext:
    """Everything a governor may inspect before a job runs.

    Attributes:
        index: Job number.
        inputs: The job's input values (what a prediction slice reads).
        task_globals: Live program state (read via isolated forks only).
        budget_s: The job's time budget.
        deadline_s: Absolute deadline.
        board: The platform; governors may charge predictor time on it.
        charge_overheads: When False (the Fig. 18 limit study), the
            predictor must not charge its execution time or energy.
        oracle_work: The job's true work — ONLY the oracle governor may
            read this; every other policy must ignore it.
    """

    index: int
    inputs: Mapping[str, Value]
    task_globals: dict
    budget_s: float
    deadline_s: float
    board: Board
    charge_overheads: bool = True
    oracle_work: Work | None = None


class Governor(ABC):
    """Base class for DVFS policies."""

    #: Sampling period for utilization-driven policies; None disables timers.
    timer_period_s: float | None = None

    #: Run telemetry the executor binds before a run.  The no-op default
    #: means a governor may always write to it — when tracing is off the
    #: writes vanish at zero cost (guard hot paths with ``.enabled``).
    telemetry: "Telemetry" = NO_TELEMETRY

    #: Host-side profiler the executor binds before a run.  Same
    #: contract as :attr:`telemetry`: the disabled default costs one
    #: attribute read, so sub-phase timers (prediction slice, predict,
    #: OPP ladder) always guard with ``if self.hostprof.enabled:``.
    hostprof: "HostProfiler" = NO_HOSTPROF

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in results and plots."""

    def start(self, board: Board, budget_s: float) -> None:
        """One-time setup before the first job (e.g. initial frequency)."""

    def bind_telemetry(self, telemetry: "Telemetry") -> None:
        """Attach a run's telemetry pipeline (optional observability hook).

        The executor calls this once per run.  Governors that compose
        other governors (adaptive's fallback, batch wrappers) should
        override it and forward the binding to their delegates.
        """
        self.telemetry = telemetry

    def bind_hostprof(self, hostprof: "HostProfiler") -> None:
        """Attach a run's host profiler (optional observability hook).

        Same forwarding rule as :meth:`bind_telemetry`: composing
        governors override this and pass the profiler on to their
        delegates so sub-phase timers inside the delegate still fire.
        """
        self.hostprof = hostprof

    def audit_decision(
        self,
        ctx: JobContext,
        decision: Decision | None,
        *,
        effective_budget_s: float = float("nan"),
        margin: float = float("nan"),
        mode: str = "",
        features: Mapping[str, float] | None = None,
        attribution=None,
        ladder=(),
        beta_generation: int = -1,
    ) -> None:
        """Record this job's decision (and its inputs) in the audit log.

        Instrumented governors call this from :meth:`decide` with the
        rich inputs only they know (slice features, predicted time,
        effective budget, margin — and, for model-driven decisions, the
        provenance payload from
        :func:`~repro.telemetry.provenance.build_provenance`).  For
        governors that never call it, the executor appends a bare
        record, so the log still covers every decision of the run.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        telemetry.record_decision(
            DecisionRecord(
                job_index=ctx.index,
                t_s=ctx.board.now,
                governor=self.name,
                opp_mhz=decision.opp.freq_mhz if decision is not None else None,
                predicted_time_s=(
                    decision.predicted_time_s
                    if decision is not None
                    else float("nan")
                ),
                effective_budget_s=effective_budget_s,
                margin=margin,
                mode=mode,
                features=dict(features) if features is not None else {},
                beta_generation=beta_generation,
                # O(1) timeline-accumulator read: the audit log becomes
                # an energy trajectory at no extra simulation cost.
                energy_j=ctx.board.energy_j(),
                attribution=attribution,
                ladder=tuple(ladder),
            )
        )

    @abstractmethod
    def decide(self, ctx: JobContext) -> Decision | None:
        """Frequency decision for the job about to run (None = no opinion)."""

    def on_timer(
        self, now_s: float, utilization: float
    ) -> OperatingPoint | None:
        """Periodic utilization sample; return a new OPP or None."""
        return None

    def on_job_end(self, record: "JobRecord", ctx: JobContext) -> Work | None:
        """Observe a completed job (history-based policies learn here).

        A governor whose feedback computation is non-trivial (the
        adaptive governor's online recalibration) returns its cost as a
        :class:`~repro.platform.cpu.Work` bill; the executor charges it
        as predictor time.  ``None`` means the observation was free.
        """
        return None
