"""Oracle controller: perfect knowledge of each job's work (paper §5.3).

The paper implements its oracle by replaying recorded job times from a
previous run with the same inputs.  The simulation equivalent is exact
knowledge of the job's :class:`~repro.platform.cpu.Work`: the oracle
computes the true (jitter-free) execution time at every level and picks
the lowest one that fits.  Run it with overhead charging disabled, as the
paper does — its purpose is an upper bound on what better prediction
could buy (Fig. 18).
"""

from __future__ import annotations

from repro.governors.base import Decision, Governor, JobContext
from repro.platform.cpu import SimulatedCpu
from repro.platform.opp import OppTable

__all__ = ["OracleGovernor"]


class OracleGovernor(Governor):
    """Chooses the lowest frequency whose true job time fits the budget.

    Attributes:
        opps: Operating points.
        margin: Safety factor over the true time, absorbing run-to-run
            jitter the oracle cannot foresee (recorded times from a prior
            run differ from this run's times by exactly that noise).
    """

    def __init__(self, opps: OppTable, margin: float = 0.05):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.opps = opps
        self.margin = margin
        self._cpu = SimulatedCpu()

    @property
    def name(self) -> str:
        return "oracle"

    def decide(self, ctx: JobContext) -> Decision | None:
        if ctx.oracle_work is None:
            raise ValueError(
                "OracleGovernor requires oracle_work in the job context "
                "(enable provide_oracle_work on the runner)"
            )
        factor = 1.0 + self.margin
        budget = ctx.deadline_s - ctx.board.now
        for opp in self.opps:
            time = self._cpu.ideal_time(ctx.oracle_work, opp) * factor
            if time <= budget:
                return Decision(opp, predicted_time_s=time)
        fmax = self.opps.fmax
        return Decision(
            fmax,
            predicted_time_s=self._cpu.ideal_time(ctx.oracle_work, fmax) * factor,
        )
