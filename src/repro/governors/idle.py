"""Idling policy: drop to minimum frequency between jobs (paper §5.5).

Idling is orthogonal to the governor choice — the paper evaluates every
controller with and without it (Fig. 21).  The runtime executor applies
it: when a job finishes early, switch to fmin for the gap and restore the
pre-idle level at the next arrival (unless the governor overrides with
its own decision, which prediction-based control always does).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IdlePolicy"]


@dataclass(frozen=True)
class IdlePolicy:
    """Configuration of between-job idling.

    Attributes:
        enabled: Whether to drop to fmin between jobs at all.
        min_gap_s: Gaps shorter than this are not worth two DVFS
            switches; stay at the current level.  The default (4 ms)
            is roughly twice the typical switch latency.
    """

    enabled: bool = False
    min_gap_s: float = 0.004

    def __post_init__(self) -> None:
        if self.min_gap_s < 0:
            raise ValueError("min_gap_s must be non-negative")

    def should_idle(self, gap_s: float) -> bool:
        """Whether a gap of ``gap_s`` seconds warrants dropping to fmin."""
        return self.enabled and gap_s > self.min_gap_s
