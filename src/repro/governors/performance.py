"""The Linux ``performance`` governor: always maximum frequency.

This is the paper's energy baseline — every energy figure is normalized
to a run under this governor.
"""

from __future__ import annotations

from repro.governors.base import Decision, Governor, JobContext
from repro.platform.board import Board
from repro.platform.opp import OppTable

__all__ = ["PerformanceGovernor"]


class PerformanceGovernor(Governor):
    """Pins the CPU at fmax for the whole run."""

    def __init__(self, opps: OppTable):
        self.opps = opps

    @property
    def name(self) -> str:
        return "performance"

    def start(self, board: Board, budget_s: float) -> None:
        board.set_frequency(self.opps.fmax)

    def decide(self, ctx: JobContext) -> Decision | None:
        if ctx.board.current_opp != self.opps.fmax:
            return Decision(self.opps.fmax)
        return None
