"""PID-based reactive controller (Gu & Chakraborty, DAC'08 style).

The paper's strongest prior-work baseline: predict the next job's
execution time from the history of past jobs with a PID rule, then pick
the frequency that fits the budget.  Because the estimate only reacts
*after* an expensive job has been observed, it lags job-to-job input
variation (the paper's Fig. 3) and misses deadlines (13% on average in
Fig. 15) while saving about as much energy as prediction-based control.

The controller observes only what a real one could: each job's measured
execution time and the frequency it ran at.  Times are normalized to
fmax-equivalent cycle counts assuming fully frequency-scalable work.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.governors.base import Decision, Governor, JobContext
from repro.models.dvfs import DvfsComponents, DvfsModel
from repro.platform.board import Board
from repro.platform.opp import OppTable

if TYPE_CHECKING:  # avoid a circular import with the runtime package
    from repro.runtime.records import JobRecord

__all__ = ["PidGovernor"]


class PidGovernor(Governor):
    """Predicts next-job cycles with a PID filter on observation errors.

    Attributes:
        opps: Operating points.
        kp_up: Proportional gain when the estimate was too LOW (the job
            was bigger than expected — the dangerous direction).
        kp_down: Proportional gain when the estimate was too high.  The
            asymmetry (rise fast, decay slowly) is the offline tuning the
            paper describes: "optimized to reduce deadline misses".
        ki, kd: Integral and derivative gains.
        margin: Safety factor applied to the cycle estimate.
    """

    def __init__(
        self,
        opps: OppTable,
        kp_up: float = 0.9,
        kp_down: float = 0.15,
        ki: float = 0.01,
        kd: float = 0.05,
        margin: float = 0.25,
    ):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.opps = opps
        self.kp_up = kp_up
        self.kp_down = kp_down
        self.ki = ki
        self.kd = kd
        self.margin = margin
        self._dvfs = DvfsModel(opps)
        self._estimate_cycles: float | None = None
        self._integral = 0.0
        self._last_error = 0.0

    @property
    def name(self) -> str:
        return "pid"

    @property
    def estimate_cycles(self) -> float | None:
        """Current cycle estimate (None before any observation)."""
        return self._estimate_cycles

    def start(self, board: Board, budget_s: float) -> None:
        self._estimate_cycles = None
        self._integral = 0.0
        self._last_error = 0.0

    def decide(self, ctx: JobContext) -> Decision | None:
        if self._estimate_cycles is None:
            # No history yet: be safe, run the first job flat out.
            return Decision(self.opps.fmax)
        cycles = self._estimate_cycles * (1.0 + self.margin)
        components = DvfsComponents(tmem_s=0.0, ndep_cycles=cycles)
        ideal = self._dvfs.freq_for_budget(components, ctx.budget_s)
        if math.isinf(ideal):
            opp = self.opps.fmax
        else:
            opp = self.opps.lowest_at_or_above(ideal)
        return Decision(opp, predicted_time_s=cycles / opp.freq_hz)

    def on_job_end(self, record: "JobRecord", ctx: JobContext) -> None:
        """PID update from the observed execution time.

        The controller sees time and frequency, so its cycle observation
        is ``t * f`` — which bakes in the (wrong for memory-bound jobs)
        assumption that all time scales with frequency.  That modelling
        error is part of the baseline, not a bug.
        """
        observed_cycles = record.exec_time_s * record.opp_mhz * 1e6
        if self._estimate_cycles is None:
            self._estimate_cycles = observed_cycles
            return
        error = observed_cycles - self._estimate_cycles
        self._integral += error
        derivative = error - self._last_error
        self._last_error = error
        kp = self.kp_up if error > 0 else self.kp_down
        self._estimate_cycles = max(
            0.0,
            self._estimate_cycles
            + kp * error
            + self.ki * self._integral
            + self.kd * derivative,
        )
