"""Batched prediction: one DVFS decision for several jobs (paper §7).

The paper's closing observation: "for time budgets on the order of
milliseconds, the overhead of running the predictor and switching DVFS
levels will outweigh the energy savings gained.  At these time scales,
the predictor may need to predict the DVFS level for several jobs at
once in order to amortize these overheads."

This governor implements that: it runs the predictor only on every
``batch_size``-th job and holds the chosen level for the whole batch.
Because future jobs' inputs are not yet known (interactive tasks), the
decision extrapolates from the head job's prediction, inflated by a
batch margin to cover within-batch variation — trading a little energy
(and a small miss risk on erratic workloads) for an overhead divided
by ``batch_size``.
"""

from __future__ import annotations

from repro.governors.base import Decision, JobContext
from repro.governors.predictive import PredictiveGovernor
from repro.models.timing import TimePrediction

__all__ = ["BatchPredictiveGovernor"]


class BatchPredictiveGovernor(PredictiveGovernor):
    """Predict once per batch, hold the level for the rest.

    Attributes:
        batch_size: Jobs per decision (1 degenerates to the paper's
            per-job controller).
        batch_margin: Extra inflation of the head job's predicted times,
            absorbing job-to-job variation inside the batch.
    """

    def __init__(
        self,
        *args,
        batch_size: int = 4,
        batch_margin: float = 0.15,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batch_margin < 0:
            raise ValueError("batch_margin must be non-negative")
        self.batch_size = batch_size
        self.batch_margin = batch_margin

    @property
    def name(self) -> str:
        return f"prediction-batch{self.batch_size}"

    def decide(self, ctx: JobContext) -> Decision | None:
        if ctx.index % self.batch_size != 0:
            # Mid-batch: hold the level, pay nothing.
            return None
        board = ctx.board
        outcome = self.analyze(ctx)
        if ctx.charge_overheads:
            slice_time = board.cpu.execution_time(
                outcome.slice_work, board.current_opp
            )
            board.busy_run(slice_time, tag="predictor")
            effective_budget = (
                ctx.deadline_s - board.now - self.switch_estimate_s(ctx)
            )
        else:
            effective_budget = ctx.deadline_s - board.now
        inflate = 1.0 + self.batch_margin
        prediction = TimePrediction(
            t_fmax_s=outcome.prediction.t_fmax_s * inflate,
            t_fmin_s=outcome.prediction.t_fmin_s * inflate,
        )
        opp = self.dvfs.choose_opp(
            prediction.t_fmin_s, prediction.t_fmax_s, effective_budget
        )
        components = self.dvfs.components(
            prediction.t_fmin_s, prediction.t_fmax_s
        )
        return Decision(opp, predicted_time_s=components.time_at(opp.freq_hz))
