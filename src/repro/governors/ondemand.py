"""A Linux ``ondemand``-style governor, for ablation completeness.

Samples utilization like ``interactive`` but ramps differently: jump to
fmax above the up-threshold, otherwise step *down* one level at a time
when utilization is comfortably low.  Not a paper baseline; included
because DESIGN.md calls for the family of stock governors.
"""

from __future__ import annotations

from repro.governors.base import Decision, Governor, JobContext
from repro.platform.opp import OperatingPoint, OppTable

__all__ = ["OndemandGovernor"]


class OndemandGovernor(Governor):
    """Sampled governor: sprint to fmax, decay one step at a time."""

    def __init__(
        self,
        opps: OppTable,
        sample_period_s: float = 0.080,
        up_threshold: float = 0.80,
        down_threshold: float = 0.40,
    ):
        if sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if not 0 < down_threshold < up_threshold <= 1:
            raise ValueError("need 0 < down_threshold < up_threshold <= 1")
        self.opps = opps
        self.sample_period_s = sample_period_s
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.timer_period_s = sample_period_s
        self._board = None

    @property
    def name(self) -> str:
        return "ondemand"

    def start(self, board, budget_s: float) -> None:
        self._board = board

    def decide(self, ctx: JobContext) -> Decision | None:
        return None

    def on_timer(
        self, now_s: float, utilization: float
    ) -> OperatingPoint | None:
        current = self._board.current_opp if self._board else self.opps.fmax
        if utilization > self.up_threshold:
            return self.opps.fmax
        if utilization < self.down_threshold and current.index > 0:
            return self.opps[current.index - 1]
        return None
