"""Persistence of trained controllers (paper §4.2).

"For common platforms, the program developer can perform this profiling
and distribute the trained model coefficients with the program."  This
module is that distribution format: everything a
:class:`~repro.governors.predictive.PredictiveGovernor` needs at run
time — the prediction slice, encoder vocabulary, model coefficients,
margin, operating points, and the switch-time table — in one JSON file.

The profiling trace is optional (it is training data, not a run-time
artifact); the instrumented program ships so a user can re-profile on a
new platform, which §4.2 also calls for ("profiling can be done by the
user during application installation").
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.features.encoding import FeatureColumn, FeatureEncoder
from repro.features.trace import ProfileTrace
from repro.models.asymmetric import AsymmetricLassoModel
from repro.models.dvfs import DvfsModel
from repro.models.poly import PolynomialExpansion
from repro.models.timing import ExecutionTimePredictor
from repro.pipeline.config import PipelineConfig
from repro.pipeline.offline import TrainedController
from repro.platform.biglittle import ClusterOperatingPoint
from repro.platform.opp import OperatingPoint, OppTable
from repro.platform.switching import SwitchTimeTable
from repro.programs.analysis import SliceCertificate
from repro.programs.instrument import FeatureSite, InstrumentedProgram
from repro.programs.serialize import program_from_dict, program_to_dict
from repro.programs.slicer import PredictionSlice

__all__ = [
    "controller_fingerprint",
    "save_controller",
    "load_controller",
    "save_adaptive_state",
    "load_adaptive_state",
]

_FORMAT_VERSION = 1
_ADAPTIVE_FORMAT_VERSION = 1


def _opp_to_dict(point: OperatingPoint) -> dict[str, Any]:
    data: dict[str, Any] = {
        "index": point.index,
        "freq_hz": point.freq_hz,
        "voltage_v": point.voltage_v,
    }
    if isinstance(point, ClusterOperatingPoint):
        data.update(
            t="cluster",
            cluster=point.cluster,
            real_freq_hz=point.real_freq_hz,
            c_eff_farads=point.c_eff_farads,
            i_leak_amps=point.i_leak_amps,
        )
    else:
        data["t"] = "plain"
    return data


def _opp_from_dict(data: dict[str, Any]) -> OperatingPoint:
    if data["t"] == "cluster":
        return ClusterOperatingPoint(
            index=data["index"],
            freq_hz=data["freq_hz"],
            voltage_v=data["voltage_v"],
            cluster=data["cluster"],
            real_freq_hz=data["real_freq_hz"],
            c_eff_farads=data["c_eff_farads"],
            i_leak_amps=data["i_leak_amps"],
        )
    return OperatingPoint(
        index=data["index"], freq_hz=data["freq_hz"], voltage_v=data["voltage_v"]
    )


def _model_to_dict(model: AsymmetricLassoModel) -> dict[str, Any]:
    assert model.coef_ is not None
    return {
        "coef": model.coef_.tolist(),
        "intercept": model.intercept_,
        "alpha": model.alpha,
        "gamma": model.gamma,
    }


def _model_from_dict(data: dict[str, Any]) -> AsymmetricLassoModel:
    return AsymmetricLassoModel.from_coefficients(
        data["coef"], data["intercept"], alpha=data["alpha"], gamma=data["gamma"]
    )


def controller_fingerprint(controller: TrainedController) -> str:
    """Short stable hash of what the controller *decides with*.

    Covers the anchor coefficients, margin, and the OPP table — the
    inputs deterministic trace replay depends on.  Embedded in the saved
    payload so ``repro replay`` can tell whether a trace and a
    controller file belong together.
    """
    from repro.telemetry.provenance import predictor_fingerprint

    digest = hashlib.sha256()
    digest.update(predictor_fingerprint(controller.predictor).encode())
    for point in controller.dvfs.opps:
        digest.update(repr((point.index, point.freq_hz)).encode())
    return digest.hexdigest()[:16]


def save_controller(
    controller: TrainedController,
    path: str | Path,
    include_trace: bool = False,
) -> None:
    """Write a trained controller to a JSON file."""
    opps = controller.dvfs.opps
    heterogeneous = any(isinstance(p, ClusterOperatingPoint) for p in opps)
    payload: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "fingerprint": controller_fingerprint(controller),
        "app_name": controller.app_name,
        "config": {
            "alpha": controller.config.alpha,
            "gamma_rel": controller.config.gamma_rel,
            "margin": controller.config.margin,
            "model_degree": controller.config.model_degree,
            "n_profile_jobs": controller.config.n_profile_jobs,
            "profile_seed": controller.config.profile_seed,
            "profile_jitter_sigma": controller.config.profile_jitter_sigma,
            "switch_samples": controller.config.switch_samples,
            "max_iter": controller.config.max_iter,
            "slice_marshal_base_instr": controller.config.slice_marshal_base_instr,
            "slice_marshal_per_var_instr": (
                controller.config.slice_marshal_per_var_instr
            ),
            "certify": controller.config.certify,
            "certify_input_widen": controller.config.certify_input_widen,
            "eval_n_jobs": controller.config.eval_n_jobs,
            "eval_n_jobs_overrides": [
                list(pair) for pair in controller.config.eval_n_jobs_overrides
            ],
        },
        "instrumented": {
            "program": program_to_dict(controller.instrumented.program),
            "sites": [
                {"site": s.site, "kind": s.kind}
                for s in controller.instrumented.sites
            ],
        },
        "encoder_columns": [
            {
                "name": c.name,
                "site": c.site,
                "kind": c.kind,
                "address": c.address,
            }
            for c in controller.encoder.columns
        ],
        "model_fmax": _model_to_dict(controller.predictor.model_fmax),
        "model_fmin": _model_to_dict(controller.predictor.model_fmin),
        "margin": controller.predictor.margin,
        "model_degree": (
            1
            if controller.predictor.expansion is None
            else controller.predictor.expansion.degree
        ),
        "slice": {
            "program": program_to_dict(controller.slice.program),
            "needed_sites": sorted(controller.slice.needed_sites),
            "relevant_vars": sorted(controller.slice.relevant_vars),
        },
        "opps": {
            "points": [_opp_to_dict(p) for p in opps],
            "heterogeneous": heterogeneous,
        },
        "switch_table": {
            f"{a},{b}": t
            for (a, b), t in {
                (start.index, end.index): controller.switch_table.time_s(
                    start, end
                )
                for start in opps
                for end in opps
            }.items()
        },
        "certificate": (
            controller.certificate.as_dict()
            if controller.certificate is not None
            else None
        ),
        "trace": controller.trace.to_json() if include_trace else None,
    }
    Path(path).write_text(json.dumps(payload))


def save_adaptive_state(governor, path: str | Path) -> None:
    """Write an adaptive governor's learned state to a JSON file.

    This is the run-time counterpart of :func:`save_controller`: the
    offline artifacts are the distribution format, while this captures
    what the feedback loop has learned since deployment — recalibrated
    coefficients, covariances, the adaptive margin, and the drift
    detector/monitor state — so a service restart resumes adaptation
    instead of restarting it from the offline fit.

    Args:
        governor: An object exposing ``state_dict()`` (an
            :class:`~repro.governors.adaptive.AdaptiveGovernor`).
        path: Destination file.
    """
    payload = {
        "format_version": _ADAPTIVE_FORMAT_VERSION,
        "state": governor.state_dict(),
    }
    Path(path).write_text(json.dumps(payload))


def load_adaptive_state(governor, path: str | Path) -> None:
    """Restore a governor's learned state from :func:`save_adaptive_state`.

    The governor must be built from the *same* trained controller (same
    slice and feature vocabulary); state from a different controller
    would silently mis-map coefficients, so pair the two files.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _ADAPTIVE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported adaptive-state format version {version!r} "
            f"(this library reads version {_ADAPTIVE_FORMAT_VERSION})"
        )
    governor.load_state_dict(payload["state"])


def load_controller(path: str | Path) -> TrainedController:
    """Rebuild a :class:`TrainedController` from :func:`save_controller`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported controller format version {version!r} "
            f"(this library reads version {_FORMAT_VERSION})"
        )
    config = PipelineConfig(**payload["config"])

    sites = tuple(
        FeatureSite(s["site"], s["kind"]) for s in payload["instrumented"]["sites"]
    )
    instrumented = InstrumentedProgram(
        program=program_from_dict(payload["instrumented"]["program"]),
        sites=sites,
    )
    columns = [
        FeatureColumn(
            name=c["name"], site=c["site"], kind=c["kind"], address=c["address"]
        )
        for c in payload["encoder_columns"]
    ]
    encoder = FeatureEncoder.from_columns(sites, columns)

    expansion = None
    if payload["model_degree"] > 1:
        expansion = PolynomialExpansion(payload["model_degree"]).fit(
            encoder.n_columns
        )
    predictor = ExecutionTimePredictor(
        encoder=encoder,
        model_fmax=_model_from_dict(payload["model_fmax"]),
        model_fmin=_model_from_dict(payload["model_fmin"]),
        margin=payload["margin"],
        expansion=expansion,
    )

    slice_ = PredictionSlice(
        program=program_from_dict(payload["slice"]["program"]),
        needed_sites=frozenset(payload["slice"]["needed_sites"]),
        relevant_vars=frozenset(payload["slice"]["relevant_vars"]),
    )

    points = [_opp_from_dict(p) for p in payload["opps"]["points"]]
    opps = OppTable(
        points,
        require_monotone_voltage=not payload["opps"]["heterogeneous"],
    )
    times = {
        tuple(int(i) for i in key.split(",")): value
        for key, value in payload["switch_table"].items()
    }
    switch_table = SwitchTimeTable(opps, times)

    trace = (
        ProfileTrace.from_json(payload["trace"])
        if payload["trace"] is not None
        else ProfileTrace([])
    )
    certificate_data = payload.get("certificate")
    certificate = (
        SliceCertificate.from_dict(certificate_data)
        if certificate_data is not None
        else None
    )
    return TrainedController(
        app_name=payload["app_name"],
        instrumented=instrumented,
        trace=trace,
        encoder=encoder,
        predictor=predictor,
        slice=slice_,
        dvfs=DvfsModel(opps),
        switch_table=switch_table,
        config=config,
        certificate=certificate,
    )
