"""Configuration of the offline controller-generation pipeline."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the offline flow (paper defaults unless noted).

    Attributes:
        alpha: Under-prediction penalty weight; the paper sweeps
            {1, 10, 100, 1000} and settles on 100 (§5.4, Fig. 20).
        gamma_rel: Relative L1 sparsity weight.  The absolute gamma fed to
            the solver is ``gamma_rel * n_samples * mean(y)``, making the
            knob meaningful across apps whose job times differ by three
            orders of magnitude.
        margin: Safety margin on predicted times (§3.4: 10%).
        model_degree: Execution-time model order — 1 is the paper's
            linear model; 2 adds squares/products (§3.5 extension).
        n_profile_jobs: Jobs profiled per app for training.
        profile_seed: Seed for the profiling input script (distinct from
            evaluation seeds — train and test inputs differ, as on the
            real system).
        profile_jitter_sigma: Timing-noise level during profiling.
        switch_samples: Samples per (start, end) pair for the switch-time
            microbenchmark (Fig. 11).
        max_iter: Solver iteration cap.
        slice_marshal_base_instr: Fixed slice start-up cost (instruction
            count) modelling the local-copy side-effect protection the
            paper's slices perform (§3.2) — this is what makes predictor
            execution time non-trivial (Fig. 17).
        slice_marshal_per_var_instr: Additional copy cost per variable the
            slice retains.
        certify: What to do with the slice certifier's verdict at train
            time: "error" refuses to hand an uncertified slice to the
            governor (raises
            :class:`~repro.programs.analysis.CertificationError`),
            "warn" emits a ``UserWarning`` and continues, "off" skips
            certification entirely.
        certify_input_widen: How far beyond the profiled input range the
            interval analysis assumes inputs can stray, as a fraction of
            the observed span (0.5 = half a span on each side).  Guards
            the static cost bound against evaluation inputs drawn from
            the tails the profile missed.
        eval_n_jobs: Jobs per evaluation run (experiments may override
            per call).
        eval_n_jobs_overrides: Per-app evaluation job counts as
            ``(app_name, n_jobs)`` pairs.  pocketsphinx jobs are seconds
            long, so fewer of them keep simulated sessions comparable in
            wall-clock cost.
        slice_mode: What the slicer keeps: "selected" (default — only
            the sites the trained model uses, the paper's §3.2 slice)
            or "full" (every instrumented site, i.e. the predictor runs
            the whole program again).  "full" exists for ablations: it
            is what the governor pays when slicing is disabled, so the
            slicing component's value can be measured rather than
            asserted.
        optimize: Which programs the IR optimizer
            (:mod:`repro.programs.opt`) rewrites before deployment:
            "off" (default) leaves everything untouched, "slice"
            optimizes the prediction slice before it is certified,
            "all" additionally optimizes the task program the
            :class:`~repro.analysis.harness.Lab` runs.  Every kept
            rewrite is translation-validated; rewrites that fail
            validation are discarded, so this knob can change host
            speed but never simulated behaviour.
    """

    alpha: float = 100.0
    gamma_rel: float = 1e-2
    margin: float = 0.10
    model_degree: int = 1
    n_profile_jobs: int = 200
    profile_seed: int = 1_000_003
    profile_jitter_sigma: float = 0.02
    switch_samples: int = 200
    max_iter: int = 5000
    slice_marshal_base_instr: float = 80_000.0
    slice_marshal_per_var_instr: float = 6_000.0
    certify: str = "error"
    certify_input_widen: float = 0.5
    eval_n_jobs: int = 250
    eval_n_jobs_overrides: tuple[tuple[str, int], ...] = (("pocketsphinx", 40),)
    slice_mode: str = "selected"
    optimize: str = "off"

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.gamma_rel < 0:
            raise ValueError("gamma_rel must be non-negative")
        if self.margin < 0:
            raise ValueError("margin must be non-negative")
        if self.n_profile_jobs < 2:
            raise ValueError("need at least two profiling jobs")
        if self.eval_n_jobs < 1:
            raise ValueError("eval_n_jobs must be >= 1")
        if self.certify not in ("off", "warn", "error"):
            raise ValueError(
                f"certify must be 'off', 'warn', or 'error', "
                f"got {self.certify!r}"
            )
        if self.certify_input_widen < 0:
            raise ValueError("certify_input_widen must be non-negative")
        if self.slice_mode not in ("selected", "full"):
            raise ValueError(
                f"slice_mode must be 'selected' or 'full', "
                f"got {self.slice_mode!r}"
            )
        if self.optimize not in ("off", "slice", "all"):
            raise ValueError(
                f"optimize must be 'off', 'slice', or 'all', "
                f"got {self.optimize!r}"
            )
        # JSON round-trips (pipeline.persist) deliver lists; normalize so
        # the config stays hashable and comparable.
        object.__setattr__(
            self,
            "eval_n_jobs_overrides",
            tuple(
                (str(app), int(jobs))
                for app, jobs in self.eval_n_jobs_overrides
            ),
        )
        if any(jobs < 1 for _, jobs in self.eval_n_jobs_overrides):
            raise ValueError("per-app eval job counts must be >= 1")

    def eval_jobs_for(self, app_name: str) -> int:
        """Evaluation job count for an application."""
        for name, jobs in self.eval_n_jobs_overrides:
            if name == app_name:
                return jobs
        return self.eval_n_jobs
