"""The offline controller-generation flow (paper Fig. 13).

Given an annotated application:

1. **Instrument** its control-flow sites with feature counters.
2. **Profile** the instrumented task over scripted sample inputs,
   recording feature values and execution times at both anchor
   frequencies.
3. **Train** the asymmetric-Lasso execution-time models.
4. **Slice** the instrumented program down to the features the trained
   models actually use (zero-coefficient features are dropped).
5. **Certify** the slice: the static-analysis passes prove the §3.2
   side-effect rule, model-feature coverage, the absence of dropped
   definitions, and a worst-case slice cost bound.  In ``certify="error"``
   mode (the default) an uncertified slice never reaches the governor.
6. **Microbenchmark** DVFS switch times for the conservative switch
   estimate.

The result bundles everything a :class:`~repro.governors.predictive.
PredictiveGovernor` needs at run time.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.features.encoding import FeatureEncoder
from repro.features.profiler import Profiler
from repro.features.trace import ProfileTrace
from repro.governors.predictive import PredictiveGovernor
from repro.models.dvfs import DvfsModel
from repro.models.timing import ExecutionTimePredictor
from repro.pipeline.config import PipelineConfig
from repro.platform.cpu import SimulatedCpu
from repro.platform.jitter import LogNormalJitter, NoJitter
from repro.platform.opp import OppTable, default_xu3_a7_table
from repro.platform.switching import SwitchLatencyModel, SwitchTimeTable
from repro.programs.analysis import (
    CertificationError,
    SliceCertificate,
    certify_slice,
)
from repro.programs.instrument import InstrumentedProgram, Instrumenter
from repro.programs.interpreter import Interpreter
from repro.programs.slicer import PredictionSlice, Slicer
from repro.workloads.base import InteractiveApp

__all__ = ["TrainedController", "build_controller", "profiled_input_ranges"]


@dataclass(frozen=True)
class TrainedController:
    """Everything the offline pipeline produced for one application.

    Attributes:
        app_name: The application this controller belongs to.
        instrumented: The instrumented program and its site schema.
        trace: The profiling trace the models were trained on.
        encoder: Feature encoder (column vocabulary fixed at train time).
        predictor: Trained anchor-time models.
        slice: The prediction slice (only the selected features).
        dvfs: The frequency-performance model.
        switch_table: 95th-percentile switch times.
        config: The configuration that produced all of the above.
        certificate: The slice certifier's verdict (None when the
            pipeline ran with ``certify="off"``).
    """

    app_name: str
    instrumented: InstrumentedProgram
    trace: ProfileTrace
    encoder: FeatureEncoder
    predictor: ExecutionTimePredictor
    slice: PredictionSlice
    dvfs: DvfsModel
    switch_table: SwitchTimeTable
    config: PipelineConfig
    certificate: SliceCertificate | None = None

    def governor(self, interpreter: Interpreter | None = None) -> PredictiveGovernor:
        """A run-time governor wired to these artifacts."""
        return PredictiveGovernor(
            slice=self.slice,
            predictor=self.predictor,
            dvfs=self.dvfs,
            switch_table=self.switch_table,
            interpreter=interpreter,
            certificate=self.certificate,
        )


def build_controller(
    app: InteractiveApp,
    opps: OppTable | None = None,
    config: PipelineConfig | None = None,
    switch_table: SwitchTimeTable | None = None,
    interpreter: Interpreter | None = None,
) -> TrainedController:
    """Run the full offline flow for one application.

    Args:
        app: The annotated application.
        opps: Operating points of the target platform.
        config: Pipeline knobs; paper defaults if omitted.
        switch_table: Pre-measured switch times (rebuilt via the
            microbenchmark if omitted).
        interpreter: Shared interpreter (platform timing constants).
    """
    opps = opps if opps is not None else default_xu3_a7_table()
    config = config if config is not None else PipelineConfig()
    interpreter = interpreter if interpreter is not None else Interpreter()

    # 1. Instrument.
    instrumented = Instrumenter().instrument(app.task.program)

    # 2. Profile with deployment-like timing noise.
    jitter = (
        LogNormalJitter(config.profile_jitter_sigma, seed=config.profile_seed)
        if config.profile_jitter_sigma > 0
        else NoJitter()
    )
    profiler = Profiler(interpreter, SimulatedCpu(jitter), opps)
    sample_inputs = app.inputs(config.n_profile_jobs, seed=config.profile_seed)
    trace = profiler.profile(instrumented, sample_inputs)

    # 3. Train (gamma scales with the data so one knob fits all apps).
    encoder = FeatureEncoder(instrumented.sites).fit(trace.raw_features)
    y_scale = float(np.mean(trace.times_s("fmax")))
    gamma = config.gamma_rel * len(trace) * y_scale
    predictor = ExecutionTimePredictor.train(
        encoder,
        trace,
        alpha=config.alpha,
        gamma=gamma,
        margin=config.margin,
        max_iter=config.max_iter,
        degree=config.model_degree,
    )

    # 4. Slice to the selected features.  "full" disables the slicer's
    # dependence pruning entirely — the slicing-off ablation, where the
    # predictor measures features by re-running the whole instrumented
    # program (still isolated, still paying marshalling).
    slicer = Slicer(
        marshal_base_instr=config.slice_marshal_base_instr,
        marshal_per_var_instr=config.slice_marshal_per_var_instr,
    )
    if config.slice_mode == "full":
        slice_ = slicer.slice(instrumented, None, prune=False)
    else:
        slice_ = slicer.slice(instrumented, set(predictor.needed_sites))

    # 4b. Optionally optimize the slice (opt-in).  This happens BEFORE
    # certification so the certificate covers the program the governor
    # will actually run; the optimizer's own translation validator has
    # already discarded any rewrite it could not prove equivalent.
    if config.optimize != "off":
        from dataclasses import replace as _replace

        from repro.programs.opt import optimize_program

        opt_result = optimize_program(
            slice_.program,
            input_ranges=profiled_input_ranges(
                sample_inputs, widen=config.certify_input_widen
            ),
        )
        if opt_result.changed:
            slice_ = _replace(slice_, program=opt_result.program)

    # 5. Certify the slice before it can reach a governor.
    certificate = None
    if config.certify != "off":
        certificate = certify_slice(
            instrumented,
            slice_,
            needed_sites=frozenset(predictor.needed_sites),
            input_names=frozenset().union(
                *(frozenset(job) for job in sample_inputs)
            ),
            input_ranges=profiled_input_ranges(
                sample_inputs, widen=config.certify_input_widen
            ),
            waivers=app.certifier_waivers,
        )
        if not certificate.certified:
            if config.certify == "error":
                raise CertificationError(certificate)
            warnings.warn(
                f"slice for {app.name!r} failed certification: "
                + "; ".join(d.format() for d in certificate.blocking),
                stacklevel=2,
            )

    # 6. Switch-time microbenchmark.
    if switch_table is None:
        switch_table = SwitchLatencyModel(opps).microbenchmark(
            samples_per_pair=config.switch_samples
        )

    return TrainedController(
        app_name=app.name,
        instrumented=instrumented,
        trace=trace,
        encoder=encoder,
        predictor=predictor,
        slice=slice_,
        dvfs=DvfsModel(opps),
        switch_table=switch_table,
        config=config,
        certificate=certificate,
    )


def profiled_input_ranges(
    sample_inputs, widen: float = 0.0
) -> dict[str, tuple[float, float]]:
    """Per-input (lo, hi) value ranges over the profiling sample.

    These seed the certifier's interval analysis.  ``widen`` stretches
    each range by that fraction of its span on both sides (a constant
    input widens by ``widen * |value|``), covering evaluation inputs
    from tails the profiling script never drew.
    """
    ranges: dict[str, tuple[float, float]] = {}
    for job in sample_inputs:
        for name, value in job.items():
            v = float(value)
            lo, hi = ranges.get(name, (v, v))
            ranges[name] = (min(lo, v), max(hi, v))
    if widen > 0:
        for name, (lo, hi) in ranges.items():
            pad = widen * ((hi - lo) or abs(lo))
            ranges[name] = (lo - pad, hi + pad)
    return ranges
