"""Offline pipeline: instrument -> profile -> train -> slice -> controller."""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.offline import TrainedController, build_controller
from repro.pipeline.persist import load_controller, save_controller

__all__ = [
    "PipelineConfig",
    "TrainedController",
    "build_controller",
    "load_controller",
    "save_controller",
]
