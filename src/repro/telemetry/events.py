"""Event/span telemetry for the control loop.

The executor and the governors narrate a run through one
:class:`Telemetry` object: per-job spans (``release.wait`` -> ``predict``
-> ``switch`` -> ``execute`` -> ``report``), instant events (drift
alarms, deadline misses, mode changes), and counter samples (current
frequency, residuals, margin).  All timestamps are read off the Board's
*simulated* clock, so a trace lines up exactly with the run's records.

Cost discipline: the default is the :data:`NO_TELEMETRY` singleton,
whose ``enabled`` flag is False and whose methods are no-ops.  Every
instrumentation site guards with ``if telemetry.enabled:`` before
building argument dicts, so a run without tracing pays one attribute
read per site and nothing else (the perf bench asserts <2% wall time).

Events flow into a *sink*.  The default :class:`ListSink` accumulates
in memory for later export (Chrome trace JSON, JSONL, text report — see
:mod:`repro.telemetry.exporters`); :class:`CallbackSink` adapts any
callable, e.g. for streaming to an open file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.telemetry.audit import DecisionRecord
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "TelemetrySink",
    "ListSink",
    "CallbackSink",
    "Telemetry",
    "NullTelemetry",
    "NO_TELEMETRY",
]


@dataclass(frozen=True)
class TraceEvent:
    """One telemetry event, in Chrome trace-event terms.

    Attributes:
        name: Event label (``job``, ``predict``, ``drift.alarm``, ...).
        phase: ``"X"`` complete span, ``"i"`` instant, ``"C"`` counter.
        ts_s: Start timestamp on the simulated clock, seconds.
        dur_s: Span duration, seconds (0 for instants and counters).
        track: Logical thread lane the event renders on (``job``,
            ``governor``, ``online``, ...).
        category: Comma-free category tag for trace-viewer filtering.
        args: Small JSON-safe payload shown in the viewer's detail pane.
    """

    name: str
    phase: str
    ts_s: float
    dur_s: float = 0.0
    track: str = "job"
    category: str = "run"
    args: Mapping[str, Any] = field(default_factory=dict)


class TelemetrySink:
    """Receives every event a :class:`Telemetry` emits."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError


class ListSink(TelemetrySink):
    """Accumulates events in memory (the default; exporters read it)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)


class CallbackSink(TelemetrySink):
    """Adapts a callable into a sink (streaming, tee-ing, filtering)."""

    def __init__(self, callback: Callable[[TraceEvent], None]):
        self.callback = callback

    def emit(self, event: TraceEvent) -> None:
        self.callback(event)


class Telemetry:
    """One run's telemetry pipeline: events, metrics, decision audit.

    Attributes:
        name: Run label (used for export file names and trace metadata).
        sink: Destination for events (default: in-memory list).
        metrics: The run's :class:`~repro.telemetry.metrics.MetricsRegistry`.
        decisions: Ordered governor decision audit log.
        enabled: Always True here; the :data:`NO_TELEMETRY` twin is the
            off switch.
    """

    enabled = True

    def __init__(self, sink: TelemetrySink | None = None, name: str = "run"):
        self.name = name
        self.sink = sink if sink is not None else ListSink()
        self.metrics = MetricsRegistry()
        self.decisions: list[DecisionRecord] = []
        self._last_decision_index: int | None = None

    @property
    def events(self) -> list[TraceEvent]:
        """The collected events (only for the in-memory ListSink).

        Tee/wrapper sinks (e.g. the watchdog's) are unwrapped through
        their ``inner`` attribute, so attaching a watchdog does not cost
        a run its exporters.
        """
        sink = self.sink
        while not isinstance(sink, ListSink):
            inner = getattr(sink, "inner", None)
            if inner is None:
                raise TypeError(
                    f"events are not retained by {type(sink).__name__}; "
                    "use a ListSink to buffer them"
                )
            sink = inner
        return sink.events

    # -- emission --------------------------------------------------------------
    def span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        track: str = "job",
        category: str = "run",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A completed span [start_s, end_s] on the simulated clock."""
        self.sink.emit(
            TraceEvent(
                name=name,
                phase="X",
                ts_s=start_s,
                dur_s=max(end_s - start_s, 0.0),
                track=track,
                category=category,
                args=args if args is not None else {},
            )
        )

    def instant(
        self,
        name: str,
        ts_s: float,
        *,
        track: str = "job",
        category: str = "run",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A point-in-time marker (drift alarm, deadline miss, ...)."""
        self.sink.emit(
            TraceEvent(
                name=name,
                phase="i",
                ts_s=ts_s,
                track=track,
                category=category,
                args=args if args is not None else {},
            )
        )

    def counter(self, name: str, ts_s: float, value: float) -> None:
        """A sampled numeric series (frequency, residual, margin)."""
        self.sink.emit(
            TraceEvent(
                name=name,
                phase="C",
                ts_s=ts_s,
                track=name,
                category="counter",
                args={"value": value},
            )
        )

    # -- decision audit --------------------------------------------------------
    def record_decision(self, record: DecisionRecord) -> None:
        """Append to the audit log and mirror an instant on the trace."""
        self.decisions.append(record)
        self._last_decision_index = record.job_index
        self.instant(
            "decision",
            record.t_s,
            track="governor",
            category="decision",
            # Scalars only: the full provenance payload would bloat the
            # Chrome trace; it ships in the decisions log instead.
            args=record.summary_dict(),
        )

    def has_decision_for(self, job_index: int) -> bool:
        """Whether the governor already audited this job's decision."""
        return self._last_decision_index == job_index

    # -- export shortcuts ------------------------------------------------------
    def chrome_trace(self) -> dict:
        """This run as a Chrome trace-event JSON object (Perfetto-ready)."""
        from repro.telemetry.exporters import chrome_trace

        return chrome_trace(self.events, name=self.name)

    def events_jsonl(self) -> str:
        """This run's events as one JSON object per line."""
        from repro.telemetry.exporters import events_jsonl

        return events_jsonl(self.events)

    def report(self) -> str:
        """Plain-text run summary (spans, metrics, decisions)."""
        from repro.telemetry.report import render_report

        return render_report(self)


class NullTelemetry:
    """The no-op twin of :class:`Telemetry` — the zero-cost default.

    ``enabled`` is False, so instrumentation sites skip argument
    construction entirely; the methods exist (and do nothing) so
    unguarded calls are still safe.  The export surface exists too and
    yields valid *empty* artifacts, so code that unconditionally writes
    a run's trace files (e.g. :func:`~repro.telemetry.exporters.
    write_run`) need not special-case the disabled pipeline.
    """

    enabled = False
    name = "off"
    decisions: tuple = ()
    events: tuple = ()

    def span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    def counter(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_decision(self, record: DecisionRecord) -> None:
        pass

    def has_decision_for(self, job_index: int) -> bool:
        return True  # suppresses the executor's fallback audit path

    # -- export shortcuts (valid, empty) ---------------------------------------
    def chrome_trace(self) -> dict:
        from repro.telemetry.exporters import chrome_trace

        return chrome_trace((), name=self.name)

    def events_jsonl(self) -> str:
        from repro.telemetry.exporters import events_jsonl

        return events_jsonl(())

    def report(self) -> str:
        from repro.telemetry.report import render_report

        return render_report(self)


class _NullMetric:
    """Accepts any write and ignores it."""

    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullMetricsRegistry:
    """Registry stand-in for :class:`NullTelemetry` (never accumulates)."""

    _metric = _NullMetric()

    def counter(self, name: str) -> _NullMetric:
        return self._metric

    def gauge(self, name: str) -> _NullMetric:
        return self._metric

    def histogram(self, name: str, bounds=None) -> _NullMetric:
        return self._metric

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NullTelemetry.metrics = _NullMetricsRegistry()

#: Shared disabled pipeline; the executor default.  Stateless, so one
#: instance serves every run.
NO_TELEMETRY = NullTelemetry()
