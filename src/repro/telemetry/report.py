"""Plain-text telemetry reports: per-run summaries and run diffs.

Two consumers: :func:`render_report` summarises a live
:class:`~repro.telemetry.events.Telemetry` (span totals, metric
snapshots, audit-log shape) and backs the ``<name>.report.txt`` export;
:func:`summarize_directory` / :func:`diff_directories` power the
``python -m repro report`` subcommand from the ``metrics.json`` files a
:class:`~repro.telemetry.exporters.TraceSession` wrote, so two runs —
say, before and after a controller change — can be compared without
re-simulating either.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict
from typing import Iterable

__all__ = [
    "render_report",
    "summarize_directory",
    "diff_directories",
]


def _table(headers: list[str], rows: list[tuple], title: str = "") -> str:
    """Minimal fixed-width table (kept local: telemetry is zero-dep)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value, unit_ms: bool = False) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value * 1e3:.3f}" if unit_ms else f"{value:.4g}"
    return str(value)


def render_report(telemetry) -> str:
    """One run's telemetry as a human-readable summary."""
    sections = [f"telemetry report: {telemetry.name}"]

    spans: dict[str, list[float]] = defaultdict(list)
    instants: dict[str, int] = defaultdict(int)
    for event in telemetry.events:
        if event.phase == "X":
            spans[event.name].append(event.dur_s)
        elif event.phase == "i" and event.category != "decision":
            instants[event.name] += 1
    if spans:
        rows = [
            (
                name,
                len(durs),
                f"{sum(durs) * 1e3:.3f}",
                f"{sum(durs) / len(durs) * 1e3:.4f}",
                f"{max(durs) * 1e3:.4f}",
            )
            for name, durs in sorted(spans.items())
        ]
        sections.append(
            _table(
                ["span", "count", "total[ms]", "mean[ms]", "max[ms]"],
                rows,
                title="spans",
            )
        )
    if instants:
        rows = [(name, count) for name, count in sorted(instants.items())]
        sections.append(_table(["event", "count"], rows, title="instants"))

    metrics = telemetry.metrics.as_dict()
    if metrics["counters"]:
        rows = [(n, _fmt(v)) for n, v in metrics["counters"].items()]
        sections.append(_table(["counter", "value"], rows, title="counters"))
    if metrics["gauges"]:
        rows = [(n, _fmt(v)) for n, v in metrics["gauges"].items()]
        sections.append(_table(["gauge", "value"], rows, title="gauges"))
    if metrics["histograms"]:
        rows = [
            (
                name,
                h["count"],
                _fmt(h["mean"], unit_ms=True),
                _fmt(h["p50"], unit_ms=True),
                _fmt(h["p95"], unit_ms=True),
                _fmt(h["p99"], unit_ms=True),
                _fmt(h["max"], unit_ms=True),
            )
            for name, h in metrics["histograms"].items()
        ]
        sections.append(
            _table(
                ["histogram", "n", "mean[ms]", "p50[ms]", "p95[ms]",
                 "p99[ms]", "max[ms]"],
                rows,
                title="histograms (values scaled as milliseconds)",
            )
        )

    decisions = list(telemetry.decisions)
    if decisions:
        by_mode: dict[str, int] = defaultdict(int)
        for record in decisions:
            by_mode[record.mode or "-"] += 1
        modes = ", ".join(f"{m}:{c}" for m, c in sorted(by_mode.items()))
        sections.append(
            f"decisions: {len(decisions)} audited (mode {modes})"
        )
    return "\n\n".join(sections)


# -- directory summaries (the `report` subcommand) ----------------------------
def _load_metrics(directory: pathlib.Path) -> dict[str, dict]:
    """All ``<run>.metrics.json`` files in a trace directory, by run."""
    runs = {}
    for path in sorted(directory.glob("*.metrics.json")):
        runs[path.name[: -len(".metrics.json")]] = json.loads(
            path.read_text()
        )
    if not runs:
        raise FileNotFoundError(
            f"no *.metrics.json files under {directory} — "
            "was it produced by --trace?"
        )
    return runs


def summarize_directory(directory: pathlib.Path | str) -> str:
    """Summary table over every run recorded in a trace directory."""
    directory = pathlib.Path(directory)
    runs = _load_metrics(directory)
    rows = []
    for name, metrics in runs.items():
        counters = metrics["counters"]
        hist = metrics["histograms"].get("executor.slack_s", {})
        rows.append(
            (
                name,
                int(counters.get("executor.jobs", 0)),
                int(counters.get("executor.misses", 0)),
                int(counters.get("executor.switches", 0)),
                int(counters.get("adaptive.drift_alarms", 0)),
                _fmt(hist.get("p50"), unit_ms=True),
                _fmt(hist.get("p95"), unit_ms=True),
            )
        )
    return _table(
        ["run", "jobs", "misses", "switches", "alarms",
         "slack-p50[ms]", "slack-p95[ms]"],
        rows,
        title=f"trace summary: {directory}",
    )


def _flatten(metrics: dict) -> dict[str, float]:
    """Counters, gauges, and histogram p50/p95 as one flat mapping."""
    flat: dict[str, float] = {}
    for name, value in metrics["counters"].items():
        flat[name] = value
    for name, value in metrics["gauges"].items():
        if value is not None:
            flat[name] = value
    for name, hist in metrics["histograms"].items():
        for q in ("p50", "p95"):
            if hist.get(q) is not None:
                flat[f"{name}.{q}"] = hist[q]
    return flat


def diff_directories(
    a: pathlib.Path | str, b: pathlib.Path | str
) -> str:
    """Metric-by-metric diff of two trace directories, by run name."""
    a, b = pathlib.Path(a), pathlib.Path(b)
    runs_a, runs_b = _load_metrics(a), _load_metrics(b)
    shared = sorted(set(runs_a) & set(runs_b))
    if not shared:
        return (
            f"no run names shared between {a} ({sorted(runs_a)}) "
            f"and {b} ({sorted(runs_b)})"
        )
    sections = [f"trace diff: {a}  vs  {b}"]
    for name in shared:
        flat_a, flat_b = _flatten(runs_a[name]), _flatten(runs_b[name])
        rows = []
        for key in sorted(set(flat_a) | set(flat_b)):
            va, vb = flat_a.get(key), flat_b.get(key)
            if va == vb:
                continue
            if va is not None and vb is not None:
                delta = vb - va
                rows.append((key, _fmt(va), _fmt(vb), f"{delta:+.4g}"))
            else:
                rows.append((key, _fmt(va), _fmt(vb), "-"))
        if rows:
            sections.append(
                _table(["metric", "a", "b", "delta"], rows, title=name)
            )
        else:
            sections.append(f"{name}: identical")
    only = sorted((set(runs_a) | set(runs_b)) - set(shared))
    if only:
        sections.append(f"runs present on one side only: {', '.join(only)}")
    return "\n\n".join(sections)
