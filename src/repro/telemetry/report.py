"""Plain-text telemetry reports: run summaries, diffs, regression gates.

Three consumers: :func:`render_report` summarises a live
:class:`~repro.telemetry.events.Telemetry` (span totals, metric
snapshots, audit-log shape) and backs the ``<name>.report.txt`` export;
:func:`summarize_directory` / :func:`compare_directories` power the
``python -m repro report`` subcommand from the ``metrics.json`` files a
:class:`~repro.telemetry.exporters.TraceSession` wrote, so two runs —
say, before and after a controller change — can be compared without
re-simulating either; and :func:`gate_directory` /
:func:`make_baseline` turn the comparison into a CI regression gate
against a *committed* baseline (``BENCH_slo_baseline.json``).

Regressions are directional: a metric name is classified by
:func:`metric_direction` into lower-is-better (misses, energy, any
``*_time_s`` tail), higher-is-better (slack), or neutral (job counts,
residency splits).  Neutral metrics still gate on *any* drift beyond
tolerance — a changed job count means the runs are not comparable at
all.
"""

from __future__ import annotations

import json
import math
import pathlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "render_report",
    "summarize_directory",
    "diff_directories",
    "compare_directories",
    "metric_direction",
    "MetricDelta",
    "DirectoryDiff",
    "GateFailure",
    "GateResult",
    "make_baseline",
    "gate_directory",
    "GATE_DEFAULT_METRICS",
]


def _table(headers: list[str], rows: list[tuple], title: str = "") -> str:
    """Minimal fixed-width table (kept local: telemetry is zero-dep)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value, unit_ms: bool = False) -> str:
    # None marks "no data" (empty histogram, zero-job run, metric absent
    # on one side of a diff): render n/a rather than crash or mislead.
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value * 1e3:.3f}" if unit_ms else f"{value:.4g}"
    return str(value)


def render_report(telemetry) -> str:
    """One run's telemetry as a human-readable summary."""
    sections = [f"telemetry report: {telemetry.name}"]

    spans: dict[str, list[float]] = defaultdict(list)
    instants: dict[str, int] = defaultdict(int)
    for event in telemetry.events:
        if event.phase == "X":
            spans[event.name].append(event.dur_s)
        elif event.phase == "i" and event.category != "decision":
            instants[event.name] += 1
    if spans:
        rows = [
            (
                name,
                len(durs),
                f"{sum(durs) * 1e3:.3f}",
                f"{sum(durs) / len(durs) * 1e3:.4f}",
                f"{max(durs) * 1e3:.4f}",
            )
            for name, durs in sorted(spans.items())
        ]
        sections.append(
            _table(
                ["span", "count", "total[ms]", "mean[ms]", "max[ms]"],
                rows,
                title="spans",
            )
        )
    if instants:
        rows = [(name, count) for name, count in sorted(instants.items())]
        sections.append(_table(["event", "count"], rows, title="instants"))

    metrics = telemetry.metrics.as_dict()
    if metrics["counters"]:
        rows = [(n, _fmt(v)) for n, v in metrics["counters"].items()]
        sections.append(_table(["counter", "value"], rows, title="counters"))
    if metrics["gauges"]:
        rows = [(n, _fmt(v)) for n, v in metrics["gauges"].items()]
        sections.append(_table(["gauge", "value"], rows, title="gauges"))
    if metrics["histograms"]:
        rows = [
            (
                name,
                h["count"],
                _fmt(h["mean"], unit_ms=True),
                _fmt(h["p50"], unit_ms=True),
                _fmt(h["p95"], unit_ms=True),
                _fmt(h["p99"], unit_ms=True),
                _fmt(h["max"], unit_ms=True),
            )
            for name, h in metrics["histograms"].items()
        ]
        sections.append(
            _table(
                ["histogram", "n", "mean[ms]", "p50[ms]", "p95[ms]",
                 "p99[ms]", "max[ms]"],
                rows,
                title="histograms (values scaled as milliseconds)",
            )
        )

    decisions = list(telemetry.decisions)
    if decisions:
        by_mode: dict[str, int] = defaultdict(int)
        for record in decisions:
            by_mode[record.mode or "-"] += 1
        modes = ", ".join(f"{m}:{c}" for m, c in sorted(by_mode.items()))
        sections.append(
            f"decisions: {len(decisions)} audited (mode {modes})"
        )
    return "\n\n".join(sections)


# -- directory summaries (the `report` subcommand) ----------------------------
def _load_metrics(
    directory: pathlib.Path, runs: str | None = None
) -> dict[str, dict]:
    """All ``<run>.metrics.json`` files in a trace directory, by run.

    Args:
        directory: Trace directory to scan.
        runs: Optional run-name prefix filter (same contract as the
            CLI's ``--runs``): only matching runs load, and it is an
            error for nothing to match — a silent empty slice would
            make a gate or diff vacuously pass.
    """
    loaded = {}
    for path in sorted(directory.glob("*.metrics.json")):
        loaded[path.name[: -len(".metrics.json")]] = json.loads(
            path.read_text()
        )
    if not loaded:
        raise FileNotFoundError(
            f"no *.metrics.json files under {directory} — "
            "was it produced by --trace?"
        )
    if runs is not None:
        filtered = {
            name: payload
            for name, payload in loaded.items()
            if name.startswith(runs)
        }
        if not filtered:
            raise FileNotFoundError(
                f"no run under {directory} matches prefix {runs!r}; "
                f"directory has {sorted(loaded)}"
            )
        return filtered
    return loaded


def summarize_directory(
    directory: pathlib.Path | str, runs: str | None = None
) -> str:
    """Summary table over every run recorded in a trace directory.

    Degrades gracefully on partial traces: a run without an audit log,
    or with records from another schema version, gets a warning line in
    the decision-provenance section instead of an exception.

    Args:
        directory: Trace directory holding ``<run>.metrics.json`` files.
        runs: Optional run-name prefix; only matching runs summarize
            (so ``host.`` / ``fleet.`` / ``watch.`` slices can be
            inspected separately).
    """
    directory = pathlib.Path(directory)
    runs = _load_metrics(directory, runs=runs)
    rows = []
    for name, metrics in runs.items():
        counters = metrics["counters"]
        hist = metrics["histograms"].get("executor.slack_s", {})
        rows.append(
            (
                name,
                int(counters.get("executor.jobs", 0)),
                int(counters.get("executor.misses", 0)),
                int(counters.get("executor.switches", 0)),
                int(counters.get("adaptive.drift_alarms", 0)),
                _fmt(hist.get("p50"), unit_ms=True),
                _fmt(hist.get("p95"), unit_ms=True),
            )
        )
    text = _table(
        ["run", "jobs", "misses", "switches", "alarms",
         "slack-p50[ms]", "slack-p95[ms]"],
        rows,
        title=f"trace summary: {directory}",
    )
    return text + "\n\n" + _decisions_section(directory, runs)


def _decisions_section(directory: pathlib.Path, runs: dict) -> str:
    """Per-run audit-log coverage, warn-don't-crash on missing/old logs."""
    from repro.telemetry.audit import read_decisions_jsonl

    lines = ["decision provenance:"]
    for name in runs:
        log = directory / f"{name}.decisions.jsonl"
        records, warnings = read_decisions_jsonl(log)
        attributed = sum(1 for r in records if r.attribution is not None)
        if records:
            lines.append(
                f"  {name}: {len(records)} decisions audited, "
                f"{attributed} with attribution"
                + (" (replayable via `repro replay`)" if attributed else "")
            )
        for warning in warnings:
            lines.append(f"  {name}: warning: {warning}")
        if not records and not warnings:
            lines.append(f"  {name}: audit log is empty")
    return "\n".join(lines)


def _flatten(metrics: dict) -> dict[str, float]:
    """Counters, gauges, and histogram p50/p95 as one flat mapping."""
    flat: dict[str, float] = {}
    for name, value in metrics["counters"].items():
        flat[name] = value
    for name, value in metrics["gauges"].items():
        if value is not None:
            flat[name] = value
    for name, hist in metrics["histograms"].items():
        for q in ("p50", "p95"):
            if hist.get(q) is not None:
                flat[f"{name}.{q}"] = hist[q]
    return flat


# -- regression semantics ------------------------------------------------------
#: Substrings that classify a metric's better-direction.  Checked in
#: order: higher-is-better wins (slack percentiles contain "_s" too).
_HIGHER_IS_BETTER = ("slack", "jobs_per_sec", "throughput", "savings")
_LOWER_IS_BETTER = (
    "miss",
    "alarm",
    "alert",
    "anomal",
    "diagnostic",
    "energy",
    "time_s",
    "latency",
    "rejected_certificates",
    "retarget",
    "bound_exceeded",
    "external_arms",
    "us_per_job",
    "wall_s",
)


def metric_direction(name: str) -> str | None:
    """``"higher"``/``"lower"`` = which direction is better; None = neutral."""
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_IS_BETTER):
        return "higher"
    if any(token in lowered for token in _LOWER_IS_BETTER):
        return "lower"
    return None


def _regressed(
    baseline: float, observed: float, direction: str | None, tolerance: float
) -> bool:
    """Whether ``observed`` is worse than ``baseline`` beyond tolerance.

    Tolerance is relative to the baseline magnitude with a small
    absolute floor, so a zero baseline (0 misses) still admits strictly
    nothing worse than zero-plus-noise.
    """
    allowance = tolerance * abs(baseline) + 1e-9
    if direction == "lower":
        return observed > baseline + allowance
    if direction == "higher":
        return observed < baseline - allowance
    return abs(observed - baseline) > allowance


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two runs."""

    run: str
    metric: str
    a: float | None
    b: float | None
    regressed: bool

    @property
    def delta(self) -> float | None:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a


@dataclass(frozen=True)
class DirectoryDiff:
    """Structured outcome of comparing two trace directories.

    Attributes:
        text: The human-readable diff (what the CLI prints).
        deltas: Every changed metric across all shared runs.
        regressions: The subset that moved in the *worse* direction
            beyond the tolerance.
        shared_runs: Run names present on both sides.
    """

    text: str
    deltas: tuple[MetricDelta, ...]
    regressions: tuple[MetricDelta, ...]
    shared_runs: tuple[str, ...]


def compare_directories(
    a: pathlib.Path | str,
    b: pathlib.Path | str,
    tolerance: float = 0.05,
    runs: str | None = None,
) -> DirectoryDiff:
    """Metric-by-metric comparison of two trace directories.

    Args:
        a: Baseline trace directory.
        b: Candidate trace directory.
        tolerance: Relative movement allowed before a directional metric
            counts as a regression.
        runs: Optional run-name prefix; only matching runs on each side
            are compared.
    """
    a, b = pathlib.Path(a), pathlib.Path(b)
    runs_a = _load_metrics(a, runs=runs)
    runs_b = _load_metrics(b, runs=runs)
    shared = sorted(set(runs_a) & set(runs_b))
    # A run the baseline has but the candidate lost is a regression,
    # not a footnote: a truncated or silently-skipped run would
    # otherwise make the diff look *cleaner* than a complete one.
    missing = sorted(set(runs_a) - set(runs_b))
    missing_deltas = tuple(
        MetricDelta(
            run=name, metric="<run missing from b>", a=1.0, b=None,
            regressed=True,
        )
        for name in missing
    )
    if not shared:
        text = (
            f"no run names shared between {a} ({sorted(runs_a)}) "
            f"and {b} ({sorted(runs_b)})"
        )
        if missing:
            text += (
                f"\n\n{len(missing)} baseline run(s) missing from "
                f"{b}: " + ", ".join(missing)
            )
        return DirectoryDiff(
            text=text,
            deltas=missing_deltas,
            regressions=missing_deltas,
            shared_runs=(),
        )
    sections = [f"trace diff: {a}  vs  {b}"]
    deltas: list[MetricDelta] = []
    for name in shared:
        flat_a, flat_b = _flatten(runs_a[name]), _flatten(runs_b[name])
        rows = []
        for key in sorted(set(flat_a) | set(flat_b)):
            va, vb = flat_a.get(key), flat_b.get(key)
            if va == vb:
                continue
            regressed = (
                va is not None
                and vb is not None
                and _regressed(va, vb, metric_direction(key), tolerance)
            )
            deltas.append(
                MetricDelta(
                    run=name, metric=key, a=va, b=vb, regressed=regressed
                )
            )
            if va is not None and vb is not None:
                mark = "  << regression" if regressed else ""
                rows.append(
                    (key, _fmt(va), _fmt(vb), f"{vb - va:+.4g}{mark}")
                )
            else:
                rows.append((key, _fmt(va), _fmt(vb), "n/a"))
        if rows:
            sections.append(
                _table(["metric", "a", "b", "delta"], rows, title=name)
            )
        else:
            sections.append(f"{name}: identical")
    if missing:
        deltas.extend(missing_deltas)
        sections.append(
            f"{len(missing)} baseline run(s) missing from {b} "
            f"(counted as regressions): " + ", ".join(missing)
        )
    extra = sorted(set(runs_b) - set(runs_a))
    if extra:
        # New runs on the candidate side are informational only.
        sections.append(f"runs only in {b}: {', '.join(extra)}")
    regressions = tuple(d for d in deltas if d.regressed)
    if regressions:
        sections.append(
            f"{len(regressions)} metric(s) regressed beyond "
            f"{100 * tolerance:g}% tolerance: "
            + ", ".join(f"{d.run}:{d.metric}" for d in regressions)
        )
    return DirectoryDiff(
        text="\n\n".join(sections),
        deltas=tuple(deltas),
        regressions=regressions,
        shared_runs=tuple(shared),
    )


def diff_directories(
    a: pathlib.Path | str,
    b: pathlib.Path | str,
    runs: str | None = None,
) -> str:
    """Metric-by-metric diff of two trace directories, as text."""
    return compare_directories(a, b, runs=runs).text


# -- the CI metrics regression gate --------------------------------------------
#: Metrics a generated baseline pins by default: the run's shape
#: (jobs), its SLO outcomes (misses, slack tail), its hot-path costs
#: (exec/predictor tails), and its energy.  Deliberately curated — the
#: full flattened set would gate on noise like per-OPP residency splits.
GATE_DEFAULT_METRICS = (
    "executor.jobs",
    "executor.misses",
    "executor.switches",
    "executor.energy_j",
    "executor.slack_s.p50",
    "executor.slack_s.p95",
    "executor.exec_time_s.p95",
    "executor.predictor_time_s.p95",
    # Fleet roll-up summaries (``repro fleet run --trace``); absent from
    # single-run traces, so they pin nothing there.
    "fleet.sessions",
    "fleet.jobs",
    "fleet.misses",
    "fleet.energy_j",
    "fleet.budget_consumed",
    "fleet.page_alerts",
    "fleet.slack_p50_s",
    "fleet.slack_p95_s",
    # Host-side throughput (``repro profile --trace``); wall-clock, so
    # baselines for these carry a much wider tolerance than simulated
    # metrics (see BENCH_host_baseline.json).
    "host.jobs_per_sec",
    "host.us_per_job.total",
    # Static-analysis lint roll-up (``repro lint --trace``); the counts
    # are exact, so BENCH_lint_baseline.json pins them at zero drift.
    # ``lint.workloads`` is neutral — a changed workload count means the
    # lint runs are not comparable; the finding counters gate
    # lower-is-better via the "diagnostic" direction token.
    "lint.workloads",
    "lint.diagnostics.error",
    "lint.diagnostics.warning",
    "lint.opt.rejected_certificates",
    # Energy-attribution roll-up (``repro energy --trace``); the ledger
    # is deterministic, so BENCH_energy_baseline.json pins total joules,
    # per-job joules, the conservation error (effectively zero) and the
    # normalized saving ("savings" gates higher-is-better, beating the
    # lower-is-better "energy" token).
    "energy.jobs",
    "energy.total_j",
    "energy.j_per_job",
    "energy.savings_frac",
    "energy.conservation_error_j",
    # Ablation-matrix roll-up (``repro ablate run``); the matrix is
    # byte-deterministic, so BENCH_ablate_baseline.json pins its shape,
    # the baseline variant's health, and every registered component's
    # measured importance — a code change that silently rewrites which
    # components matter fails the gate.
    "ablate.cells",
    "ablate.components",
    "ablate.jobs",
    "ablate.baseline.miss_rate",
    "ablate.baseline.energy_per_job_j",
    "ablate.baseline.savings_frac",
    "ablate.baseline.p05_slack_s",
    "ablate.asymmetric_loss.importance",
    "ablate.asymmetric_loss.miss_rate_delta_pp",
    "ablate.safety_margin.importance",
    "ablate.safety_margin.miss_rate_delta_pp",
    "ablate.safety_margin.energy_delta_frac",
    "ablate.slicing.importance",
    "ablate.recalibration.importance",
    "ablate.bound_skip.importance",
    "ablate.aimd_margin.importance",
    "ablate.fallback.importance",
)

#: Tolerance written into generated baselines (a run re-simulated from
#: committed seeds is deterministic; the headroom absorbs cross-version
#: floating-point drift, not behaviour changes).
_BASELINE_DEFAULT_TOLERANCE = 0.10


def make_baseline(
    directory: pathlib.Path | str,
    metrics: Iterable[str] | None = None,
    tolerance: float = _BASELINE_DEFAULT_TOLERANCE,
) -> dict:
    """Snapshot a trace directory's gated metrics as a baseline object.

    The result is the committed-file format ``gate_directory`` consumes::

        {"tolerance": 0.1,
         "runs": {"<run>": {"executor.misses": 3.0, ...}, ...}}
    """
    directory = pathlib.Path(directory)
    wanted = tuple(metrics) if metrics is not None else GATE_DEFAULT_METRICS
    runs = {}
    for name, payload in _load_metrics(directory).items():
        flat = _flatten(payload)
        runs[name] = {
            metric: flat[metric] for metric in wanted if metric in flat
        }
    return {"tolerance": tolerance, "runs": runs}


@dataclass(frozen=True)
class GateFailure:
    """One gate violation, with enough context to read in CI logs."""

    run: str
    metric: str
    baseline: float | None
    observed: float | None
    reason: str


@dataclass(frozen=True)
class GateResult:
    """Outcome of gating a trace directory against a baseline.

    Attributes:
        text: Human-readable gate report (pass and fail rows).
        failures: Every violation; empty means the gate passed.
        checked: (run, metric) pairs that were actually compared.
    """

    text: str
    failures: tuple[GateFailure, ...]
    checked: int

    @property
    def passed(self) -> bool:
        return not self.failures


def gate_directory(
    directory: pathlib.Path | str,
    baseline: dict,
    tolerance: float | None = None,
    runs: str | None = None,
) -> GateResult:
    """Hold a trace directory to a committed metrics baseline.

    Every metric pinned by the baseline must be present in the run and
    must not have moved in the worse direction beyond the tolerance
    (baseline file's own tolerance unless overridden).  Neutral metrics
    (e.g. job counts) must match within tolerance in *either* direction.

    Args:
        directory: Trace directory of the candidate run(s).
        baseline: Parsed baseline object (see :func:`make_baseline`).
        tolerance: Override for the baseline's recorded tolerance.
        runs: Optional run-name prefix; only baseline runs whose name
            starts with it are gated.  Lets one committed baseline
            cover separate CI jobs (``"watch."`` vs ``"fleet."``)
            without each job failing on the other's missing runs.
    """
    directory = pathlib.Path(directory)
    if "runs" not in baseline:
        raise ValueError(
            "baseline has no 'runs' key — was it written by "
            "`repro report DIR --make-baseline`?"
        )
    tol = (
        tolerance
        if tolerance is not None
        else float(baseline.get("tolerance", _BASELINE_DEFAULT_TOLERANCE))
    )
    gated_runs = dict(baseline["runs"])
    if runs is not None:
        gated_runs = {
            name: pinned
            for name, pinned in gated_runs.items()
            if name.startswith(runs)
        }
        if not gated_runs:
            raise ValueError(
                f"no baseline run matches prefix {runs!r}; "
                f"baseline has {sorted(baseline['runs'])}"
            )
    observed_runs = _load_metrics(directory)
    failures: list[GateFailure] = []
    rows = []
    checked = 0
    for run_name, pinned in sorted(gated_runs.items()):
        if run_name not in observed_runs:
            failures.append(
                GateFailure(
                    run=run_name,
                    metric="-",
                    baseline=None,
                    observed=None,
                    reason="baseline run missing from trace directory",
                )
            )
            rows.append((run_name, "-", "n/a", "n/a", "MISSING RUN"))
            continue
        flat = _flatten(observed_runs[run_name])
        for metric, base_value in sorted(pinned.items()):
            checked += 1
            observed = flat.get(metric)
            if observed is None:
                failures.append(
                    GateFailure(
                        run=run_name,
                        metric=metric,
                        baseline=base_value,
                        observed=None,
                        reason="metric missing from run",
                    )
                )
                rows.append(
                    (run_name, metric, _fmt(base_value), "n/a", "MISSING")
                )
                continue
            direction = metric_direction(metric)
            if _regressed(base_value, observed, direction, tol):
                worse = "drifted" if direction is None else "regressed"
                failures.append(
                    GateFailure(
                        run=run_name,
                        metric=metric,
                        baseline=base_value,
                        observed=observed,
                        reason=(
                            f"{worse} beyond {100 * tol:g}% tolerance "
                            f"({_fmt(base_value)} -> {_fmt(observed)})"
                        ),
                    )
                )
                rows.append(
                    (
                        run_name,
                        metric,
                        _fmt(base_value),
                        _fmt(observed),
                        "FAIL",
                    )
                )
            else:
                rows.append(
                    (
                        run_name,
                        metric,
                        _fmt(base_value),
                        _fmt(observed),
                        "ok",
                    )
                )
    verdict = (
        f"gate PASSED ({checked} metric(s) within {100 * tol:g}% tolerance)"
        if not failures
        else "gate FAILED: "
        + "; ".join(f"{f.run}:{f.metric} {f.reason}" for f in failures)
    )
    text = (
        _table(
            ["run", "metric", "baseline", "observed", "status"],
            rows,
            title=f"metrics gate: {directory}",
        )
        + "\n\n"
        + verdict
    )
    return GateResult(
        text=text, failures=tuple(failures), checked=checked
    )
