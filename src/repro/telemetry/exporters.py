"""Exporters: Chrome trace-event JSON, JSONL streams, and trace sessions.

The Chrome trace format is the JSON-object flavour documented by the
Trace Event Format spec and accepted by ``chrome://tracing`` and
Perfetto's legacy importer: a ``traceEvents`` array of events with
``name``/``ph``/``ts``/``pid``/``tid`` fields, microsecond timestamps,
plus ``M``-phase metadata naming the process and the logical tracks.

:class:`TraceSession` is the disk-facing driver used by ``--trace DIR``:
it hands out one named :class:`~repro.telemetry.events.Telemetry` per
run and, on :meth:`~TraceSession.flush`, writes six artifacts per run::

    <name>.trace.json      Chrome trace (open in ui.perfetto.dev)
    <name>.events.jsonl    raw event stream, one JSON object per line
    <name>.decisions.jsonl governor decision audit log
    <name>.metrics.json    metrics registry dump (report/diff input)
    <name>.metrics.prom    OpenMetrics text exposition (scrape input)
    <name>.report.txt      plain-text summary
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.telemetry.events import Telemetry, TraceEvent
from repro.telemetry.openmetrics import openmetrics_text

__all__ = [
    "chrome_trace",
    "events_jsonl",
    "decisions_jsonl",
    "write_run",
    "TraceSession",
]

_PID = 1


def _tracks(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Stable track-name -> tid mapping, in order of first appearance."""
    tracks: dict[str, int] = {}
    for event in events:
        if event.track not in tracks:
            tracks[event.track] = len(tracks) + 1
    return tracks


def chrome_trace(
    events: Iterable[TraceEvent], name: str = "run"
) -> dict:
    """Convert events to a Chrome trace-event JSON object.

    Seconds become integer-free microseconds (floats are legal in the
    spec), spans map to complete (``X``) events, instants to ``i`` with
    thread scope, and counters to ``C`` series.
    """
    events = list(events)
    tracks = _tracks(events)
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": f"repro:{name}"},
        }
    ]
    for track, tid in tracks.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in events:
        payload: dict = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts_s * 1e6,
            "pid": _PID,
            "tid": tracks[event.track],
            "cat": event.category or "run",
            "args": dict(event.args),
        }
        if event.phase == "X":
            payload["dur"] = event.dur_s * 1e6
        elif event.phase == "i":
            payload["s"] = "t"  # thread-scoped instant
        trace_events.append(payload)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry", "run": name},
    }


def events_jsonl(events: Iterable[TraceEvent]) -> str:
    """Events as a JSONL stream (one object per line, spec field names)."""
    lines = []
    for event in events:
        lines.append(
            json.dumps(
                {
                    "name": event.name,
                    "ph": event.phase,
                    "ts_s": event.ts_s,
                    "dur_s": event.dur_s,
                    "track": event.track,
                    "cat": event.category,
                    "args": dict(event.args),
                }
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def decisions_jsonl(telemetry: Telemetry) -> str:
    """The decision audit log as JSONL."""
    lines = [json.dumps(record.as_dict()) for record in telemetry.decisions]
    return "\n".join(lines) + ("\n" if lines else "")


def write_run(
    telemetry: Telemetry, directory: pathlib.Path | str
) -> list[pathlib.Path]:
    """Write one run's artifacts into ``directory``; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = telemetry.name
    written = []

    def emit(suffix: str, text: str) -> None:
        path = directory / f"{name}.{suffix}"
        path.write_text(text)
        written.append(path)

    emit("trace.json", json.dumps(telemetry.chrome_trace()))
    emit("events.jsonl", telemetry.events_jsonl())
    emit("decisions.jsonl", decisions_jsonl(telemetry))
    emit("metrics.json", json.dumps(telemetry.metrics.as_dict(), indent=2))
    emit(
        "metrics.prom",
        openmetrics_text(telemetry.metrics, labels={"run": name}),
    )
    emit("report.txt", telemetry.report() + "\n")
    return written


class TraceSession:
    """Hands out per-run telemetry and writes everything on flush.

    Run names are uniquified (``name``, ``name-2``, ...) so sweeps that
    revisit the same (app, governor) pair keep every trace.
    """

    def __init__(self, directory: pathlib.Path | str):
        self.directory = pathlib.Path(directory)
        self.runs: list[Telemetry] = []
        self._names: set[str] = set()

    def telemetry_for(self, name: str) -> Telemetry:
        """A fresh enabled pipeline registered under a unique run name."""
        unique = name
        counter = 2
        while unique in self._names:
            unique = f"{name}-{counter}"
            counter += 1
        self._names.add(unique)
        telemetry = Telemetry(name=unique)
        self.runs.append(telemetry)
        return telemetry

    def flush(self) -> list[pathlib.Path]:
        """Write all runs' artifacts; returns every path written."""
        written = []
        for telemetry in self.runs:
            written.extend(write_run(telemetry, self.directory))
        return written
