"""Telemetry for the control loop: spans, metrics, audits, exporters.

The subsystem that makes a run *observable*: per-job spans on the
simulated clock, a metrics registry (counters, gauges, fixed-bucket
histograms), a governor decision audit log, and exporters to Chrome
trace-event JSON (Perfetto), JSONL, and plain-text reports.

Everything here is dependency-free and import-cycle-free: the runtime,
the governors, and the online-adaptation loop all write into one
:class:`Telemetry` per run, and :data:`NO_TELEMETRY` is the zero-cost
default when tracing is off.  See ``docs/telemetry.md``.
"""

from repro.telemetry.audit import DecisionRecord
from repro.telemetry.events import (
    NO_TELEMETRY,
    CallbackSink,
    ListSink,
    NullTelemetry,
    Telemetry,
    TelemetrySink,
    TraceEvent,
)
from repro.telemetry.exporters import (
    TraceSession,
    chrome_trace,
    decisions_jsonl,
    events_jsonl,
    write_run,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    geometric_buckets,
    percentile,
)
from repro.telemetry.report import (
    DirectoryDiff,
    GateResult,
    compare_directories,
    diff_directories,
    gate_directory,
    make_baseline,
    render_report,
    summarize_directory,
)
from repro.telemetry.slo import (
    BurnWindow,
    JobObservation,
    SloAlert,
    SloSpec,
    SloTracker,
    default_slos,
)
from repro.telemetry.watch import (
    Watchdog,
    WatchdogConfig,
    render_dashboard,
)

__all__ = [
    "DecisionRecord",
    "TraceEvent",
    "TelemetrySink",
    "ListSink",
    "CallbackSink",
    "Telemetry",
    "NullTelemetry",
    "NO_TELEMETRY",
    "TraceSession",
    "chrome_trace",
    "events_jsonl",
    "decisions_jsonl",
    "write_run",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_buckets",
    "percentile",
    "render_report",
    "summarize_directory",
    "diff_directories",
    "compare_directories",
    "DirectoryDiff",
    "GateResult",
    "make_baseline",
    "gate_directory",
    "BurnWindow",
    "JobObservation",
    "SloAlert",
    "SloSpec",
    "SloTracker",
    "default_slos",
    "Watchdog",
    "WatchdogConfig",
    "render_dashboard",
]
