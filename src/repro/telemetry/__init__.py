"""Telemetry for the control loop: spans, metrics, audits, exporters.

The subsystem that makes a run *observable*: per-job spans on the
simulated clock, a metrics registry (counters, gauges, fixed-bucket
histograms), a governor decision audit log, and exporters to Chrome
trace-event JSON (Perfetto), JSONL, and plain-text reports.

The subsystem stays import-cycle-free (only the provenance engine pulls
in numpy; nothing here imports the governors or the runtime): the
runtime, the governors, and the online-adaptation loop all write into
one :class:`Telemetry` per run, and :data:`NO_TELEMETRY` is the
zero-cost default when tracing is off.  Schema-v2 decision records add
full provenance — per-feature attribution, coefficient snapshots, and
the OPP ladder — consumed by ``repro explain`` / ``repro replay`` /
``repro diff-decisions``.  See ``docs/telemetry.md`` and
``docs/decision_provenance.md``.
"""

from repro.telemetry.audit import (
    SCHEMA_VERSION,
    AnchorSnapshot,
    DecisionAttribution,
    DecisionRecord,
    LadderRung,
    read_decisions_jsonl,
)
from repro.telemetry.energy import (
    CONSERVATION_TOL_J,
    ENERGY_PHASES,
    NO_ENERGY_LEDGER,
    OVERLAP_PHASE,
    EnergyLedger,
    EnergyState,
    NullEnergyLedger,
    energy_flamegraph_text,
    energy_metrics,
    energy_weighted_phases,
    merge_energy,
    register_energy_metrics,
    render_energy,
    render_energy_cells,
    write_energy_report,
)
from repro.telemetry.events import (
    NO_TELEMETRY,
    CallbackSink,
    ListSink,
    NullTelemetry,
    Telemetry,
    TelemetrySink,
    TraceEvent,
)
from repro.telemetry.exporters import (
    TraceSession,
    chrome_trace,
    decisions_jsonl,
    events_jsonl,
    write_run,
)
from repro.telemetry.hostprof import (
    NO_HOSTPROF,
    HostProfiler,
    Hotspot,
    NullHostProfiler,
    ProfileState,
    StackSampler,
    best_of,
    flamegraph_text,
    host_metrics,
    hotspots,
    merge_profiles,
    register_host_metrics,
    render_hotspots,
    render_profile,
    write_host_profile,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    geometric_buckets,
    percentile,
)
from repro.telemetry.openmetrics import (
    openmetrics_directory,
    openmetrics_text,
)
from repro.telemetry.provenance import (
    DecisionDiff,
    Divergence,
    ReplayedDecision,
    ReplayResult,
    build_provenance,
    diff_decisions,
    load_run_decisions,
    predict_anchor,
    render_diff,
    render_explanation,
    render_replay,
    replay_records,
)
from repro.telemetry.report import (
    DirectoryDiff,
    GateResult,
    compare_directories,
    diff_directories,
    gate_directory,
    make_baseline,
    render_report,
    summarize_directory,
)
from repro.telemetry.slo import (
    BurnWindow,
    JobObservation,
    SloAlert,
    SloSpec,
    SloTracker,
    SloTrackerState,
    default_slos,
    merge_states,
)
from repro.telemetry.watch import (
    Watchdog,
    WatchdogConfig,
    render_dashboard,
)

__all__ = [
    "SCHEMA_VERSION",
    "AnchorSnapshot",
    "DecisionAttribution",
    "DecisionRecord",
    "LadderRung",
    "read_decisions_jsonl",
    "build_provenance",
    "predict_anchor",
    "ReplayedDecision",
    "ReplayResult",
    "replay_records",
    "Divergence",
    "DecisionDiff",
    "diff_decisions",
    "load_run_decisions",
    "render_explanation",
    "render_replay",
    "render_diff",
    "TraceEvent",
    "TelemetrySink",
    "ListSink",
    "CallbackSink",
    "Telemetry",
    "NullTelemetry",
    "NO_TELEMETRY",
    "TraceSession",
    "chrome_trace",
    "events_jsonl",
    "decisions_jsonl",
    "write_run",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "geometric_buckets",
    "percentile",
    "HostProfiler",
    "NullHostProfiler",
    "NO_HOSTPROF",
    "ProfileState",
    "StackSampler",
    "Hotspot",
    "merge_profiles",
    "hotspots",
    "render_hotspots",
    "flamegraph_text",
    "host_metrics",
    "register_host_metrics",
    "render_profile",
    "write_host_profile",
    "best_of",
    "EnergyLedger",
    "NullEnergyLedger",
    "NO_ENERGY_LEDGER",
    "EnergyState",
    "ENERGY_PHASES",
    "OVERLAP_PHASE",
    "CONSERVATION_TOL_J",
    "merge_energy",
    "energy_metrics",
    "register_energy_metrics",
    "render_energy",
    "render_energy_cells",
    "energy_weighted_phases",
    "energy_flamegraph_text",
    "write_energy_report",
    "openmetrics_text",
    "openmetrics_directory",
    "render_report",
    "summarize_directory",
    "diff_directories",
    "compare_directories",
    "DirectoryDiff",
    "GateResult",
    "make_baseline",
    "gate_directory",
    "BurnWindow",
    "JobObservation",
    "SloAlert",
    "SloSpec",
    "SloTracker",
    "SloTrackerState",
    "merge_states",
    "default_slos",
    "Watchdog",
    "WatchdogConfig",
    "render_dashboard",
]
