"""Decision provenance: attribution, deterministic replay, decision diffing.

The audit log (``repro.telemetry.audit``) records *what* the governor
chose; this module makes every record answer *why* — and proves it can,
by re-deriving the decision offline.  Three pillars:

- **Attribution** (:func:`build_provenance`): capture the model-space
  feature vector, the exact anchor-model coefficients in force
  (:class:`~repro.telemetry.audit.AnchorSnapshot`), per-feature
  contributions that sum exactly to the predicted time, the fitted
  ``T_mem``/``N_dep`` DVFS terms, and the full frequency ladder with
  per-OPP accept/reject verdicts.
- **Deterministic replay** (:func:`replay_records`): reconstruct every
  frequency decision from the recorded trace plus a persisted
  controller's OPP table — no workload re-execution — and verify
  bit-exact agreement with what the governor chose live.  Counterfactual
  knobs (margin, budget, substituted coefficients) re-score a whole
  trace under a hypothetical controller.
- **Decision diffing** (:func:`diff_decisions`): align two runs' audit
  logs by job id, classify each divergence (feature drift vs. beta
  change vs. margin/budget change vs. switch-time change), and rank a
  divergence report.

Bit-exactness is the design constraint everything else bends around:
:func:`predict_anchor` reproduces the *same floating-point expression*
each live prediction path evaluates (the offline Lasso's ``(1, n)``
matmul, the online model's warm-start 1-D dot, and the RLS design-space
dot), because the three are algebraically equal but not always
last-bit equal under BLAS.

This module deliberately imports only the audit schema (plus numpy and
the stdlib): governors hand their predictor and DVFS model in as
arguments, keeping ``repro.telemetry`` import-cycle-free.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.telemetry.audit import (
    AnchorSnapshot,
    DecisionAttribution,
    DecisionRecord,
    LadderRung,
    read_decisions_jsonl,
)

__all__ = [
    "anchor_snapshot",
    "predict_anchor",
    "model_space_columns",
    "build_provenance",
    "predictor_fingerprint",
    "ReplayedDecision",
    "ReplayResult",
    "replay_records",
    "beta_from_controller_payload",
    "DIVERGENCE_KINDS",
    "Divergence",
    "DecisionDiff",
    "diff_decisions",
    "decision_logs",
    "load_run_decisions",
    "render_explanation",
    "render_replay",
    "render_diff",
    "result_json",
]

_LOG_SUFFIX = ".decisions.jsonl"


# -- attribution ---------------------------------------------------------------


def anchor_snapshot(model: Any) -> AnchorSnapshot:
    """Freeze the coefficients an anchor model would predict with *now*.

    Duck-typed: an :class:`~repro.online.recalibrate.OnlineAnchorModel`
    exposes ``snapshot()`` (kind ``online-pre``/``online``); anything
    with ``coef_``/``intercept_`` (the offline asymmetric Lasso) becomes
    an ``offline`` snapshot.
    """
    snapshot = getattr(model, "snapshot", None)
    if callable(snapshot):
        return AnchorSnapshot.from_dict(snapshot())
    # Offline coefficients are immutable after fit, so the snapshot is
    # cached on the model (decisions are per-job; rebuilding the tuple
    # every time showed up in the attribution perf guard).
    cached = getattr(model, "_provenance_snapshot", None)
    if cached is not None:
        return cached
    built = AnchorSnapshot(
        kind="offline",
        coef=tuple(float(c) for c in model.coef_),
        intercept=float(model.intercept_),
    )
    try:
        model._provenance_snapshot = built
    except AttributeError:
        pass  # frozen/slotted models just rebuild each call
    return built


def predict_anchor(snapshot: AnchorSnapshot, x: Sequence[float]) -> float:
    """Raw anchor prediction, bit-identical to the live code path.

    Each ``kind`` mirrors one production expression exactly (same numpy
    calls, same shapes); do not "simplify" these into a common dot
    product — the result can differ in the last bit and break replay.
    """
    x = np.asarray(x, dtype=float)
    if snapshot.kind == "online":
        # RecursiveLeastSquares.predict on OnlineAnchorModel._design(x).
        design = np.append(
            np.asarray(x, dtype=float)
            / np.asarray(snapshot.scales, dtype=float),
            1.0,
        )
        return float(
            np.asarray(design, dtype=float)
            @ np.asarray(snapshot.coef, dtype=float)
        )
    coef = np.asarray(snapshot.coef, dtype=float)
    if snapshot.kind == "online-pre":
        # OnlineAnchorModel.predict_one before the first update.
        return float(np.asarray(x, dtype=float) @ coef + snapshot.intercept)
    # AsymmetricLassoModel.predict_one: a (1, n) matmul, then [0].
    return float(
        (np.asarray(x, dtype=float).reshape(1, -1) @ coef + snapshot.intercept)[
            0
        ]
    )


def _anchor_terms(
    snapshot: AnchorSnapshot, x: np.ndarray
) -> tuple[np.ndarray, float]:
    """Per-feature raw-seconds terms and the intercept of one anchor.

    The terms sum (with the intercept) to the anchor's raw prediction up
    to float rounding; the attribution's ``adjustment_s`` absorbs the
    difference exactly.
    """
    if snapshot.kind == "online":
        theta = np.asarray(snapshot.coef, dtype=float)
        scales = np.asarray(snapshot.scales, dtype=float)
        return (x / scales) * theta[:-1], float(theta[-1])
    coef = np.asarray(snapshot.coef, dtype=float)
    return x * coef, float(snapshot.intercept)


def model_space_columns(predictor: Any) -> tuple[str, ...]:
    """Labels of the (possibly polynomial-expanded) feature vector.

    Interaction terms from the degree-2 expansion are labelled
    ``a*b`` (and squares ``a*a``), matching
    :meth:`~repro.models.poly.PolynomialExpansion.terms` order.
    """
    cached = getattr(predictor, "_provenance_columns", None)
    if cached is not None:
        return cached
    names = list(predictor.encoder.column_names)
    expansion = getattr(predictor, "expansion", None)
    if expansion is None:
        columns = tuple(names)
    else:
        columns = tuple(
            "*".join(names[i] for i in term) for term in expansion.terms
        )
    try:
        predictor._provenance_columns = columns
    except AttributeError:
        pass
    return columns


def build_provenance(
    *,
    predictor: Any,
    dvfs: Any,
    raw_features: Any,
    prediction: Any,
    margin: float,
    effective_budget_s: float,
    switch_estimate_s: float,
    opp: Any,
    budget_s: float,
    deadline_s: float,
) -> tuple[DecisionAttribution, tuple[LadderRung, ...], int]:
    """Assemble the full provenance payload for one frequency decision.

    Called by the predictive/adaptive governors at decision time (only
    when telemetry is enabled).  Returns ``(attribution, ladder,
    beta_generation)`` ready for
    :meth:`~repro.governors.base.Governor.audit_decision`.

    The contribution of model-space feature ``i`` to the margined
    predicted time at the chosen frequency ``f`` is

        ``c_i = (w_max(f) * term_max_i + w_min(f) * term_min_i) * (1 + margin)``

    where the convex weights ``w_max``/``w_min`` come from writing the
    DVFS interpolation ``t(f) = T_mem + N_dep / f`` as a combination of
    the two anchor predictions (branch-aware: the component clamps of
    :meth:`~repro.models.dvfs.DvfsModel.components` collapse the weights
    to the fmax anchor).  ``adjustment_s`` closes the identity exactly.
    """
    x = np.asarray(predictor.model_space(raw_features), dtype=float)
    snap_fmax = anchor_snapshot(predictor.model_fmax)
    snap_fmin = anchor_snapshot(predictor.model_fmin)
    t_fmax_raw = predict_anchor(snap_fmax, x)
    t_fmin_raw = predict_anchor(snap_fmin, x)

    components = dvfs.components(prediction.t_fmin_s, prediction.t_fmax_s)
    fmin_hz = dvfs.opps.fmin.freq_hz
    fmax_hz = dvfs.opps.fmax.freq_hz
    span = fmax_hz - fmin_hz
    f_hz = opp.freq_hz
    # Re-derive which clamp branch components() took to pick the weights.
    ndep_unclamped = (
        fmin_hz * fmax_hz * (prediction.t_fmin_s - prediction.t_fmax_s) / span
    )
    tmem_unclamped = (
        fmax_hz * prediction.t_fmax_s - fmin_hz * prediction.t_fmin_s
    ) / span
    if ndep_unclamped < 0.0:
        w_max, w_min = 1.0, 0.0
    elif tmem_unclamped < 0.0:
        w_max, w_min = fmax_hz / f_hz, 0.0
    else:
        w_max = fmax_hz * (f_hz - fmin_hz) / (f_hz * span)
        w_min = fmin_hz * (fmax_hz - f_hz) / (f_hz * span)

    factor = 1.0 + margin
    terms_max, intercept_max = _anchor_terms(snap_fmax, x)
    terms_min, intercept_min = _anchor_terms(snap_fmin, x)
    contributions = [
        float(w_max * factor * tmax + w_min * factor * tmin)
        for tmax, tmin in zip(terms_max, terms_min)
    ]
    intercept_s = float(
        w_max * factor * intercept_max + w_min * factor * intercept_min
    )
    predicted_time_s = components.time_at(f_hz)
    adjustment_s = predicted_time_s - sum(contributions) - intercept_s

    ideal = dvfs.freq_for_budget(components, effective_budget_s)
    meetable = not math.isinf(ideal)
    ladder = []
    for point in dvfs.opps:
        time_s = components.time_at(point.freq_hz)
        ladder.append(
            LadderRung(
                freq_mhz=point.freq_mhz,
                predicted_time_s=time_s,
                margin_s=effective_budget_s - time_s,
                fits=meetable and point.freq_hz >= ideal,
                chosen=point.index == opp.index,
            )
        )
    ladder = tuple(ladder)

    attribution = DecisionAttribution(
        columns=model_space_columns(predictor),
        x=tuple(float(v) for v in x),
        contributions_s=tuple(contributions),
        intercept_s=intercept_s,
        adjustment_s=adjustment_s,
        tmem_s=components.tmem_s,
        ndep_cycles=components.ndep_cycles,
        t_fmax_raw_s=t_fmax_raw,
        t_fmin_raw_s=t_fmin_raw,
        anchor_fmax=snap_fmax,
        anchor_fmin=snap_fmin,
        switch_estimate_s=switch_estimate_s,
        budget_s=budget_s,
        deadline_s=deadline_s,
    )
    generation = int(getattr(predictor, "generation", 0))
    return attribution, ladder, generation


def predictor_fingerprint(predictor: Any) -> str:
    """Short stable hash of the coefficients a predictor decides with.

    Two runs with the same fingerprint share the exact β (and margin
    when it is a plain float); the controller persistence layer embeds
    it so a replayed trace can be matched to its controller file.
    """
    digest = hashlib.sha256()
    for model in (predictor.model_fmax, predictor.model_fmin):
        snapshot = anchor_snapshot(model)
        digest.update(snapshot.kind.encode())
        digest.update(repr(snapshot.coef).encode())
        digest.update(repr(snapshot.intercept).encode())
        digest.update(repr(snapshot.scales).encode())
    margin = getattr(predictor, "margin", None)
    margin = getattr(margin, "value", margin)
    if isinstance(margin, (int, float)):
        digest.update(repr(float(margin)).encode())
    return digest.hexdigest()[:16]


# -- deterministic replay ------------------------------------------------------


@dataclass(frozen=True)
class ReplayedDecision:
    """One decision re-derived from its record.

    ``matched`` compares *bit-exactly* (frequency and predicted time);
    ``changed`` marks a different frequency, which is the interesting
    signal under counterfactual knobs.
    """

    job_index: int
    recorded_opp_mhz: float
    replayed_opp_mhz: float
    recorded_predicted_s: float
    replayed_predicted_s: float

    @property
    def matched(self) -> bool:
        return (
            self.replayed_opp_mhz == self.recorded_opp_mhz
            and self.replayed_predicted_s == self.recorded_predicted_s
        )

    @property
    def changed(self) -> bool:
        return self.replayed_opp_mhz != self.recorded_opp_mhz

    def as_dict(self) -> dict:
        return {
            "job_index": self.job_index,
            "recorded_opp_mhz": self.recorded_opp_mhz,
            "replayed_opp_mhz": self.replayed_opp_mhz,
            "recorded_predicted_s": self.recorded_predicted_s,
            "replayed_predicted_s": self.replayed_predicted_s,
            "matched": self.matched,
        }


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one run's audit log."""

    run: str
    total: int
    decisions: tuple[ReplayedDecision, ...]
    skipped: tuple[tuple[int, str], ...]
    counterfactual: bool

    @property
    def replayed(self) -> int:
        return len(self.decisions)

    @property
    def matched(self) -> int:
        return sum(1 for d in self.decisions if d.matched)

    @property
    def mismatches(self) -> tuple[ReplayedDecision, ...]:
        return tuple(d for d in self.decisions if not d.matched)

    @property
    def changed(self) -> tuple[ReplayedDecision, ...]:
        return tuple(d for d in self.decisions if d.changed)

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "total": self.total,
            "replayed": self.replayed,
            "matched": self.matched,
            "counterfactual": self.counterfactual,
            "skipped": [
                {"job_index": job, "reason": reason}
                for job, reason in self.skipped
            ],
            "mismatches": [d.as_dict() for d in self.mismatches],
            "changed": [d.as_dict() for d in self.changed],
        }


def beta_from_controller_payload(
    payload: Mapping[str, Any],
) -> dict[str, AnchorSnapshot]:
    """Offline anchor snapshots from a ``save_controller`` JSON payload.

    The ``--beta FILE`` counterfactual: replay a trace as if these
    coefficients (not the recorded ones) had been deciding.
    """
    snapshots = {}
    for key in ("model_fmax", "model_fmin"):
        model = payload[key]
        snapshots[key] = AnchorSnapshot(
            kind="offline",
            coef=tuple(float(c) for c in model["coef"]),
            intercept=float(model["intercept"]),
        )
    return snapshots


def replay_records(
    records: Iterable[DecisionRecord],
    dvfs: Any,
    *,
    run: str = "",
    margin: float | None = None,
    budget: float | None = None,
    beta: Mapping[str, AnchorSnapshot] | None = None,
) -> ReplayResult:
    """Re-derive every attributed decision from its record alone.

    Needs only the controller's :class:`~repro.models.dvfs.DvfsModel`
    (for the OPP table) — features, coefficients, margin, and effective
    budget all come from the records, so no workload re-execution
    happens.  With no knobs set, agreement must be bit-exact; setting
    ``margin``/``budget``/``beta`` re-scores the trace under a
    hypothetical controller instead (``counterfactual=True`` in the
    result, and mismatches become *changes*, not errors).
    """
    decisions: list[ReplayedDecision] = []
    skipped: list[tuple[int, str]] = []
    total = 0
    for record in records:
        total += 1
        attribution = record.attribution
        if attribution is None or record.opp_mhz is None:
            reason = record.mode or "bare record (no attribution payload)"
            skipped.append((record.job_index, reason))
            continue
        snap_fmax = attribution.anchor_fmax
        snap_fmin = attribution.anchor_fmin
        if beta is not None:
            snap_fmax = beta["model_fmax"]
            snap_fmin = beta["model_fmin"]
        x = np.asarray(attribution.x, dtype=float)
        m = record.margin if margin is None else margin
        factor = 1.0 + m
        t_fmax_s = max(predict_anchor(snap_fmax, x), 0.0) * factor
        t_fmin_s = max(predict_anchor(snap_fmin, x), 0.0) * factor
        effective_budget_s = record.effective_budget_s
        if budget is not None:
            if math.isnan(attribution.budget_s):
                skipped.append(
                    (record.job_index, "no recorded budget to shift")
                )
                continue
            # Shift the deadline: slice time and switch estimate stay as
            # the live run paid them.
            effective_budget_s = record.effective_budget_s + (
                budget - attribution.budget_s
            )
        opp = dvfs.choose_opp(t_fmin_s, t_fmax_s, effective_budget_s)
        predicted_s = dvfs.components(t_fmin_s, t_fmax_s).time_at(opp.freq_hz)
        decisions.append(
            ReplayedDecision(
                job_index=record.job_index,
                recorded_opp_mhz=record.opp_mhz,
                replayed_opp_mhz=opp.freq_mhz,
                recorded_predicted_s=record.predicted_time_s,
                replayed_predicted_s=predicted_s,
            )
        )
    return ReplayResult(
        run=run,
        total=total,
        decisions=tuple(decisions),
        skipped=tuple(skipped),
        counterfactual=(
            margin is not None or budget is not None or beta is not None
        ),
    )


# -- decision diffing ----------------------------------------------------------

#: Divergence classes in precedence order (first matching cause wins).
DIVERGENCE_KINDS = (
    "governor-change",
    "mode-change",
    "feature-drift",
    "beta-change",
    "margin-change",
    "switch-time",
    "budget-change",
    "unexplained",
)


@dataclass(frozen=True)
class Divergence:
    """One aligned job whose decisions differ between two runs."""

    job_index: int
    kind: str
    detail: str
    opp_a_mhz: float | None
    opp_b_mhz: float | None
    predicted_a_s: float
    predicted_b_s: float
    mode_a: str
    mode_b: str

    @property
    def opp_changed(self) -> bool:
        return self.opp_a_mhz != self.opp_b_mhz

    @property
    def predicted_delta_s(self) -> float:
        delta = self.predicted_b_s - self.predicted_a_s
        return 0.0 if math.isnan(delta) else delta

    def as_dict(self) -> dict:
        return {
            "job_index": self.job_index,
            "kind": self.kind,
            "detail": self.detail,
            "opp_a_mhz": self.opp_a_mhz,
            "opp_b_mhz": self.opp_b_mhz,
            "predicted_a_s": _json_float(self.predicted_a_s),
            "predicted_b_s": _json_float(self.predicted_b_s),
            "mode_a": self.mode_a,
            "mode_b": self.mode_b,
        }


@dataclass(frozen=True)
class DecisionDiff:
    """Aligned comparison of two runs' decision streams."""

    run: str
    aligned: int
    only_a: tuple[int, ...]
    only_b: tuple[int, ...]
    divergences: tuple[Divergence, ...]

    @property
    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for divergence in self.divergences:
            counts[divergence.kind] = counts.get(divergence.kind, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "aligned": self.aligned,
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "kinds": self.kinds,
            "divergences": [d.as_dict() for d in self.divergences],
        }


def _json_float(value: float) -> float | None:
    return None if math.isnan(value) else value


def _floats_differ(a: float, b: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return False
    return a != b


def _top_feature_shift(
    a: DecisionAttribution, b: DecisionAttribution
) -> str:
    deltas = [
        (abs(xb - xa), name, xa, xb)
        for name, xa, xb in zip(a.columns, a.x, b.x)
        if xa != xb
    ]
    if not deltas:
        return "feature vectors differ"
    _, name, xa, xb = max(deltas)
    return f"{name}: {xa:g} -> {xb:g}"


def _classify(a: DecisionRecord, b: DecisionRecord) -> tuple[str, str]:
    if a.governor != b.governor:
        return "governor-change", f"{a.governor} -> {b.governor}"
    if a.mode != b.mode:
        return "mode-change", f"{a.mode or 'default'} -> {b.mode or 'default'}"
    att_a, att_b = a.attribution, b.attribution
    if att_a is None or att_b is None:
        return "unexplained", "no attribution payload on one side"
    if att_a.x != att_b.x or att_a.columns != att_b.columns:
        return "feature-drift", _top_feature_shift(att_a, att_b)
    if (
        att_a.anchor_fmax != att_b.anchor_fmax
        or att_a.anchor_fmin != att_b.anchor_fmin
        or a.beta_generation != b.beta_generation
    ):
        if a.beta_generation != b.beta_generation:
            detail = f"generation {a.beta_generation} -> {b.beta_generation}"
        else:
            # Same update count, different coefficients: the online loop
            # learned from different residuals in the two runs.
            detail = (
                "recalibrated coefficients differ at generation "
                f"{a.beta_generation}"
            )
        return "beta-change", detail
    if _floats_differ(a.margin, b.margin):
        return "margin-change", f"margin {a.margin:g} -> {b.margin:g}"
    if _floats_differ(att_a.switch_estimate_s, att_b.switch_estimate_s):
        return (
            "switch-time",
            f"switch estimate {att_a.switch_estimate_s:g}s -> "
            f"{att_b.switch_estimate_s:g}s",
        )
    if _floats_differ(a.effective_budget_s, b.effective_budget_s):
        return (
            "budget-change",
            f"effective budget {a.effective_budget_s:g}s -> "
            f"{b.effective_budget_s:g}s",
        )
    return "unexplained", "identical recorded inputs"


def diff_decisions(
    records_a: Iterable[DecisionRecord],
    records_b: Iterable[DecisionRecord],
    *,
    run: str = "",
) -> DecisionDiff:
    """Align two decision streams by job id and classify divergences.

    A job diverges when the chosen frequency or the decision mode
    differs.  Each divergence gets the first matching cause in
    :data:`DIVERGENCE_KINDS` precedence; the report ranks frequency
    changes first, then by |Δ predicted time|.
    """
    by_job_a = {r.job_index: r for r in records_a}
    by_job_b = {r.job_index: r for r in records_b}
    shared = sorted(by_job_a.keys() & by_job_b.keys())
    divergences = []
    for job in shared:
        a, b = by_job_a[job], by_job_b[job]
        if a.opp_mhz == b.opp_mhz and a.mode == b.mode:
            continue
        kind, detail = _classify(a, b)
        divergences.append(
            Divergence(
                job_index=job,
                kind=kind,
                detail=detail,
                opp_a_mhz=a.opp_mhz,
                opp_b_mhz=b.opp_mhz,
                predicted_a_s=a.predicted_time_s,
                predicted_b_s=b.predicted_time_s,
                mode_a=a.mode,
                mode_b=b.mode,
            )
        )
    divergences.sort(
        key=lambda d: (not d.opp_changed, -abs(d.predicted_delta_s), d.job_index)
    )
    return DecisionDiff(
        run=run,
        aligned=len(shared),
        only_a=tuple(sorted(by_job_a.keys() - by_job_b.keys())),
        only_b=tuple(sorted(by_job_b.keys() - by_job_a.keys())),
        divergences=tuple(divergences),
    )


# -- trace loading -------------------------------------------------------------


def decision_logs(path: str | Path) -> dict[str, Path]:
    """Map run name -> audit-log file for a trace directory (or one file).

    Accepts either a ``*.decisions.jsonl`` file or a trace directory as
    written by :class:`~repro.telemetry.exporters.TraceSession`.
    """
    path = Path(path)
    if path.is_file():
        name = path.name
        if name.endswith(_LOG_SUFFIX):
            name = name[: -len(_LOG_SUFFIX)]
        else:
            name = path.stem
        return {name: path}
    if not path.is_dir():
        raise FileNotFoundError(
            f"{path} is neither a trace directory nor a decisions file"
        )
    return {
        f.name[: -len(_LOG_SUFFIX)]: f
        for f in sorted(path.glob(f"*{_LOG_SUFFIX}"))
    }


def load_run_decisions(
    path: str | Path,
) -> tuple[dict[str, list[DecisionRecord]], list[str]]:
    """All runs' decision records under ``path``, with parse warnings."""
    runs: dict[str, list[DecisionRecord]] = {}
    warnings: list[str] = []
    logs = decision_logs(path)
    if not logs:
        warnings.append(f"no {_LOG_SUFFIX} files under {path} (older trace?)")
    for run, log in logs.items():
        records, log_warnings = read_decisions_jsonl(log)
        runs[run] = records
        warnings.extend(log_warnings)
    return runs, warnings


# -- renderers -----------------------------------------------------------------


def _fmt_s(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value * 1e3:.3f} ms"


def render_explanation(record: DecisionRecord, top: int = 12) -> str:
    """Human-readable "why this frequency" block for one decision."""
    opp = "none" if record.opp_mhz is None else f"{record.opp_mhz:.0f} MHz"
    lines = [
        f"job {record.job_index} @ t={record.t_s:.4f}s  "
        f"governor={record.governor}  mode={record.mode or 'default'}",
        f"  chose {opp}   predicted {_fmt_s(record.predicted_time_s)}   "
        f"effective budget {_fmt_s(record.effective_budget_s)}",
    ]
    attribution = record.attribution
    if attribution is None:
        lines.append(
            "  (no attribution payload — bare or pre-provenance record)"
        )
        return "\n".join(lines)
    lines.append(
        f"  margin {record.margin:g}   beta generation "
        f"{record.beta_generation}   switch estimate "
        f"{_fmt_s(attribution.switch_estimate_s)}"
    )
    lines.append(
        f"  budget math: budget {_fmt_s(attribution.budget_s)} -> effective "
        f"{_fmt_s(record.effective_budget_s)} (slice time + switch "
        "estimate + reserved bound already subtracted)"
    )
    lines.append(
        f"  DVFS fit: T_mem {_fmt_s(attribution.tmem_s)}   N_dep "
        f"{attribution.ndep_cycles:.3e} cycles   anchors raw "
        f"t_fmax {_fmt_s(attribution.t_fmax_raw_s)} "
        f"({attribution.anchor_fmax.kind}) / t_fmin "
        f"{_fmt_s(attribution.t_fmin_raw_s)} ({attribution.anchor_fmin.kind})"
    )
    lines.append("  prediction decomposition (x_i * beta_i, margined):")
    ranked = sorted(
        zip(attribution.columns, attribution.x, attribution.contributions_s),
        key=lambda item: -abs(item[2]),
    )
    shown = 0
    for name, x, contribution in ranked:
        if contribution == 0.0 and x == 0.0:
            continue
        lines.append(
            f"    {name:<28} x={x:>10.4g}  contribution={_fmt_s(contribution)}"
        )
        shown += 1
        if shown >= top:
            break
    hidden = sum(1 for _, x, c in ranked if not (c == 0.0 and x == 0.0)) - shown
    if hidden > 0:
        lines.append(f"    ... {hidden} smaller terms elided")
    lines.append(
        f"    intercept={_fmt_s(attribution.intercept_s)}  "
        f"adjustment={attribution.adjustment_s:+.3e}s  "
        f"(sum == predicted time)"
    )
    if record.ladder:
        lines.append("  frequency ladder (effective budget "
                     f"{_fmt_s(record.effective_budget_s)}):")
        for rung in record.ladder:
            verdict = "fits" if rung.fits else "reject"
            marker = "  <== chosen" if rung.chosen else ""
            lines.append(
                f"    {rung.freq_mhz:>7.0f} MHz  predicted "
                f"{_fmt_s(rung.predicted_time_s)}  slack "
                f"{_fmt_s(rung.margin_s)}  {verdict}{marker}"
            )
    return "\n".join(lines)


def render_replay(result: ReplayResult) -> str:
    """Text report of one run's replay."""
    header = f"replay: {result.run or 'trace'}"
    lines = [header, "-" * len(header)]
    lines.append(
        f"decisions: {result.total} recorded, {result.replayed} replayed, "
        f"{len(result.skipped)} skipped"
    )
    if result.skipped:
        reasons: dict[str, int] = {}
        for _, reason in result.skipped:
            reasons[reason] = reasons.get(reason, 0) + 1
        for reason, count in sorted(reasons.items()):
            lines.append(f"  skipped [{reason}]: {count}")
    if result.counterfactual:
        lines.append(
            f"counterfactual re-score: {len(result.changed)} of "
            f"{result.replayed} decisions change frequency"
        )
        for decision in result.changed[:20]:
            lines.append(
                f"  job {decision.job_index}: "
                f"{decision.recorded_opp_mhz:.0f} MHz -> "
                f"{decision.replayed_opp_mhz:.0f} MHz "
                f"(predicted {_fmt_s(decision.recorded_predicted_s)} -> "
                f"{_fmt_s(decision.replayed_predicted_s)})"
            )
        if len(result.changed) > 20:
            lines.append(f"  ... {len(result.changed) - 20} more")
    else:
        verdict = (
            "bit-exact"
            if result.matched == result.replayed
            else f"MISMATCH ({result.replayed - result.matched} decisions)"
        )
        lines.append(
            f"agreement: {result.matched}/{result.replayed} {verdict}"
        )
        for decision in result.mismatches[:20]:
            lines.append(
                f"  job {decision.job_index}: recorded "
                f"{decision.recorded_opp_mhz:.0f} MHz / "
                f"{decision.recorded_predicted_s!r}s, replayed "
                f"{decision.replayed_opp_mhz:.0f} MHz / "
                f"{decision.replayed_predicted_s!r}s"
            )
    return "\n".join(lines)


def render_diff(diff: DecisionDiff, limit: int = 25) -> str:
    """Ranked divergence report for two runs' decision streams."""
    header = f"decision diff: {diff.run or 'trace'}"
    lines = [header, "-" * len(header)]
    lines.append(
        f"aligned jobs: {diff.aligned}   divergent: {len(diff.divergences)}"
    )
    if diff.only_a or diff.only_b:
        lines.append(
            f"unaligned jobs: {len(diff.only_a)} only in A, "
            f"{len(diff.only_b)} only in B"
        )
    if not diff.divergences:
        lines.append("decision streams are identical")
        return "\n".join(lines)
    for kind in DIVERGENCE_KINDS:
        count = diff.kinds.get(kind)
        if count:
            lines.append(f"  {kind}: {count}")
    lines.append("top divergences (frequency changes first):")
    for divergence in diff.divergences[:limit]:
        opp_a = (
            "none"
            if divergence.opp_a_mhz is None
            else f"{divergence.opp_a_mhz:.0f}"
        )
        opp_b = (
            "none"
            if divergence.opp_b_mhz is None
            else f"{divergence.opp_b_mhz:.0f}"
        )
        lines.append(
            f"  job {divergence.job_index:>5}  {opp_a} -> {opp_b} MHz  "
            f"[{divergence.kind}] {divergence.detail}"
        )
    if len(diff.divergences) > limit:
        lines.append(f"  ... {len(diff.divergences) - limit} more")
    return "\n".join(lines)


def result_json(payload: Any) -> str:
    """Strict-JSON dump used by the CLI ``--json`` switches."""
    return json.dumps(payload, indent=2, allow_nan=False, sort_keys=True)
