"""The SLO watchdog: live evaluation of a run from its telemetry stream.

This is the SRE layer on top of the telemetry plane: while a run
executes, a :class:`Watchdog` consumes the event stream the executor and
governors already emit, folds every completed job into the declared SLO
trackers (:mod:`repro.telemetry.slo`), and runs streaming anomaly
detectors next to them:

- rolling-median/MAD outlier detection on the prediction residual and
  DVFS switch-latency streams (:class:`RollingMad` — robust to the very
  outliers it is hunting);
- step-change detection on the deadline-miss indicator, reusing the
  Page–Hinkley machinery from :mod:`repro.online.drift` so the watchdog
  and the adaptive governor agree on what "a sustained shift" means.

Cost discipline mirrors :class:`~repro.telemetry.events.NullTelemetry`:
the watchdog attaches by wrapping an *enabled* telemetry's sink with a
tee (:class:`WatchSink`).  :meth:`Watchdog.attach` on a disabled
pipeline refuses (returns False) and leaves the pipeline untouched, so
a run without telemetry executes zero watchdog instructions — the
perf suite proves zero allocations from this module per job.

The watchdog observes; it never steers — with one deliberate, opt-in
exception: ``arm_fallback=True`` plus an :class:`~repro.governors.
adaptive.AdaptiveGovernor` lets a page-severity SLO alert force the
governor into its deadline-safe fallback mode, closing the loop from
declared objective to actuation.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.events import TelemetrySink, TraceEvent
from repro.telemetry.slo import (
    JobObservation,
    SloAlert,
    SloSpec,
    SloStatus,
    SloTracker,
    default_slos,
)

__all__ = [
    "RollingMad",
    "Anomaly",
    "WatchdogConfig",
    "Watchdog",
    "WatchSink",
    "render_dashboard",
    "sparkline",
]

_EPS = 1e-12
_SPARK = "▁▂▃▄▅▆▇█"


class RollingMad:
    """Rolling-median/MAD outlier detector over a bounded window.

    The modified z-score ``0.6745 * (x - median) / MAD`` is the robust
    analogue of the usual z-score: median and MAD barely move when the
    window contains the very outliers being hunted, so one anomalous
    switch latency cannot hide the next.  Samples are admitted to the
    window whether or not they are flagged (the window is small, the
    median robust).

    Args:
        window: Samples retained.
        z_threshold: Modified z-score above which a sample is an outlier.
        min_samples: Samples required before flagging starts.
    """

    def __init__(
        self,
        window: int = 48,
        z_threshold: float = 6.0,
        min_samples: int = 12,
    ):
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        if z_threshold <= 0:
            raise ValueError(
                f"z_threshold must be positive, got {z_threshold}"
            )
        if min_samples < 3:
            raise ValueError(f"min_samples must be >= 3, got {min_samples}")
        self.window = window
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self._ring: deque[float] = deque(maxlen=window)
        self.last_z = 0.0

    @staticmethod
    def _median(ordered: list[float]) -> float:
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def update(self, x: float) -> bool:
        """Fold one sample in; True when it is an outlier vs the window."""
        x = float(x)
        flagged = False
        if len(self._ring) >= self.min_samples:
            ordered = sorted(self._ring)
            median = self._median(ordered)
            mad = self._median(sorted(abs(v - median) for v in ordered))
            # A degenerate window (all-identical samples) has MAD 0; any
            # meaningful deviation from it is then infinitely surprising,
            # so floor the scale at a tiny epsilon instead of dividing
            # by zero.
            self.last_z = 0.6745 * abs(x - median) / max(mad, _EPS)
            flagged = self.last_z > self.z_threshold
        self._ring.append(x)
        return flagged


@dataclass(frozen=True)
class Anomaly:
    """One streaming-detector finding.

    Attributes:
        kind: ``residual.outlier``, ``switch.latency`` or
            ``miss_rate.step``.
        t_s: Simulated time of the triggering sample.
        job_index: Job the sample belonged to (-1 when unknown).
        value: The offending sample.
        statistic: Detector statistic at fire time (modified z-score for
            MAD detectors, the Page–Hinkley statistic for step changes).
        message: One-line human summary.
    """

    kind: str
    t_s: float
    job_index: int
    value: float
    statistic: float
    message: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t_s": self.t_s,
            "job_index": self.job_index,
            "value": self.value,
            "statistic": self.statistic,
            "message": self.message,
        }


@dataclass(frozen=True)
class WatchdogConfig:
    """Detector knobs of the watchdog plane.

    Attributes:
        residual_window / residual_z: Rolling-MAD parameters for the
            prediction-residual stream.
        switch_window / switch_z: Rolling-MAD parameters for the DVFS
            switch-latency stream.
        miss_ph_delta / miss_ph_threshold / miss_ph_min_jobs: Page–
            Hinkley parameters for miss-rate step-change detection (the
            indicator stream is 0/1, so delta is in miss-probability
            units).
        arm_fallback: When True and a governor with ``arm_fallback()``
            is registered, a page-severity SLO alert forces it into its
            deadline-safe fallback mode.
        spark_samples: Residual samples retained for the dashboard
            sparkline.
    """

    residual_window: int = 48
    residual_z: float = 6.0
    switch_window: int = 48
    switch_z: float = 8.0
    miss_ph_delta: float = 0.02
    miss_ph_threshold: float = 2.0
    miss_ph_min_jobs: int = 20
    arm_fallback: bool = False
    spark_samples: int = 32


@dataclass(frozen=True)
class WatchdogStatus:
    """Snapshot of the whole plane (one dashboard frame's data)."""

    jobs: int
    misses: int
    freq_mhz: float
    now_s: float
    slos: tuple[SloStatus, ...]
    anomalies: int
    alerts: int
    fallback_armed: bool
    residuals: tuple[float, ...] = field(default_factory=tuple)


class Watchdog:
    """Consumes a run's telemetry stream; raises SLO alerts and anomalies.

    Args:
        specs: SLO suite to hold the run to (default:
            :func:`~repro.telemetry.slo.default_slos` without the
            budget-dependent specs).
        config: Detector knobs.
        governor: Optional governor exposing ``arm_fallback()`` (the
            adaptive governor does); used only with
            ``config.arm_fallback``.
        telemetry: Optional *enabled* pipeline the watchdog mirrors its
            findings into (``slo.alert`` / ``watch.anomaly`` instants and
            ``watch.*`` metrics).  Usually the same pipeline the watchdog
            is attached to.
        on_observation: Optional callback invoked after every classified
            job — the live dashboard's repaint hook.
    """

    def __init__(
        self,
        specs: tuple[SloSpec, ...] | None = None,
        config: WatchdogConfig | None = None,
        governor: Any = None,
        telemetry: Any = None,
        on_observation: Any = None,
    ):
        from repro.online.drift import PageHinkleyDetector

        self.config = config if config is not None else WatchdogConfig()
        cfg = self.config
        self.specs = specs if specs is not None else default_slos()
        self.trackers = [SloTracker(spec) for spec in self.specs]
        self.residual_mad = RollingMad(
            window=cfg.residual_window, z_threshold=cfg.residual_z
        )
        self.switch_mad = RollingMad(
            window=cfg.switch_window, z_threshold=cfg.switch_z
        )
        self.miss_step = PageHinkleyDetector(
            delta=cfg.miss_ph_delta,
            threshold=cfg.miss_ph_threshold,
            min_samples=cfg.miss_ph_min_jobs,
        )
        self._miss_step_fired = False
        self.governor = governor
        self.telemetry = telemetry
        self.on_observation = on_observation
        self.alerts: list[SloAlert] = []
        self.anomalies: list[Anomaly] = []
        self.fallback_armed = False
        self.jobs = 0
        self.misses = 0
        self.freq_mhz = float("nan")
        self.now_s = 0.0
        self._recent_residuals: deque[float] = deque(
            maxlen=cfg.spark_samples
        )
        # Per-job correlation state fed by the event stream.
        self._predicted: tuple[int, float] | None = None
        self._exec: tuple[int, float] | None = None
        self._switch_s = 0.0
        self._residual: float | None = None
        self._energy_j: float | None = None
        self._last_energy_j = 0.0

    # -- attachment ------------------------------------------------------------
    def attach(self, telemetry) -> bool:
        """Tee an enabled pipeline's sink through this watchdog.

        Returns False — and mutates nothing — when the pipeline is
        disabled, preserving the zero-cost-when-off discipline.
        """
        if not getattr(telemetry, "enabled", False):
            return False
        telemetry.sink = WatchSink(telemetry.sink, self)
        if self.telemetry is None:
            self.telemetry = telemetry
        return True

    @property
    def violated(self) -> bool:
        """Whether any page-severity SLO alert has fired."""
        return any(alert.severity == "page" for alert in self.alerts)

    # -- event-stream consumption ----------------------------------------------
    def consume_event(self, event: TraceEvent) -> None:
        """Fold one telemetry event in (called by :class:`WatchSink`)."""
        phase = event.phase
        name = event.name
        if phase == "X":
            if name == "job":
                self._complete_job(event)
            elif name == "execute":
                self._exec = (int(event.args["job"]), event.dur_s)
            elif name == "switch":
                self._switch_s += event.dur_s
                self.observe_switch(
                    event.ts_s, event.dur_s, int(event.args.get("job", -1))
                )
        elif phase == "C":
            if name == "freq_mhz":
                self.freq_mhz = float(event.args["value"])
            elif name == "residual_rel":
                self._residual = float(event.args["value"])
            elif name == "energy_j":
                self._energy_j = float(event.args["value"])
        elif phase == "i" and event.category == "decision":
            job = event.args.get("job_index")
            predicted = event.args.get("predicted_time_s")
            if job is not None and predicted is not None:
                self._predicted = (int(job), float(predicted))

    def _complete_job(self, event: TraceEvent) -> None:
        index = int(event.args["job"])
        end_s = event.ts_s + event.dur_s
        residual = float("nan")
        if self._residual is not None:
            # The adaptive loop published its own residual this job.
            residual = self._residual
        elif (
            self._predicted is not None
            and self._exec is not None
            and self._predicted[0] == index
            and self._exec[0] == index
            and self._predicted[1] > _EPS
        ):
            predicted = self._predicted[1]
            residual = (self._exec[1] - predicted) / predicted
        energy = float("nan")
        if self._energy_j is not None:
            energy = self._energy_j - self._last_energy_j
            self._last_energy_j = self._energy_j
        self.observe_job(
            JobObservation(
                index=index,
                t_s=end_s,
                missed=bool(event.args.get("missed", False)),
                slack_s=float(event.args.get("slack_s", float("nan"))),
                energy_j=energy,
                residual_rel=residual,
                switch_time_s=self._switch_s,
            )
        )
        self._predicted = None
        self._exec = None
        self._residual = None
        self._energy_j = None
        self._switch_s = 0.0

    # -- direct observation API ------------------------------------------------
    def observe_job(self, obs: JobObservation) -> list[SloAlert]:
        """Fold one completed job in; returns alerts fired by it."""
        self.jobs += 1
        self.misses += int(obs.missed)
        self.now_s = obs.t_s
        fired: list[SloAlert] = []
        for tracker in self.trackers:
            alert = tracker.observe(obs)
            if alert is not None:
                fired.append(alert)
                self._emit_alert(alert)
        if not math.isnan(obs.residual_rel):
            self._recent_residuals.append(obs.residual_rel)
            if self.residual_mad.update(obs.residual_rel):
                self._emit_anomaly(
                    Anomaly(
                        kind="residual.outlier",
                        t_s=obs.t_s,
                        job_index=obs.index,
                        value=obs.residual_rel,
                        statistic=self.residual_mad.last_z,
                        message=(
                            f"job {obs.index}: residual "
                            f"{obs.residual_rel:+.2f} is "
                            f"{self.residual_mad.last_z:.1f} MADs from the "
                            "rolling median"
                        ),
                    )
                )
        if self.miss_step.update(1.0 if obs.missed else 0.0):
            if not self._miss_step_fired:
                self._miss_step_fired = True
                self._emit_anomaly(
                    Anomaly(
                        kind="miss_rate.step",
                        t_s=obs.t_s,
                        job_index=obs.index,
                        value=1.0 if obs.missed else 0.0,
                        statistic=self.miss_step.statistic,
                        message=(
                            f"job {obs.index}: sustained upward shift in "
                            "the deadline-miss rate (Page–Hinkley "
                            f"statistic {self.miss_step.statistic:.2f})"
                        ),
                    )
                )
        else:
            self._miss_step_fired = False
        if self.on_observation is not None:
            self.on_observation(self, obs)
        return fired

    def observe_switch(
        self, t_s: float, latency_s: float, job_index: int = -1
    ) -> None:
        """Fold one DVFS switch latency into the outlier detector."""
        if self.switch_mad.update(latency_s):
            self._emit_anomaly(
                Anomaly(
                    kind="switch.latency",
                    t_s=t_s,
                    job_index=job_index,
                    value=latency_s,
                    statistic=self.switch_mad.last_z,
                    message=(
                        f"switch took {latency_s * 1e3:.3f} ms, "
                        f"{self.switch_mad.last_z:.1f} MADs from the "
                        "rolling median"
                    ),
                )
            )

    # -- reaction --------------------------------------------------------------
    def _emit_alert(self, alert: SloAlert) -> None:
        self.alerts.append(alert)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.instant(
                "slo.alert",
                alert.t_s,
                track="watchdog",
                category="slo",
                args=alert.as_dict(),
            )
            telemetry.metrics.counter(
                f"watch.slo_alerts[{alert.spec_name}]"
            ).inc()
        if (
            alert.severity == "page"
            and self.config.arm_fallback
            and self.governor is not None
            and not self.fallback_armed
        ):
            arm = getattr(self.governor, "arm_fallback", None)
            if arm is not None and arm(
                reason=f"slo:{alert.spec_name}", t_s=alert.t_s
            ):
                self.fallback_armed = True
                if telemetry is not None and telemetry.enabled:
                    telemetry.metrics.counter("watch.fallback_arms").inc()

    def _emit_anomaly(self, anomaly: Anomaly) -> None:
        self.anomalies.append(anomaly)
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.instant(
                "watch.anomaly",
                anomaly.t_s,
                track="watchdog",
                category="anomaly",
                args=anomaly.as_dict(),
            )
            telemetry.metrics.counter(
                f"watch.anomalies[{anomaly.kind}]"
            ).inc()

    def status(self) -> WatchdogStatus:
        """One dashboard frame's worth of plane state."""
        return WatchdogStatus(
            jobs=self.jobs,
            misses=self.misses,
            freq_mhz=self.freq_mhz,
            now_s=self.now_s,
            slos=tuple(t.status() for t in self.trackers),
            anomalies=len(self.anomalies),
            alerts=len(self.alerts),
            fallback_armed=self.fallback_armed,
            residuals=tuple(self._recent_residuals),
        )


class WatchSink(TelemetrySink):
    """Tees every event to the wrapped sink and the watchdog."""

    def __init__(self, inner: TelemetrySink, watchdog: Watchdog):
        self.inner = inner
        self.watchdog = watchdog

    def emit(self, event: TraceEvent) -> None:
        self.inner.emit(event)
        self.watchdog.consume_event(event)


# -- terminal dashboard --------------------------------------------------------
def sparkline(values, width: int = 32) -> str:
    """Values as a fixed-width unicode sparkline (empty input -> spaces)."""
    values = list(values)[-width:]
    if not values:
        return " " * width
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for v in values:
        level = 0 if span < _EPS else int((v - lo) / span * (len(_SPARK) - 1))
        chars.append(_SPARK[level])
    return "".join(chars).rjust(width)


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_dashboard(status: WatchdogStatus, title: str = "watch") -> str:
    """One frame of the live terminal dashboard."""
    miss_rate = status.misses / status.jobs if status.jobs else 0.0
    freq = (
        f"{status.freq_mhz:g} MHz"
        if not math.isnan(status.freq_mhz)
        else "?"
    )
    lines = [
        f"-- {title} " + "-" * max(4, 58 - len(title)),
        (
            f"t={status.now_s:8.2f}s  jobs={status.jobs:5d}  "
            f"freq={freq:>10s}  miss-rate={100 * miss_rate:5.1f}%"
        ),
    ]
    for slo in status.slos:
        consumed = slo.budget_consumed
        flag = " FIRING" if slo.firing else ""
        rates = " ".join(
            f"{key}={rate:4.1f}x" for key, rate in slo.burn_rates.items()
        )
        lines.append(
            f"  {slo.spec.name:<26s} [{_bar(consumed)}] "
            f"{100 * consumed:6.1f}% budget  {rates}{flag}"
        )
    lines.append(f"  residuals {sparkline(status.residuals)}")
    lines.append(
        f"  anomalies={status.anomalies}  alerts={status.alerts}"
        + ("  fallback=ARMED" if status.fallback_armed else "")
    )
    return "\n".join(lines)
