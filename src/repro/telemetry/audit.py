"""The governor decision audit log.

Every frequency decision the control loop takes is worth being able to
replay: what the predictor saw (features), what it believed (predicted
time, margin), what it had to work with (effective budget), and what it
chose (the OPP).  :class:`DecisionRecord` is the schema; the log itself
is the ordered list a :class:`~repro.telemetry.events.Telemetry`
accumulates, one entry per job.

Instrumented governors (prediction, adaptive) report rich records via
the :meth:`~repro.governors.base.Governor.audit_decision` hook; for
everything else the executor appends a bare record so the log covers
*every* decision, not just the predictive ones.

Schema version 2 adds full decision *provenance* so a record is
self-explanatory and offline-replayable (see
``repro.telemetry.provenance`` and ``docs/decision_provenance.md``):

- :class:`DecisionAttribution` — the model-space feature vector, the
  active anchor-model coefficients (:class:`AnchorSnapshot`), and
  per-feature contributions that sum exactly to the predicted time;
- :class:`LadderRung` — the per-OPP accept/reject verdicts the
  frequency selection walked over;
- ``beta_generation`` — how many online-recalibration updates the
  anchor models had absorbed when the decision was taken.

Parsing is forward/backward tolerant: :func:`DecisionRecord.from_dict`
accepts version-1 records (provenance fields default to empty), ignores
unknown keys, and :func:`read_decisions_jsonl` reports — rather than
raises on — malformed lines and newer-than-known schema versions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "AnchorSnapshot",
    "DecisionAttribution",
    "LadderRung",
    "DecisionRecord",
    "read_decisions_jsonl",
]

#: Current on-disk schema of :meth:`DecisionRecord.as_dict`.  Version 1
#: (PR 2) had no ``version`` key; version 2 added the provenance fields.
SCHEMA_VERSION = 2


def _clean(value: float | None) -> float | None:
    """NaN -> None for JSON friendliness (None round-trips to NaN)."""
    if value is None:
        return None
    return None if math.isnan(value) else value


def _nan(value: Any, default: float = float("nan")) -> float:
    return default if value is None else float(value)


@dataclass(frozen=True)
class AnchorSnapshot:
    """The exact coefficients one anchor model used for one prediction.

    Three kinds, matching the three live prediction code paths (the
    split matters because replay must reproduce the *same floating
    point expression*, not just the same algebra):

    - ``"offline"`` — a trained asymmetric-Lasso anchor
      (:class:`~repro.models.asymmetric.AsymmetricLassoModel`):
      ``coef`` and ``intercept`` are in model space.
    - ``"online-pre"`` — an :class:`~repro.online.recalibrate.OnlineAnchorModel`
      that has not absorbed an update yet: same payload, but the live
      path evaluates a 1-D dot product rather than a (1, n) matmul.
    - ``"online"`` — RLS-recalibrated: ``coef`` is the design-space
      ``theta`` (feature weights then intercept), ``scales`` the frozen
      per-feature normalization.
    """

    kind: str
    coef: tuple[float, ...]
    intercept: float = 0.0
    scales: tuple[float, ...] | None = None

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "coef": list(self.coef),
            "intercept": self.intercept,
            "scales": None if self.scales is None else list(self.scales),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnchorSnapshot":
        scales = payload.get("scales")
        return cls(
            kind=str(payload.get("kind", "offline")),
            coef=tuple(float(c) for c in payload.get("coef", ())),
            intercept=float(payload.get("intercept", 0.0)),
            scales=None if scales is None else tuple(float(s) for s in scales),
        )


@dataclass(frozen=True)
class LadderRung:
    """One OPP's verdict in the frequency-selection walk.

    Attributes:
        freq_mhz: The rung's frequency.
        predicted_time_s: Margined predicted execution time at this
            frequency under the fitted DVFS model.
        margin_s: Slack against the effective budget
            (``effective_budget_s - predicted_time_s``); negative means
            the rung would miss.
        fits: Whether the selection rule accepts this rung (frequency at
            or above the ideal frequency for the budget).
        chosen: Whether this rung is the one the governor picked.
    """

    freq_mhz: float
    predicted_time_s: float
    margin_s: float
    fits: bool
    chosen: bool

    def as_dict(self) -> dict:
        return {
            "freq_mhz": self.freq_mhz,
            "predicted_time_s": self.predicted_time_s,
            "margin_s": _clean(self.margin_s),
            "fits": self.fits,
            "chosen": self.chosen,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LadderRung":
        return cls(
            freq_mhz=float(payload.get("freq_mhz", 0.0)),
            predicted_time_s=float(payload.get("predicted_time_s", 0.0)),
            margin_s=_nan(payload.get("margin_s")),
            fits=bool(payload.get("fits", False)),
            chosen=bool(payload.get("chosen", False)),
        )


@dataclass(frozen=True)
class DecisionAttribution:
    """Why the prediction came out the way it did.

    ``contributions_s[i]`` is feature ``columns[i]``'s share of the
    margined predicted time at the chosen frequency; the identity

    ``predicted_time_s == sum(contributions_s) + intercept_s + adjustment_s``

    holds *exactly* (``adjustment_s`` absorbs the DVFS-model clamp
    branches and accumulated float rounding, and is tiny whenever no
    clamp fired).

    Attributes:
        columns: Model-space feature labels (post one-hot encoding and
            polynomial expansion) — ``a*b`` marks an interaction term.
        x: The model-space feature vector the anchors consumed.
        contributions_s: Per-feature share of the predicted time.
        intercept_s: The anchors' intercept share of the predicted time.
        adjustment_s: Exact remainder (clamps + rounding).
        tmem_s: Fitted memory-bound term of ``t(f) = T_mem + N_dep/f``.
        ndep_cycles: Fitted frequency-dependent cycle count.
        t_fmax_raw_s: Raw (unmargined, unclamped) f_max anchor output.
        t_fmin_raw_s: Raw f_min anchor output.
        anchor_fmax: Coefficients behind ``t_fmax_raw_s``.
        anchor_fmin: Coefficients behind ``t_fmin_raw_s``.
        switch_estimate_s: Conservative DVFS-transition estimate charged
            against the budget.
        budget_s: The job's full deadline budget.
        deadline_s: Absolute deadline on the simulated clock.
    """

    columns: tuple[str, ...]
    x: tuple[float, ...]
    contributions_s: tuple[float, ...]
    intercept_s: float
    adjustment_s: float
    tmem_s: float
    ndep_cycles: float
    t_fmax_raw_s: float
    t_fmin_raw_s: float
    anchor_fmax: AnchorSnapshot
    anchor_fmin: AnchorSnapshot
    switch_estimate_s: float = float("nan")
    budget_s: float = float("nan")
    deadline_s: float = float("nan")

    def as_dict(self) -> dict:
        return {
            "columns": list(self.columns),
            "x": list(self.x),
            "contributions_s": list(self.contributions_s),
            "intercept_s": self.intercept_s,
            "adjustment_s": self.adjustment_s,
            "tmem_s": self.tmem_s,
            "ndep_cycles": self.ndep_cycles,
            "t_fmax_raw_s": self.t_fmax_raw_s,
            "t_fmin_raw_s": self.t_fmin_raw_s,
            "anchor_fmax": self.anchor_fmax.as_dict(),
            "anchor_fmin": self.anchor_fmin.as_dict(),
            "switch_estimate_s": _clean(self.switch_estimate_s),
            "budget_s": _clean(self.budget_s),
            "deadline_s": _clean(self.deadline_s),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DecisionAttribution":
        return cls(
            columns=tuple(str(c) for c in payload.get("columns", ())),
            x=tuple(float(v) for v in payload.get("x", ())),
            contributions_s=tuple(
                float(v) for v in payload.get("contributions_s", ())
            ),
            intercept_s=float(payload.get("intercept_s", 0.0)),
            adjustment_s=float(payload.get("adjustment_s", 0.0)),
            tmem_s=float(payload.get("tmem_s", 0.0)),
            ndep_cycles=float(payload.get("ndep_cycles", 0.0)),
            t_fmax_raw_s=float(payload.get("t_fmax_raw_s", 0.0)),
            t_fmin_raw_s=float(payload.get("t_fmin_raw_s", 0.0)),
            anchor_fmax=AnchorSnapshot.from_dict(
                payload.get("anchor_fmax", {})
            ),
            anchor_fmin=AnchorSnapshot.from_dict(
                payload.get("anchor_fmin", {})
            ),
            switch_estimate_s=_nan(payload.get("switch_estimate_s")),
            budget_s=_nan(payload.get("budget_s")),
            deadline_s=_nan(payload.get("deadline_s")),
        )


@dataclass(frozen=True)
class DecisionRecord:
    """One governor decision with the inputs that produced it.

    Attributes:
        job_index: Which job the decision was for.
        t_s: Simulated time the decision was taken at.
        governor: Name of the deciding governor.
        opp_mhz: Chosen frequency in MHz; None when the governor had no
            opinion (utilization-driven policies between timer fires).
        predicted_time_s: Predicted execution time at the chosen level
            (NaN for non-predictive policies).
        effective_budget_s: Budget after slice time and the conservative
            switch estimate were subtracted (NaN when not applicable).
        margin: Safety margin in force when the prediction was made.
        mode: Decision path for mode machines (``predict``/``fallback``);
            empty for single-mode governors.
        features: Slice feature counters the prediction consumed
            (site label -> value); empty for non-predictive policies.
        beta_generation: Online-recalibration update count of the anchor
            models at decision time (0 = offline coefficients; -1 = not
            a model-driven decision).
        energy_j: Cumulative board energy at decision time (joules), so
            an audit log doubles as an energy trajectory — deltas
            between consecutive records bound each job's spend.  NaN on
            records from before this field existed.
        attribution: Full provenance payload, or None for bare records.
        ladder: Per-OPP accept/reject verdicts, empty for bare records.
    """

    job_index: int
    t_s: float
    governor: str
    opp_mhz: float | None
    predicted_time_s: float = float("nan")
    effective_budget_s: float = float("nan")
    margin: float = float("nan")
    mode: str = ""
    features: Mapping[str, float] = field(default_factory=dict)
    beta_generation: int = -1
    energy_j: float = float("nan")
    attribution: DecisionAttribution | None = None
    ladder: tuple[LadderRung, ...] = ()

    def summary_dict(self) -> dict:
        """JSON-safe scalar summary (no attribution/ladder payloads).

        This is what gets mirrored onto the trace as an instant event —
        compact enough to embed per job without bloating the Chrome
        trace.  The full record, provenance included, goes to the
        ``*.decisions.jsonl`` audit log via :meth:`as_dict`.
        """
        return {
            "version": SCHEMA_VERSION,
            "job_index": self.job_index,
            "t_s": self.t_s,
            "governor": self.governor,
            "opp_mhz": self.opp_mhz,
            "predicted_time_s": _clean(self.predicted_time_s),
            "effective_budget_s": _clean(self.effective_budget_s),
            "margin": _clean(self.margin),
            "mode": self.mode,
            "features": dict(self.features),
            "beta_generation": self.beta_generation,
            "energy_j": _clean(self.energy_j),
            "attributed": self.attribution is not None,
        }

    def as_dict(self) -> dict:
        """JSON-safe dict (NaN becomes None, features copied)."""
        payload = self.summary_dict()
        del payload["attributed"]
        payload["attribution"] = (
            None if self.attribution is None else self.attribution.as_dict()
        )
        payload["ladder"] = [rung.as_dict() for rung in self.ladder]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DecisionRecord":
        """Parse a record dict from any known schema version.

        Version-1 records (no ``version`` key) load with provenance
        fields at their defaults; unknown keys are ignored so records
        written by a *newer* minor revision still parse.
        """
        opp_mhz = payload.get("opp_mhz")
        attribution = payload.get("attribution")
        return cls(
            job_index=int(payload.get("job_index", -1)),
            t_s=float(payload.get("t_s", 0.0)),
            governor=str(payload.get("governor", "")),
            opp_mhz=None if opp_mhz is None else float(opp_mhz),
            predicted_time_s=_nan(payload.get("predicted_time_s")),
            effective_budget_s=_nan(payload.get("effective_budget_s")),
            margin=_nan(payload.get("margin")),
            mode=str(payload.get("mode", "")),
            features={
                str(k): float(v)
                for k, v in dict(payload.get("features", {})).items()
            },
            beta_generation=int(payload.get("beta_generation", -1)),
            energy_j=_nan(payload.get("energy_j")),
            attribution=(
                None
                if attribution is None
                else DecisionAttribution.from_dict(attribution)
            ),
            ladder=tuple(
                LadderRung.from_dict(rung)
                for rung in payload.get("ladder", ())
            ),
        )


def read_decisions_jsonl(
    path: str | Path,
) -> tuple[list[DecisionRecord], list[str]]:
    """Load a ``*.decisions.jsonl`` audit log, tolerantly.

    Returns ``(records, warnings)``.  Missing file, malformed lines and
    unknown future schema versions become warnings, never exceptions —
    report tooling must degrade gracefully on old or partial traces.
    """
    path = Path(path)
    records: list[DecisionRecord] = []
    warnings: list[str] = []
    if not path.exists():
        warnings.append(f"no audit log at {path.name} (older trace?)")
        return records, warnings
    newer = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            version = int(payload.get("version", 1))
            if version > SCHEMA_VERSION:
                newer += 1
            records.append(DecisionRecord.from_dict(payload))
        except (ValueError, TypeError, AttributeError) as error:
            warnings.append(
                f"{path.name}:{lineno}: unreadable record ({error})"
            )
    if newer:
        warnings.append(
            f"{path.name}: {newer} record(s) use a schema newer than "
            f"v{SCHEMA_VERSION}; unknown fields were ignored"
        )
    return records, warnings
