"""The governor decision audit log.

Every frequency decision the control loop takes is worth being able to
replay: what the predictor saw (features), what it believed (predicted
time, margin), what it had to work with (effective budget), and what it
chose (the OPP).  :class:`DecisionRecord` is the schema; the log itself
is the ordered list a :class:`~repro.telemetry.events.Telemetry`
accumulates, one entry per job.

Instrumented governors (prediction, adaptive) report rich records via
the :meth:`~repro.governors.base.Governor.audit_decision` hook; for
everything else the executor appends a bare record so the log covers
*every* decision, not just the predictive ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["DecisionRecord"]


@dataclass(frozen=True)
class DecisionRecord:
    """One governor decision with the inputs that produced it.

    Attributes:
        job_index: Which job the decision was for.
        t_s: Simulated time the decision was taken at.
        governor: Name of the deciding governor.
        opp_mhz: Chosen frequency in MHz; None when the governor had no
            opinion (utilization-driven policies between timer fires).
        predicted_time_s: Predicted execution time at the chosen level
            (NaN for non-predictive policies).
        effective_budget_s: Budget after slice time and the conservative
            switch estimate were subtracted (NaN when not applicable).
        margin: Safety margin in force when the prediction was made.
        mode: Decision path for mode machines (``predict``/``fallback``);
            empty for single-mode governors.
        features: Slice feature counters the prediction consumed
            (site label -> value); empty for non-predictive policies.
    """

    job_index: int
    t_s: float
    governor: str
    opp_mhz: float | None
    predicted_time_s: float = float("nan")
    effective_budget_s: float = float("nan")
    margin: float = float("nan")
    mode: str = ""
    features: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-safe dict (NaN becomes None, features copied)."""

        def clean(value: float) -> float | None:
            return None if math.isnan(value) else value

        return {
            "job_index": self.job_index,
            "t_s": self.t_s,
            "governor": self.governor,
            "opp_mhz": self.opp_mhz,
            "predicted_time_s": clean(self.predicted_time_s),
            "effective_budget_s": clean(self.effective_budget_s),
            "margin": clean(self.margin),
            "mode": self.mode,
            "features": dict(self.features),
        }
