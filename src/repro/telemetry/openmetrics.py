"""OpenMetrics/Prometheus text exposition for metric registries.

Turns a :class:`~repro.telemetry.metrics.MetricsRegistry` (or its
``as_dict()`` dump, so already-written ``*.metrics.json`` artifacts
export without re-simulating) into the text format Prometheus and any
OpenMetrics scraper ingest.  The registry's dotted-and-bracketed names
(``executor.residency_s[600]``) map onto the format's two namespaces:
dots become underscores in the *family* name and the bracketed part
becomes a ``label`` label, so per-OPP residency lands as one family
with one timeseries per frequency — the shape PromQL expects.

Format choices worth knowing:

* Counters get the mandatory ``_total`` sample suffix.
* Registry names ending in the repo's unit suffixes (``_j`` joules,
  ``_s`` seconds) export with the full unit spelled into the family
  name (``..._joules``, ``..._seconds``) and a ``# UNIT`` metadata
  line, as the OpenMetrics spec requires of unit-carrying families.
  Detection runs on the raw registry name, so sanitized oddities
  (``per_job__s`` from a ``µs`` name) are not mistaken for seconds.
* Unset gauges (NaN, or None in a dump) keep their metadata lines but
  emit no sample — absent beats ``NaN`` for every scraper.
* Histograms export as OpenMetrics *summaries* (p50/p95/p99 quantile
  samples plus ``_sum``/``_count``): the registry's fixed-bucket
  histogram keeps interpolated percentiles, not cumulative bucket
  counts, and a summary is the honest encoding of that.
* Output always ends with the ``# EOF`` terminator OpenMetrics
  requires.
"""

from __future__ import annotations

import math
import pathlib

__all__ = [
    "openmetrics_text",
    "openmetrics_directory",
]

_NAME_OK_FIRST = set("abcdefghijklmnopqrstuvwxyz"
                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_OK_REST = _NAME_OK_FIRST | set("0123456789")


#: Registry-name suffix -> OpenMetrics unit.  The family name gets the
#: unit spelled out in full, per spec ("family name MUST end with the
#: unit").
_UNIT_SUFFIXES = (("_j", "joules"), ("_s", "seconds"))


def _family(name: str, namespace: str) -> tuple[str, str | None, str | None]:
    """Split a registry name into (sanitized family, bracket label, unit)."""
    label = None
    if name.endswith("]") and "[" in name:
        name, _, bracket = name.partition("[")
        label = bracket[:-1]
    unit = None
    for suffix, unit_name in _UNIT_SUFFIXES:
        if name.endswith(suffix):
            name = name[: -len(suffix)] + "_" + unit_name
            unit = unit_name
            break
    if namespace:
        name = f"{namespace}.{name}"
    chars = [
        c if c in _NAME_OK_REST else "_" for c in name
    ]
    if chars and chars[0] not in _NAME_OK_FIRST:
        chars.insert(0, "_")
    return "".join(chars) or "_", label, unit


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _num(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _FamilyTable:
    """Families accumulated across one or more registries/runs.

    Keyed by family name so multiple runs (distinguished by a ``run``
    label) merge into a single ``# TYPE`` block per family, which the
    exposition format requires.
    """

    def __init__(self) -> None:
        # family -> (type, help, unit, [(suffix, labels, value), ...])
        self._families: dict[str, tuple[str, str, str | None, list]] = {}

    def add(
        self,
        family: str,
        kind: str,
        help_text: str,
        samples: list[tuple[str, dict[str, str], float | None]],
        unit: str | None = None,
    ) -> None:
        entry = self._families.get(family)
        if entry is None:
            entry = self._families[family] = (kind, help_text, unit, [])
        elif entry[0] != kind:
            raise ValueError(
                f"metric family {family!r} registered as both "
                f"{entry[0]} and {kind}"
            )
        entry[3].extend(samples)

    def render(self) -> str:
        lines = []
        for family in sorted(self._families):
            kind, help_text, unit, samples = self._families[family]
            lines.append(f"# HELP {family} {_escape_help(help_text)}")
            lines.append(f"# TYPE {family} {kind}")
            if unit is not None:
                lines.append(f"# UNIT {family} {unit}")
            for suffix, labels, value in samples:
                if value is None:
                    continue
                lines.append(
                    f"{family}{suffix}{_labels_text(labels)} {_num(value)}"
                )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _as_dump(metrics) -> dict:
    """Accept a registry, a telemetry object, or an ``as_dict`` dump."""
    if hasattr(metrics, "as_dict"):
        return metrics.as_dict()
    if hasattr(metrics, "metrics"):  # a Telemetry
        return metrics.metrics.as_dict()
    return metrics


def _ingest(
    table: _FamilyTable,
    dump: dict,
    namespace: str,
    base_labels: dict[str, str],
) -> None:
    for name, value in dump.get("counters", {}).items():
        family, bracket, unit = _family(name, namespace)
        labels = dict(base_labels)
        if bracket is not None:
            labels["label"] = bracket
        table.add(
            family,
            "counter",
            f"repro counter {name}",
            [("_total", labels, float(value))],
            unit=unit,
        )
    for name, value in dump.get("gauges", {}).items():
        family, bracket, unit = _family(name, namespace)
        labels = dict(base_labels)
        if bracket is not None:
            labels["label"] = bracket
        sample = None
        if value is not None and not math.isnan(float(value)):
            sample = float(value)
        table.add(
            family,
            "gauge",
            f"repro gauge {name}",
            [("", labels, sample)],
            unit=unit,
        )
    for name, hist in dump.get("histograms", {}).items():
        family, bracket, unit = _family(name, namespace)
        labels = dict(base_labels)
        if bracket is not None:
            labels["label"] = bracket
        samples: list[tuple[str, dict[str, str], float | None]] = []
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            value = hist.get(key)
            samples.append(
                ("", {**labels, "quantile": quantile},
                 None if value is None else float(value))
            )
        samples.append(("_sum", labels, float(hist.get("sum", 0.0))))
        samples.append(("_count", labels, float(hist.get("count", 0))))
        table.add(
            family,
            "summary",
            f"repro histogram {name} (interpolated quantiles)",
            samples,
            unit=unit,
        )


def openmetrics_text(
    metrics,
    namespace: str = "repro",
    labels: dict[str, str] | None = None,
) -> str:
    """One registry's metrics in OpenMetrics text exposition format.

    Args:
        metrics: A :class:`~repro.telemetry.metrics.MetricsRegistry`, a
            :class:`~repro.telemetry.events.Telemetry` (its registry is
            used), or a registry ``as_dict()`` dump.
        namespace: Prefix for every family name (``repro_...``); pass
            ``""`` for none.
        labels: Labels stamped on every sample (e.g. ``{"run": name}``).

    Returns:
        The exposition text, ``# EOF``-terminated; an empty registry
        yields just the terminator.
    """
    table = _FamilyTable()
    _ingest(table, _as_dump(metrics), namespace, dict(labels or {}))
    return table.render()


def openmetrics_directory(
    directory: pathlib.Path | str,
    namespace: str = "repro",
    runs: str | None = None,
) -> str:
    """Every run in a trace directory as one OpenMetrics exposition.

    Loads the same ``*.metrics.json`` artifacts the ``report``
    subcommand reads and merges them into single families with a
    ``run`` label per timeseries — the file a Prometheus file-based
    collector (node-exporter textfile, grafana-agent) can scrape as-is.

    Args:
        directory: Trace directory holding ``<run>.metrics.json`` files.
        namespace: Family-name prefix (see :func:`openmetrics_text`).
        runs: Optional run-name prefix filter, same contract as
            ``report --runs``.
    """
    from repro.telemetry.report import _load_metrics

    directory = pathlib.Path(directory)
    table = _FamilyTable()
    for run_name, dump in _load_metrics(directory).items():
        if runs is not None and not run_name.startswith(runs):
            continue
        _ingest(table, dump, namespace, {"run": run_name})
    return table.render()
