"""Host-side performance observability: phase timers, sampler, profiles.

Everything else in ``repro.telemetry`` observes *simulated* time; this
module observes the **host** — the wall-clock cost of running the
simulator itself.  ROADMAP item 1 targets a >=10x host jobs/sec speedup
of the interpreted hot path, and that arc needs an instrument before it
needs an optimization: phase-scoped accounting says *where* host time
goes (interpreter eval vs feature recording vs predict vs OPP-ladder
evaluation vs switching vs bookkeeping), the statistical sampler says
*which functions* burn it (collapsed-stack flamegraphs, hotspot
tables), and ``host.jobs_per_sec`` gives CI a single gateable
throughput number (``BENCH_host_baseline.json``).

Cost discipline mirrors :class:`~repro.telemetry.events.NullTelemetry`:
the default is the :data:`NO_HOSTPROF` singleton whose ``enabled`` flag
is False, every instrumentation site guards with
``if hostprof.enabled:`` before reading the clock, and the perf bench
proves with tracemalloc that a disabled run allocates nothing in this
module.

Host profiles are **never** part of a deterministic report: wall time
varies run to run, so :class:`ProfileState` snapshots ship in separate
artifacts (``<run>.hostprof.json``, ``<run>.flame.txt``,
``<run>.hotspots.json``, ``<run>.metrics.json``) and merge across fleet
shards and worker processes with :func:`merge_profiles` — the same
fold-together shape as :func:`repro.telemetry.slo.merge_states`.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "TOP_PHASES",
    "SUB_PHASES",
    "PHASES",
    "ProfileState",
    "merge_profiles",
    "HostProfiler",
    "NullHostProfiler",
    "NO_HOSTPROF",
    "StackSampler",
    "Hotspot",
    "hotspots",
    "render_hotspots",
    "flamegraph_text",
    "component_of",
    "host_metrics",
    "register_host_metrics",
    "render_profile",
    "write_host_profile",
    "best_of",
]

#: Top-level phases: disjoint wall-time slices of a run.  Whatever they
#: do not cover is the executor/fleet bookkeeping overhead, reported as
#: ``host.us_per_job.other``.
TOP_PHASES = ("interp", "governor", "switch", "record", "fleet")

#: Sub-phases nested *inside* ``governor``: the prediction slice run
#: (feature recording), the anchor-model predict, and the OPP-ladder
#: evaluation.  They overlap their parent, never each other.
SUB_PHASES = ("features", "predict", "ladder")

PHASES = TOP_PHASES + SUB_PHASES


# -- profile snapshots ---------------------------------------------------------
@dataclass(frozen=True)
class ProfileState:
    """Serializable, mergeable snapshot of one host profile.

    Like :class:`~repro.telemetry.slo.SloTrackerState` this is the
    transport format of a fleet roll-up: every shard (or worker
    process) profiles its own slice of the work, and the coordinator
    folds the snapshots with :func:`merge_profiles` — concatenation
    semantics, as if one profiler had watched both runs back to back.

    Attributes:
        jobs: Jobs the profiled executor(s) completed.
        wall_s: Host wall-clock seconds inside the profiled region.
        phases: ``phase -> (calls, total_s)`` accounting.  Phases in
            :data:`TOP_PHASES` partition the per-job wall time;
            :data:`SUB_PHASES` re-slice the ``governor`` phase.
        samples: Stack samples the statistical sampler captured.
        stacks: ``collapsed-stack -> count`` (root;...;leaf), the
            flamegraph input.
    """

    jobs: int = 0
    wall_s: float = 0.0
    phases: Mapping[str, tuple[int, float]] = field(default_factory=dict)
    samples: int = 0
    stacks: Mapping[str, int] = field(default_factory=dict)

    @property
    def jobs_per_sec(self) -> float:
        """Host throughput over the profiled region (NaN before data)."""
        if self.jobs == 0 or self.wall_s <= 0.0:
            return float("nan")
        return self.jobs / self.wall_s

    def phase_s(self, phase: str) -> float:
        """Total host seconds recorded for one phase (0 if never hit)."""
        return self.phases.get(phase, (0, 0.0))[1]

    @property
    def accounted_s(self) -> float:
        """Wall time covered by the disjoint top-level phases."""
        return sum(self.phase_s(phase) for phase in TOP_PHASES)

    @property
    def other_s(self) -> float:
        """Unattributed host time (loop bookkeeping, allocator, GC)."""
        return max(self.wall_s - self.accounted_s, 0.0)

    def us_per_job(self, phase: str) -> float:
        """Mean host microseconds per job spent in one phase."""
        if self.jobs == 0:
            return float("nan")
        return self.phase_s(phase) * 1e6 / self.jobs

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "phases": {
                name: [calls, total]
                for name, (calls, total) in sorted(self.phases.items())
            },
            "samples": self.samples,
            "stacks": dict(sorted(self.stacks.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileState":
        return cls(
            jobs=int(data["jobs"]),
            wall_s=float(data["wall_s"]),
            phases={
                name: (int(calls), float(total))
                for name, (calls, total) in data.get("phases", {}).items()
            },
            samples=int(data.get("samples", 0)),
            stacks={
                stack: int(count)
                for stack, count in data.get("stacks", {}).items()
            },
        )


def merge_profiles(first: ProfileState, second: ProfileState) -> ProfileState:
    """Fold two profiles with concatenation semantics.

    The result equals the state one profiler would hold after watching
    ``first``'s run and then ``second``'s: jobs, wall time, per-phase
    accounting, and stack counts all add.
    """
    phases = {
        name: (calls, total) for name, (calls, total) in first.phases.items()
    }
    for name, (calls, total) in second.phases.items():
        have_calls, have_total = phases.get(name, (0, 0.0))
        phases[name] = (have_calls + calls, have_total + total)
    stacks = dict(first.stacks)
    for stack, count in second.stacks.items():
        stacks[stack] = stacks.get(stack, 0) + count
    return ProfileState(
        jobs=first.jobs + second.jobs,
        wall_s=first.wall_s + second.wall_s,
        phases=phases,
        samples=first.samples + second.samples,
        stacks=stacks,
    )


# -- the statistical sampler ---------------------------------------------------
def component_of(module: str, qualname: str = "") -> str:
    """Attribute a frame to a simulator component.

    Modules map by package (``repro.programs.interpreter`` ->
    ``interp``, ``repro.models``/``repro.online`` -> ``predict``, ...);
    frames inside ``repro.programs.expr`` attribute to ``ir`` — their
    qualnames carry the IR op class (``BinOp.evaluate``), which is how
    the hotspot table names individual IR operations.
    """
    if not module.startswith("repro"):
        return "host"
    for prefix, component in _COMPONENT_PREFIXES:
        if module.startswith(prefix):
            return component
    return "repro"


_COMPONENT_PREFIXES = (
    ("repro.programs.interpreter", "interp"),
    ("repro.programs.expr", "ir"),
    ("repro.programs.env", "ir"),
    ("repro.programs", "programs"),
    ("repro.features", "features"),
    ("repro.models", "predict"),
    ("repro.online", "predict"),
    ("repro.governors", "governor"),
    ("repro.platform", "platform"),
    ("repro.runtime", "executor"),
    ("repro.fleet", "fleet"),
    ("repro.telemetry", "telemetry"),
    ("repro.workloads", "workloads"),
    ("repro.pipeline", "pipeline"),
    ("repro.analysis", "analysis"),
)


def _module_of(filename: str) -> str:
    """Dotted module path for a code object's file (best effort)."""
    norm = filename.replace("\\", "/")
    marker = "/repro/"
    at = norm.rfind(marker)
    if at >= 0:
        tail = norm[at + len(marker):]
        if tail.endswith(".py"):
            tail = tail[:-3]
        if tail.endswith("/__init__"):
            tail = tail[: -len("/__init__")]
        return "repro." + tail.replace("/", ".")
    stem = norm.rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else (stem or "?")


class StackSampler:
    """Statistical stack sampler on ``sys.setprofile``.

    Every ``interval``-th Python call event captures the live call
    stack, collapses it to ``root;frame;...;leaf`` form, and counts it.
    Call-event sampling (rather than a wall-clock timer thread) keeps
    the sampler signal-free and usable inside ``multiprocessing``
    workers; the bias it introduces — call-heavy code oversampled
    relative to tight loops — is acceptable for an interpreter whose
    hot path *is* call dispatch.

    Args:
        interval: Call events per sample (larger = cheaper, coarser).
        max_depth: Frames kept per sample, leaf upward.
    """

    def __init__(self, interval: int = 64, max_depth: int = 48):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.max_depth = max_depth
        self.samples = 0
        self.stacks: dict[str, int] = {}
        self._countdown = interval
        self._labels: dict[object, str] = {}
        self._active = False

    def _label(self, code) -> str:
        label = self._labels.get(code)
        if label is None:
            qualname = getattr(code, "co_qualname", code.co_name)
            label = f"{_module_of(code.co_filename)}:{qualname}"
            self._labels[code] = label
        return label

    def _hook(self, frame, event, arg) -> None:
        if event != "call":
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.interval
        parts = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            parts.append(self._label(frame.f_code))
            frame = frame.f_back
            depth += 1
        parts.reverse()
        stack = ";".join(parts)
        self.stacks[stack] = self.stacks.get(stack, 0) + 1
        self.samples += 1

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._countdown = self.interval
        sys.setprofile(self._hook)

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(None)
        self._active = False


# -- the profiler --------------------------------------------------------------
class HostProfiler:
    """Phase-scoped host-time accounting for one profiled run.

    Instrumentation sites read :attr:`clock` before and after a phase
    and call :meth:`add` with the elapsed seconds — always behind an
    ``if hostprof.enabled:`` guard so the :data:`NO_HOSTPROF` default
    costs one attribute read and nothing else.

    Attributes:
        clock: The host clock (``time.perf_counter``); injectable for
            deterministic tests.
        sampler: Optional :class:`StackSampler` driven by
            :meth:`running`.
        enabled: Always True here; :class:`NullHostProfiler` is the
            off switch.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        sampler: StackSampler | None = None,
    ):
        self.clock = clock
        self.sampler = sampler
        self._calls: dict[str, int] = {}
        self._totals: dict[str, float] = {}
        self._jobs = 0
        self._wall_s = 0.0

    def add(self, phase: str, elapsed_s: float) -> None:
        """Charge ``elapsed_s`` host seconds to one phase."""
        self._totals[phase] = self._totals.get(phase, 0.0) + elapsed_s
        self._calls[phase] = self._calls.get(phase, 0) + 1

    def job_done(self) -> None:
        """Count one completed job (the jobs/sec denominator)."""
        self._jobs += 1

    @contextmanager
    def running(self):
        """Bracket the profiled region: wall clock + sampler lifetime."""
        if self.sampler is not None:
            self.sampler.start()
        started = self.clock()
        try:
            yield self
        finally:
            self._wall_s += self.clock() - started
            if self.sampler is not None:
                self.sampler.stop()

    def state(self) -> ProfileState:
        """Snapshot the accounting so far (mergeable, serializable)."""
        sampler = self.sampler
        return ProfileState(
            jobs=self._jobs,
            wall_s=self._wall_s,
            phases={
                name: (self._calls[name], self._totals[name])
                for name in self._totals
            },
            samples=sampler.samples if sampler is not None else 0,
            stacks=dict(sampler.stacks) if sampler is not None else {},
        )


class NullHostProfiler:
    """The no-op twin of :class:`HostProfiler` — the zero-cost default.

    ``enabled`` is False, so instrumentation sites skip the clock reads
    entirely; the methods exist (and do nothing) so unguarded calls are
    still safe, and :meth:`state` yields a valid empty profile.
    """

    enabled = False
    clock = staticmethod(time.perf_counter)
    sampler = None

    def add(self, phase: str, elapsed_s: float) -> None:
        pass

    def job_done(self) -> None:
        pass

    @contextmanager
    def running(self):
        yield self

    def state(self) -> ProfileState:
        return ProfileState()


#: Shared disabled profiler; the executor default.  Stateless, so one
#: instance serves every run.
NO_HOSTPROF = NullHostProfiler()


# -- hotspots and flamegraphs --------------------------------------------------
@dataclass(frozen=True)
class Hotspot:
    """One function's share of the sampled host time.

    Attributes:
        label: ``module:qualname`` of the frame.
        component: Simulator component the frame attributes to (see
            :func:`component_of`); IR op frames attribute to ``ir``
            with the op class in the label.
        self_samples: Samples with this frame on top of the stack.
        cum_samples: Samples with this frame anywhere on the stack.
        self_pct: ``self_samples`` as a share of all samples.
    """

    label: str
    component: str
    self_samples: int
    cum_samples: int
    self_pct: float

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "component": self.component,
            "self_samples": self.self_samples,
            "cum_samples": self.cum_samples,
            "self_pct": self.self_pct,
        }


def hotspots(state: ProfileState, top_n: int = 20) -> list[Hotspot]:
    """Top-N hotspot table from a profile's collapsed stacks.

    Self time is the leaf-frame sample count; cumulative time counts a
    frame once per stack it appears on (recursion deduplicated).
    Sorted by self time, ties broken by cumulative then label.
    """
    self_counts: dict[str, int] = {}
    cum_counts: dict[str, int] = {}
    total = 0
    for stack, count in state.stacks.items():
        frames = stack.split(";")
        if not frames:
            continue
        total += count
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for frame in set(frames):
            cum_counts[frame] = cum_counts.get(frame, 0) + count
    rows = [
        Hotspot(
            label=label,
            component=component_of(*label.split(":", 1))
            if ":" in label
            else component_of(label),
            self_samples=count,
            cum_samples=cum_counts[label],
            self_pct=100.0 * count / total if total else 0.0,
        )
        for label, count in self_counts.items()
    ]
    rows.sort(key=lambda h: (-h.self_samples, -h.cum_samples, h.label))
    return rows[:top_n]


def flamegraph_text(state: ProfileState) -> str:
    """The profile's stacks in collapsed-stack (Brendan Gregg) format.

    One ``root;frame;...;leaf count`` line per distinct stack — paste
    into ``flamegraph.pl`` or any collapsed-stack viewer (e.g.
    speedscope) to render the flamegraph.
    """
    lines = [
        f"{stack} {count}" for stack, count in sorted(state.stacks.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def render_hotspots(rows: list[Hotspot]) -> str:
    """Fixed-width hotspot table (the ``repro profile`` text output)."""
    if not rows:
        return "hotspots: no samples (sampler off or run too short)"
    headers = ("self%", "self", "cum", "component", "function")
    cells = [
        (
            f"{row.self_pct:5.1f}",
            str(row.self_samples),
            str(row.cum_samples),
            row.component,
            row.label,
        )
        for row in rows
    ]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    lines = ["hotspots (statistical, by self samples):"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# -- metrics + artifacts -------------------------------------------------------
def register_host_metrics(registry, state: ProfileState) -> None:
    """Write a profile's headline numbers into a metrics registry.

    Registers ``host.jobs_per_sec`` plus ``host.us_per_job.<phase>``
    for every recorded phase (and ``total``/``other``), so host
    throughput rides the same ``report --gate`` flow as the simulated
    metrics — under the ``host.`` run-name prefix, never mixed into a
    deterministic run's registry.
    """
    registry.counter("host.jobs").inc(state.jobs)
    registry.counter("host.samples").inc(state.samples)
    if state.jobs == 0:
        return
    registry.gauge("host.jobs_per_sec").set(state.jobs_per_sec)
    registry.gauge("host.wall_s").set(state.wall_s)
    registry.gauge("host.us_per_job.total").set(
        state.wall_s * 1e6 / state.jobs
    )
    registry.gauge("host.us_per_job.other").set(
        state.other_s * 1e6 / state.jobs
    )
    for phase in sorted(state.phases):
        registry.gauge(f"host.us_per_job.{phase}").set(state.us_per_job(phase))


def host_metrics(state: ProfileState) -> dict:
    """A profile as a metrics-registry dump (``*.metrics.json`` shape).

    Written as ``host.<run>.metrics.json`` so ``repro report --gate
    BENCH_host_baseline.json --runs host.`` holds host throughput to a
    committed baseline exactly like the SLO gate does simulated
    metrics.
    """
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    register_host_metrics(registry, state)
    return registry.as_dict()


def render_profile(state: ProfileState, title: str = "host profile") -> str:
    """Human-readable phase table + throughput summary."""
    lines = [f"{title}: {state.jobs} jobs in {state.wall_s:.3f}s host time"]
    if state.jobs and state.wall_s > 0:
        lines[0] += f"  ({state.jobs_per_sec:,.0f} jobs/sec)"
    rows = []
    for phase in TOP_PHASES:
        if phase in state.phases:
            rows.append((phase, *state.phases[phase]))
    rows.append(("other", 0, state.other_s))
    for phase in SUB_PHASES:
        if phase in state.phases:
            rows.append((f"governor/{phase}", *state.phases[phase]))
    lines.append(f"{'phase':<18}{'calls':>10}{'total[s]':>12}"
                 f"{'us/job':>10}{'share':>8}")
    for name, calls, total in rows:
        per_job = total * 1e6 / state.jobs if state.jobs else float("nan")
        share = 100.0 * total / state.wall_s if state.wall_s > 0 else 0.0
        lines.append(
            f"{name:<18}{calls:>10}{total:>12.4f}{per_job:>10.1f}"
            f"{share:>7.1f}%"
        )
    if state.samples:
        lines.append(
            f"sampler: {state.samples} stack samples over "
            f"{len(state.stacks)} distinct stacks"
        )
    return "\n".join(lines)


def write_host_profile(
    state: ProfileState,
    directory: pathlib.Path | str,
    run_name: str,
    top_n: int = 30,
) -> list[pathlib.Path]:
    """Write one profile's artifacts into ``directory``; returns paths.

    Four files per run, parallel to :func:`~repro.telemetry.exporters.
    write_run` but host-side (and therefore never byte-stable)::

        <run>.hostprof.json   ProfileState round-trip (merge input)
        <run>.flame.txt       collapsed-stack flamegraph text
        <run>.hotspots.json   top-N hotspot table + phase summary
        <run>.metrics.json    host.* metrics dump (report/gate input)

    Name runs ``host.<...>`` so the metrics file lands under the
    ``host.`` run prefix the CI gate filters on.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    def emit(suffix: str, text: str) -> None:
        path = directory / f"{run_name}.{suffix}"
        path.write_text(text)
        written.append(path)

    emit("hostprof.json", json.dumps(state.as_dict(), indent=2) + "\n")
    emit("flame.txt", flamegraph_text(state))
    emit(
        "hotspots.json",
        json.dumps(
            {
                "run": run_name,
                "jobs": state.jobs,
                "wall_s": state.wall_s,
                "jobs_per_sec": (
                    None if state.jobs == 0 or state.wall_s <= 0
                    else state.jobs_per_sec
                ),
                "phases": {
                    name: {"calls": calls, "total_s": total}
                    for name, (calls, total) in sorted(state.phases.items())
                },
                "hotspots": [
                    h.as_dict() for h in hotspots(state, top_n=top_n)
                ],
            },
            indent=2,
        )
        + "\n",
    )
    emit("metrics.json", json.dumps(host_metrics(state), indent=2) + "\n")
    return written


# -- shared measurement methodology --------------------------------------------
def best_of(
    fn: Callable[[], object],
    rounds: int = 5,
    clock: Callable[[], float] = time.perf_counter,
) -> float:
    """Best-of-N wall time of ``fn`` on the host clock, in seconds.

    The one timing loop shared by the perf guards
    (``benchmarks/test_perf.py``) and the profiler CLI, so "the bench
    regressed" and "the profiler says" are claims about the same
    measurement: minimum over rounds (noise-robust), monotonic clock,
    no per-round allocation between the clock reads.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    best = float("inf")
    for _ in range(rounds):
        started = clock()
        fn()
        elapsed = clock() - started
        if elapsed < best:
            best = elapsed
    return best
