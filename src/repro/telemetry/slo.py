"""Declarative SLOs: error budgets, multi-window burn rates, alerts.

The paper's value proposition *is* an SLO — meet the per-job response
budget (deadline-miss rate comparable to peak performance) while
minimizing energy — so the watchdog plane states that objective
declaratively and holds every run to it while the run is still going.

The model is the SRE one, translated to per-job events:

- A :class:`SloSpec` maps each completed job to good/bad via a *signal*
  (deadline miss, slack below a floor, energy above a cap, prediction
  under-estimate beyond a tolerance) and declares the *objective*: the
  fraction of bad jobs the service is allowed (e.g. 0.02 = at most 2%
  of jobs may miss).
- The **error budget** is the allowance itself.  After ``n`` jobs the
  budget is ``objective * n`` bad jobs; :attr:`SloTracker.budget_consumed`
  is the fraction of it already spent (>1 means the objective is blown
  for the run so far).
- The **burn rate** over a window is ``(bad / window) / objective`` —
  how many times faster than allowed the budget is being spent.  1.0
  exactly exhausts the budget; 10x exhausts it in a tenth of the run.
- Alerts use **multi-window** evaluation (the SRE fast+slow pattern):
  every :class:`BurnWindow` of a spec must simultaneously exceed its
  threshold.  The long window proves the problem is sustained, the
  short window proves it is still happening, so a transient spike
  neither fires (short recovers) nor masks a real regression (long
  remembers).

Everything here is plain Python and allocation-light: one ring buffer
of booleans per window, O(1) per job.  The consumer is
:mod:`repro.telemetry.watch`, which feeds trackers from the live
telemetry stream; specs and alerts round-trip through JSON so suites
can be committed next to a workload.  See ``docs/slo_watchdog.md``.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "SIGNALS",
    "JobObservation",
    "BurnWindow",
    "SloSpec",
    "SloAlert",
    "SloStatus",
    "SloTracker",
    "SloTrackerState",
    "merge_states",
    "default_slos",
    "specs_to_json",
    "specs_from_json",
]

#: Signals a spec may classify jobs with, and what "bad" means for each.
SIGNALS = (
    "deadline_miss",   # bad: the job finished after its deadline
    "slack_below",     # bad: slack_s < threshold (the tight tail)
    "energy_above",    # bad: the job's energy > threshold joules
    "under_estimate",  # bad: relative residual > threshold (model too slow)
)


@dataclass(frozen=True)
class JobObservation:
    """One completed job as the SLO plane sees it.

    Attributes:
        index: Job number, 0-based.
        t_s: Completion time on the simulated clock.
        missed: Whether the deadline was missed.
        slack_s: Deadline minus completion (negative on a miss).
        energy_j: Energy this job consumed (NaN when unknown).
        residual_rel: Signed relative prediction residual
            ``(observed - predicted) / predicted`` (NaN when the
            governor does not predict).
        switch_time_s: DVFS switch time charged to this job.
    """

    index: int
    t_s: float
    missed: bool
    slack_s: float
    energy_j: float = float("nan")
    residual_rel: float = float("nan")
    switch_time_s: float = 0.0


@dataclass(frozen=True)
class BurnWindow:
    """One alerting window: ``jobs`` lookback, ``max_burn_rate`` trigger."""

    jobs: int
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"window must cover >= 1 job, got {self.jobs}")
        if self.max_burn_rate <= 0:
            raise ValueError(
                f"max_burn_rate must be positive, got {self.max_burn_rate}"
            )

    def as_dict(self) -> dict:
        return {"jobs": self.jobs, "max_burn_rate": self.max_burn_rate}

    @classmethod
    def from_dict(cls, data: dict) -> "BurnWindow":
        return cls(
            jobs=int(data["jobs"]),
            max_burn_rate=float(data["max_burn_rate"]),
        )


@dataclass(frozen=True)
class SloSpec:
    """One declared objective over the per-job stream.

    Attributes:
        name: Stable identifier (used in alerts, metrics, baselines).
        signal: One of :data:`SIGNALS`.
        objective: Allowed bad-job fraction, in (0, 1).
        threshold: Signal cutoff (min slack seconds for ``slack_below``,
            max joules for ``energy_above``, max relative residual for
            ``under_estimate``; unused by ``deadline_miss``).
        windows: Burn-rate windows that must ALL exceed their trigger
            for an alert to fire.  Ordered long -> short by convention.
        severity: ``"page"`` (urgent, arms the fallback) or ``"ticket"``.
        description: Human-readable intent, shown in alerts.
    """

    name: str
    signal: str
    objective: float
    threshold: float = 0.0
    windows: tuple[BurnWindow, ...] = (
        BurnWindow(jobs=40, max_burn_rate=2.0),
        BurnWindow(jobs=10, max_burn_rate=5.0),
    )
    severity: str = "page"
    description: str = ""

    def __post_init__(self) -> None:
        if self.signal not in SIGNALS:
            raise ValueError(
                f"unknown signal {self.signal!r}; expected one of {SIGNALS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if not self.windows:
            raise ValueError("a spec needs at least one burn window")
        if self.severity not in ("page", "ticket"):
            raise ValueError(
                f"severity must be 'page' or 'ticket', got {self.severity!r}"
            )

    def is_bad(self, obs: JobObservation) -> bool | None:
        """Classify one job; None when the signal is unobservable."""
        if self.signal == "deadline_miss":
            return obs.missed
        if self.signal == "slack_below":
            return obs.slack_s < self.threshold
        if self.signal == "energy_above":
            if math.isnan(obs.energy_j):
                return None
            return obs.energy_j > self.threshold
        # under_estimate
        if math.isnan(obs.residual_rel):
            return None
        return obs.residual_rel > self.threshold

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "objective": self.objective,
            "threshold": self.threshold,
            "windows": [w.as_dict() for w in self.windows],
            "severity": self.severity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloSpec":
        return cls(
            name=str(data["name"]),
            signal=str(data["signal"]),
            objective=float(data["objective"]),
            threshold=float(data.get("threshold", 0.0)),
            windows=tuple(
                BurnWindow.from_dict(w) for w in data["windows"]
            ),
            severity=str(data.get("severity", "page")),
            description=str(data.get("description", "")),
        )


@dataclass(frozen=True)
class SloAlert:
    """A burn-rate violation: every window of a spec is over its trigger.

    Attributes:
        spec_name: Which :class:`SloSpec` fired.
        severity: The spec's severity at fire time.
        t_s: Simulated time of the triggering job's completion.
        job_index: The triggering job.
        burn_rates: Burn rate per window, keyed ``"w<jobs>"``.
        budget_consumed: Fraction of the run's error budget spent so far.
        message: One-line human summary.
    """

    spec_name: str
    severity: str
    t_s: float
    job_index: int
    burn_rates: dict[str, float] = field(default_factory=dict)
    budget_consumed: float = 0.0
    message: str = ""

    def as_dict(self) -> dict:
        return {
            "spec_name": self.spec_name,
            "severity": self.severity,
            "t_s": self.t_s,
            "job_index": self.job_index,
            "burn_rates": dict(self.burn_rates),
            "budget_consumed": self.budget_consumed,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloAlert":
        return cls(
            spec_name=str(data["spec_name"]),
            severity=str(data["severity"]),
            t_s=float(data["t_s"]),
            job_index=int(data["job_index"]),
            burn_rates={
                str(k): float(v) for k, v in data["burn_rates"].items()
            },
            budget_consumed=float(data["budget_consumed"]),
            message=str(data.get("message", "")),
        )


@dataclass(frozen=True)
class SloStatus:
    """One tracker's instantaneous view (dashboard row).

    Attributes:
        spec: The spec being tracked.
        jobs: Jobs classified so far (unobservable jobs excluded).
        bad: Bad jobs so far.
        budget_consumed: Fraction of the error budget spent.
        burn_rates: Current burn rate per window, keyed ``"w<jobs>"``.
        firing: Whether the alert condition currently holds.
        alerts: Alerts raised so far.
    """

    spec: SloSpec
    jobs: int
    bad: int
    budget_consumed: float
    burn_rates: dict[str, float]
    firing: bool
    alerts: int


@dataclass(frozen=True)
class SloTrackerState:
    """Serializable, mergeable snapshot of one tracker's accounting.

    This is the transport format of the fleet roll-up: every shard (or
    worker process) tracks its own streams, snapshots them, and the
    coordinator folds the snapshots together with **concatenation
    semantics** — ``merge_states(a, b)`` is exactly the state a single
    tracker would hold after seeing ``a``'s stream followed by ``b``'s.
    That identity is exact for the windowed burn rates and the error
    budget, because each ring stores the last ``window`` classifications
    of its stream and the last ``window`` of a concatenation is a suffix
    of the concatenated rings.  Alert *histories* do not concatenate
    (an alert is a path property of one stream), so merged states carry
    the union of alerts fired on the constituent streams.

    Attributes:
        spec: The objective the streams were classified against.
        jobs: Jobs classified (unobservable jobs excluded).
        bad: Bad jobs.
        rings: Per-window classification tails, oldest first; ring ``i``
            holds at most ``spec.windows[i].jobs`` entries.
        alerts: Alerts raised on the constituent stream(s).
    """

    spec: SloSpec
    jobs: int
    bad: int
    rings: tuple[tuple[bool, ...], ...]
    alerts: tuple[SloAlert, ...] = ()

    def __post_init__(self) -> None:
        if len(self.rings) != len(self.spec.windows):
            raise ValueError(
                f"state has {len(self.rings)} rings for "
                f"{len(self.spec.windows)} windows"
            )
        for ring, window in zip(self.rings, self.spec.windows):
            if len(ring) > window.jobs:
                raise ValueError(
                    f"ring of {len(ring)} entries exceeds its "
                    f"{window.jobs}-job window"
                )

    @property
    def budget_consumed(self) -> float:
        """Bad jobs over the budget the objective grants the stream."""
        if self.jobs == 0:
            return 0.0
        return self.bad / (self.spec.objective * self.jobs)

    def burn_rates(self) -> dict[str, float]:
        """Burn rate per window (0 until a window has data)."""
        rates = {}
        for window, ring in zip(self.spec.windows, self.rings):
            key = f"w{window.jobs}"
            if not ring:
                rates[key] = 0.0
            else:
                rates[key] = (sum(ring) / len(ring)) / self.spec.objective
        return rates

    @property
    def exceeding(self) -> bool:
        """Whether every window currently exceeds its burn-rate trigger.

        The static (order-free) half of the alert condition: a merged
        fleet state "is alerting" when its combined tails burn every
        window too fast, even though no single stream fired.
        """
        return all(
            ring and (sum(ring) / len(ring)) / self.spec.objective
            > window.max_burn_rate
            for window, ring in zip(self.spec.windows, self.rings)
        )

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "jobs": self.jobs,
            "bad": self.bad,
            "rings": [[bool(b) for b in ring] for ring in self.rings],
            "alerts": [alert.as_dict() for alert in self.alerts],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloTrackerState":
        return cls(
            spec=SloSpec.from_dict(data["spec"]),
            jobs=int(data["jobs"]),
            bad=int(data["bad"]),
            rings=tuple(
                tuple(bool(b) for b in ring) for ring in data["rings"]
            ),
            alerts=tuple(
                SloAlert.from_dict(a) for a in data.get("alerts", [])
            ),
        )


def merge_states(
    first: SloTrackerState, second: SloTrackerState
) -> SloTrackerState:
    """Fold two tracker states with concatenation semantics.

    The result equals the state of one tracker that observed ``first``'s
    stream and then ``second``'s (exactly, for jobs/bad/rings — see
    :class:`SloTrackerState`).  Both states must track the same spec.
    """
    if first.spec != second.spec:
        raise ValueError(
            f"cannot merge states of different specs "
            f"({first.spec.name!r} vs {second.spec.name!r})"
        )
    rings = tuple(
        tuple((ring_a + ring_b)[-window.jobs:])
        for window, ring_a, ring_b in zip(
            first.spec.windows, first.rings, second.rings
        )
    )
    return SloTrackerState(
        spec=first.spec,
        jobs=first.jobs + second.jobs,
        bad=first.bad + second.bad,
        rings=rings,
        alerts=first.alerts + second.alerts,
    )


class SloTracker:
    """Streams one spec's error-budget accounting and burn-rate alarms.

    An alert fires on the *rising edge* of the all-windows condition and
    re-arms only after the condition clears, so a sustained violation
    produces one alert, not one per job.

    Args:
        spec: The objective to hold the stream to.
        min_jobs: Jobs that must be classified before the first alert
            may fire (lets short windows fill with real data).
    """

    def __init__(self, spec: SloSpec, min_jobs: int | None = None):
        self.spec = spec
        self.min_jobs = (
            min_jobs
            if min_jobs is not None
            else min(w.jobs for w in spec.windows)
        )
        self._rings = [deque(maxlen=w.jobs) for w in spec.windows]
        self._bad_in_ring = [0] * len(spec.windows)
        self.jobs = 0
        self.bad = 0
        self.alerts: list[SloAlert] = []
        self._firing = False

    def _window_key(self, window: BurnWindow) -> str:
        return f"w{window.jobs}"

    def burn_rates(self) -> dict[str, float]:
        """Current burn rate per window (0 until a window has data)."""
        rates = {}
        for window, ring, bad in zip(
            self.spec.windows, self._rings, self._bad_in_ring
        ):
            if not ring:
                rates[self._window_key(window)] = 0.0
            else:
                rates[self._window_key(window)] = (
                    bad / len(ring)
                ) / self.spec.objective
        return rates

    @property
    def budget_consumed(self) -> float:
        """Bad jobs over the budget the objective grants the run so far."""
        if self.jobs == 0:
            return 0.0
        return self.bad / (self.spec.objective * self.jobs)

    @property
    def firing(self) -> bool:
        return self._firing

    def observe(self, obs: JobObservation) -> SloAlert | None:
        """Fold one job in; returns a newly-fired alert, if any."""
        bad = self.spec.is_bad(obs)
        if bad is None:
            return None
        self.jobs += 1
        self.bad += int(bad)
        for i, ring in enumerate(self._rings):
            if len(ring) == ring.maxlen:
                self._bad_in_ring[i] -= int(ring[0])
            ring.append(bad)
            self._bad_in_ring[i] += int(bad)

        over = all(
            ring
            and (bad_count / len(ring)) / self.spec.objective
            > window.max_burn_rate
            for window, ring, bad_count in zip(
                self.spec.windows, self._rings, self._bad_in_ring
            )
        )
        if self.jobs < self.min_jobs:
            over = False
        if not over:
            self._firing = False
            return None
        if self._firing:
            return None  # still the same sustained violation
        self._firing = True
        rates = self.burn_rates()
        worst = max(rates.values())
        alert = SloAlert(
            spec_name=self.spec.name,
            severity=self.spec.severity,
            t_s=obs.t_s,
            job_index=obs.index,
            burn_rates=rates,
            budget_consumed=self.budget_consumed,
            message=(
                f"{self.spec.name}: burning error budget {worst:.1f}x too "
                f"fast ({self.bad}/{self.jobs} bad jobs, "
                f"{100 * self.budget_consumed:.0f}% of budget spent)"
            ),
        )
        self.alerts.append(alert)
        return alert

    def state(self) -> SloTrackerState:
        """Snapshot this tracker's mergeable accounting state."""
        return SloTrackerState(
            spec=self.spec,
            jobs=self.jobs,
            bad=self.bad,
            rings=tuple(tuple(ring) for ring in self._rings),
            alerts=tuple(self.alerts),
        )

    @classmethod
    def from_state(
        cls, state: SloTrackerState, min_jobs: int | None = None
    ) -> "SloTracker":
        """A live tracker primed with a (possibly merged) state.

        The resumed tracker continues the stream: counts, window tails,
        and alert history carry over; the firing latch re-arms from the
        restored windows, so a violation still in progress produces no
        duplicate rising-edge alert.
        """
        tracker = cls(state.spec, min_jobs=min_jobs)
        tracker.jobs = state.jobs
        tracker.bad = state.bad
        for i, ring in enumerate(state.rings):
            for value in ring:
                tracker._rings[i].append(bool(value))
            tracker._bad_in_ring[i] = sum(ring)
        tracker.alerts = list(state.alerts)
        tracker._firing = state.exceeding and state.jobs >= tracker.min_jobs
        return tracker

    def status(self) -> SloStatus:
        return SloStatus(
            spec=self.spec,
            jobs=self.jobs,
            bad=self.bad,
            budget_consumed=self.budget_consumed,
            burn_rates=self.burn_rates(),
            firing=self._firing,
            alerts=len(self.alerts),
        )


def default_slos(
    budget_s: float | None = None,
    max_energy_per_job_j: float | None = None,
    miss_objective: float = 0.02,
) -> tuple[SloSpec, ...]:
    """The stock SLO suite for an interactive run.

    Args:
        budget_s: The task's per-job budget; enables the slack-floor SLO
            (tight tail) at 5% of the budget.
        max_energy_per_job_j: Per-job energy cap; enables the energy SLO.
        miss_objective: Allowed deadline-miss fraction (paper Fig. 15
            holds the predictive governor near peak-performance rates).
    """
    specs = [
        SloSpec(
            name="deadline-miss-rate",
            signal="deadline_miss",
            objective=miss_objective,
            description=(
                "jobs must meet the response-time budget at a rate "
                "comparable to peak performance (PAPER.md §1)"
            ),
        ),
        SloSpec(
            name="prediction-under-estimate",
            signal="under_estimate",
            objective=0.10,
            threshold=0.10,
            severity="ticket",
            windows=(
                BurnWindow(jobs=40, max_burn_rate=2.0),
                BurnWindow(jobs=10, max_burn_rate=4.0),
            ),
            description=(
                "the model may under-predict by >10% on at most 10% of "
                "jobs — sustained under-estimation precedes miss storms"
            ),
        ),
    ]
    if budget_s is not None:
        specs.append(
            SloSpec(
                name="p95-slack",
                signal="slack_below",
                objective=0.05,
                threshold=0.05 * budget_s,
                severity="ticket",
                description=(
                    "at most 5% of jobs may finish with less than 5% of "
                    "the budget to spare (the p95 tight tail)"
                ),
            )
        )
    if max_energy_per_job_j is not None:
        specs.append(
            SloSpec(
                name="energy-per-job",
                signal="energy_above",
                objective=0.10,
                threshold=max_energy_per_job_j,
                severity="ticket",
                description="per-job energy stays under the declared cap",
            )
        )
    return tuple(specs)


def specs_to_json(specs: Iterable[SloSpec]) -> str:
    """Serialize a spec suite (the ``repro watch --slo FILE`` format)."""
    return json.dumps([spec.as_dict() for spec in specs], indent=2)


def specs_from_json(text: str) -> tuple[SloSpec, ...]:
    """Parse a spec suite written by :func:`specs_to_json`."""
    data: Any = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("SLO file must be a JSON array of spec objects")
    return tuple(SloSpec.from_dict(item) for item in data)
