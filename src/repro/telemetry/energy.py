"""Energy attribution: a conservation-checked per-job energy ledger.

The paper's whole evaluation is energy-normalized (56% saving vs. the
performance governor, Fig. 15), yet a run used to observe energy only as
end-of-run scalars.  This module splits the board's exact power-timeline
integral into **per-job x per-phase x per-OPP** cells as the run
executes, with three guarantees:

- **Conservation.**  Every appended power segment flows through the
  board's segment observer into exactly one cell, so the attributed
  cells sum to ``board.energy_j()`` (plus separately-tracked predictor
  overlap) to within float-fold noise — machine-checked at 1e-9 by
  :meth:`EnergyLedger.conservation_error_j`, in the style of the
  decision-attribution sum identity.

- **A live savings estimator.**  Each segment also contributes to an
  embedded *performance-governor counterfactual*: the energy the same
  job stream would have cost pinned at fmax.  Execute segments are
  re-timed cycle-preservingly (busy for ``d * f/fmax`` at full-activity
  fmax power, idle for the remainder); every other segment — predictor
  slices, switches, idles, feedback — maps to fmax idle time, because
  the performance governor runs no predictor and never switches.  The
  normalized saving ``1 - actual/counterfactual`` turns the paper's
  headline number into a continuously observed, gateable metric.  It is
  a first-order model (arrival-driven idle is not re-simulated), which
  is exactly what a live estimator can afford.

- **Mergeable state.**  :class:`EnergyState` is a frozen, picklable
  snapshot whose marginals (phase, OPP residency, counterfactual) add
  across sessions — the same fold-together shape as
  :class:`~repro.telemetry.hostprof.ProfileState` — so fleet shards
  attribute locally and the coordinator rolls up per-tenant joules,
  fleet J/job, and top-K energy-hungry tenants without re-walking any
  timeline.

Phases: ``predict`` (governor decision slice), ``switch`` (DVFS
transition), ``execute`` (job work), ``idle`` (clock-gated waits),
``feedback`` (post-job adaptation work), plus the off-timeline
``predictor_overlap`` bucket for pipelined/parallel predictor placements
whose slice energy overlaps job execution.

Cost discipline matches the rest of the telemetry subsystem: the
default is the :data:`NO_ENERGY_LEDGER` singleton with ``enabled`` set
False, every instrumentation site guards on it, and the perf bench
proves a disabled run allocates nothing here.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "ENERGY_PHASES",
    "OVERLAP_PHASE",
    "EnergyState",
    "merge_energy",
    "EnergyLedger",
    "NullEnergyLedger",
    "NO_ENERGY_LEDGER",
    "CONSERVATION_TOL_J",
    "energy_metrics",
    "register_energy_metrics",
    "render_energy",
    "render_energy_cells",
    "energy_weighted_phases",
    "energy_flamegraph_text",
    "write_energy_report",
]

#: On-timeline attribution phases, in ledger/report order.
ENERGY_PHASES = ("predict", "switch", "execute", "idle", "feedback")

#: The off-timeline bucket: predictor-slice energy spent on cycles that
#: overlapped job execution (pipelined/parallel placements).  It adds to
#: the run's total energy but corresponds to no timeline segment.
OVERLAP_PHASE = "predictor_overlap"

#: Conservation invariant tolerance: attributed cells must reproduce the
#: board's exact energy integral to within this many joules.
CONSERVATION_TOL_J = 1e-9

#: Timeline tag -> ledger phase for the unambiguous tags.  "predictor"
#: is context-dependent (predict vs feedback) and resolved by the
#: ledger's feedback flag.
_TAG_PHASES = {"job": "execute", "switch": "switch", "idle": "idle"}


@dataclass(frozen=True)
class EnergyState:
    """Serializable, mergeable snapshot of one ledger's attribution.

    The fleet transport format: every marginal is additive, so folding
    two states with :func:`merge_energy` equals the state one ledger
    would hold after watching both runs.  Per-job cells deliberately do
    not ride along — they are live-ledger detail for the CLI; a fleet
    of thousands of sessions rolls up marginals only.

    Attributes:
        jobs: Jobs attributed (``begin_job`` calls).
        total_j: Attributed energy, including predictor overlap.
        overlap_j: The off-timeline predictor-overlap share of
            ``total_j``.
        counterfactual_j: Energy of the embedded performance-governor
            counterfactual over the same segments.
        by_phase: ``phase -> joules`` (on-timeline phases plus
            :data:`OVERLAP_PHASE` when any overlap accrued).
        time_by_phase: ``phase -> seconds`` of timeline residency
            (overlap contributes no time).
        by_opp_mhz: ``freq_mhz -> joules`` OPP-residency marginal.
    """

    jobs: int = 0
    total_j: float = 0.0
    overlap_j: float = 0.0
    counterfactual_j: float = 0.0
    by_phase: Mapping[str, float] = field(default_factory=dict)
    time_by_phase: Mapping[str, float] = field(default_factory=dict)
    by_opp_mhz: Mapping[float, float] = field(default_factory=dict)

    @property
    def savings_frac(self) -> float:
        """Normalized saving vs. the counterfactual (NaN before data)."""
        if self.counterfactual_j <= 0.0:
            return float("nan")
        return 1.0 - self.total_j / self.counterfactual_j

    @property
    def j_per_job(self) -> float:
        """Mean attributed joules per job (NaN before any job)."""
        if self.jobs == 0:
            return float("nan")
        return self.total_j / self.jobs

    def phase_j(self, phase: str) -> float:
        """Attributed joules for one phase (0 if never hit)."""
        return self.by_phase.get(phase, 0.0)

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "total_j": self.total_j,
            "overlap_j": self.overlap_j,
            "counterfactual_j": self.counterfactual_j,
            "by_phase": {k: v for k, v in sorted(self.by_phase.items())},
            "time_by_phase": {
                k: v for k, v in sorted(self.time_by_phase.items())
            },
            # JSON keys are strings; freq in MHz round-trips via float().
            "by_opp_mhz": {
                f"{mhz:g}": joules
                for mhz, joules in sorted(self.by_opp_mhz.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyState":
        return cls(
            jobs=int(data["jobs"]),
            total_j=float(data["total_j"]),
            overlap_j=float(data.get("overlap_j", 0.0)),
            counterfactual_j=float(data.get("counterfactual_j", 0.0)),
            by_phase={
                str(k): float(v)
                for k, v in data.get("by_phase", {}).items()
            },
            time_by_phase={
                str(k): float(v)
                for k, v in data.get("time_by_phase", {}).items()
            },
            by_opp_mhz={
                float(k): float(v)
                for k, v in data.get("by_opp_mhz", {}).items()
            },
        )


def _merge_maps(first: Mapping, second: Mapping) -> dict:
    merged = dict(first)
    for key, value in second.items():
        merged[key] = merged.get(key, 0.0) + value
    return merged


def merge_energy(first: EnergyState, second: EnergyState) -> EnergyState:
    """Fold two energy states with concatenation semantics.

    Every field is additive, so the result equals the state one ledger
    would hold after attributing ``first``'s run and then ``second``'s.
    The fleet coordinator folds session states in canonical (roster
    order, session index) order, which keeps the float sums — and
    therefore the rendered report — bit-identical across shard and
    worker partitionings.
    """
    return EnergyState(
        jobs=first.jobs + second.jobs,
        total_j=first.total_j + second.total_j,
        overlap_j=first.overlap_j + second.overlap_j,
        counterfactual_j=first.counterfactual_j + second.counterfactual_j,
        by_phase=_merge_maps(first.by_phase, second.by_phase),
        time_by_phase=_merge_maps(first.time_by_phase, second.time_by_phase),
        by_opp_mhz=_merge_maps(first.by_opp_mhz, second.by_opp_mhz),
    )


class EnergyLedger:
    """Live per-job x per-phase x per-OPP energy attribution.

    Subscribe it to a board (``board.set_segment_observer(ledger.observe)``)
    and tell it about job boundaries; every power segment then lands in
    exactly one cell.  The executor drives the three context hooks:

    - :meth:`begin_job` before each job's release wait;
    - :meth:`begin_feedback` / :meth:`end_feedback` around post-job
      adaptation work (whose timeline tag, "predictor", is otherwise
      indistinguishable from the decision slice);
    - :meth:`add_overlap` when a pipelined/parallel predictor placement
      accrues off-timeline slice energy.

    Args:
        power: The board's power model (counterfactual pricing).
        opps: The board's OPP table (fmax reference + index -> MHz).

    Attributes:
        enabled: Always True here; :class:`NullEnergyLedger` is the off
            switch.
    """

    enabled = True

    def __init__(self, power, opps):
        self.power = power
        self.opps = opps
        fmax = opps.fmax
        self._fmax_hz = fmax.freq_hz
        self._fmax_busy_w = power.power(fmax, activity=1.0)
        self._fmax_idle_w = power.power(fmax, activity=power.idle_activity)
        self._mhz = tuple(p.freq_mhz for p in opps)
        # (job, phase, opp_index) -> [energy_j, duration_s]
        self._cells: dict[tuple[int, str, int], list[float]] = {}
        self._job = -1
        self._jobs = 0
        self._feedback = False
        self._total_j = 0.0
        self._overlap_j = 0.0
        self._counterfactual_j = 0.0

    # -- executor context hooks ------------------------------------------------
    def begin_job(self, index: int) -> None:
        """Attribute subsequent segments (release wait included) to a job."""
        self._job = index
        self._jobs += 1
        self._feedback = False

    def begin_feedback(self) -> None:
        """Segments tagged "predictor" now mean post-job adaptation."""
        self._feedback = True

    def end_feedback(self) -> None:
        self._feedback = False

    def add_overlap(self, energy_j: float) -> None:
        """Account predictor-slice energy that overlapped job execution."""
        self._overlap_j += energy_j
        self._total_j += energy_j
        cell = self._cell(self._job, OVERLAP_PHASE, self.opps.fmax.index)
        cell[0] += energy_j
        # Overlapped cycles cost the counterfactual nothing: they occupy
        # no wall-clock of their own.

    # -- the board hook --------------------------------------------------------
    def observe(self, segment, opp_index: int) -> None:
        """Attribute one power segment (the board's observer callback)."""
        tag = segment.tag
        phase = _TAG_PHASES.get(tag)
        if phase is None:
            if tag == "predictor":
                phase = "feedback" if self._feedback else "predict"
            else:
                phase = tag or "untagged"
        energy = segment.energy_j
        duration = segment.duration_s
        cell = self._cell(self._job, phase, opp_index)
        cell[0] += energy
        cell[1] += duration
        self._total_j += energy
        if phase == "execute":
            # Cycle-preserving re-timing: the counterfactual runs the
            # same cycles at fmax, busy for d*f/fmax, idle the rest.
            busy_frac = self.opps[opp_index].freq_hz / self._fmax_hz
            self._counterfactual_j += duration * (
                busy_frac * self._fmax_busy_w
                + (1.0 - busy_frac) * self._fmax_idle_w
            )
        else:
            # The performance governor runs no predictor, never
            # switches, and spends this wall-clock idling at fmax.
            self._counterfactual_j += duration * self._fmax_idle_w
        return None

    def _cell(self, job: int, phase: str, opp_index: int) -> list[float]:
        key = (job, phase, opp_index)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = [0.0, 0.0]
        return cell

    # -- invariants and views --------------------------------------------------
    @property
    def total_j(self) -> float:
        """Attributed energy so far, predictor overlap included."""
        return self._total_j

    @property
    def overlap_j(self) -> float:
        return self._overlap_j

    @property
    def counterfactual_j(self) -> float:
        return self._counterfactual_j

    @property
    def savings_frac(self) -> float:
        if self._counterfactual_j <= 0.0:
            return float("nan")
        return 1.0 - self._total_j / self._counterfactual_j

    def conservation_error_j(self, board_energy_j: float) -> float:
        """``|attributed - (board integral + overlap)|`` in joules.

        The machine-checked invariant: every timeline segment flowed
        through :meth:`observe` and overlap was added on both sides, so
        this is zero up to float-fold noise.  Callers assert it is at
        most :data:`CONSERVATION_TOL_J`.
        """
        return abs(self._total_j - (board_energy_j + self._overlap_j))

    def check_conservation(self, board) -> float:
        """Assert the invariant against a board; returns the error.

        Raises:
            ValueError: If the attributed total misses the board's
                energy integral by more than :data:`CONSERVATION_TOL_J`.
        """
        error = self.conservation_error_j(board.energy_j())
        if error > CONSERVATION_TOL_J:
            raise ValueError(
                f"energy attribution leaked {error:.3e} J: ledger "
                f"{self._total_j!r} J vs board "
                f"{board.energy_j() + self._overlap_j!r} J"
            )
        return error

    def cells(self) -> dict[tuple[int, str, int], tuple[float, float]]:
        """Per-(job, phase, opp_index) -> (energy_j, duration_s) detail."""
        return {
            key: (energy, duration)
            for key, (energy, duration) in self._cells.items()
        }

    def job_energy_j(self, job: int) -> float:
        """Attributed energy of one job across all phases and OPPs."""
        return sum(
            energy
            for (j, _, _), (energy, _) in self._cells.items()
            if j == job
        )

    def top_jobs(self, top_n: int = 10) -> list[tuple[int, float]]:
        """The ``top_n`` energy-hungriest jobs as (job, joules) pairs."""
        totals: dict[int, float] = {}
        for (job, _, _), (energy, _) in self._cells.items():
            totals[job] = totals.get(job, 0.0) + energy
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top_n]

    def state(self) -> EnergyState:
        """Snapshot the marginals (mergeable, picklable, serializable)."""
        by_phase: dict[str, float] = {}
        time_by_phase: dict[str, float] = {}
        by_opp: dict[float, float] = {}
        for (_, phase, opp_index), (energy, duration) in sorted(
            self._cells.items()
        ):
            by_phase[phase] = by_phase.get(phase, 0.0) + energy
            if phase != OVERLAP_PHASE:
                time_by_phase[phase] = (
                    time_by_phase.get(phase, 0.0) + duration
                )
            mhz = self._mhz[opp_index]
            by_opp[mhz] = by_opp.get(mhz, 0.0) + energy
        return EnergyState(
            jobs=self._jobs,
            total_j=self._total_j,
            overlap_j=self._overlap_j,
            counterfactual_j=self._counterfactual_j,
            by_phase=by_phase,
            time_by_phase=time_by_phase,
            by_opp_mhz=by_opp,
        )


class NullEnergyLedger:
    """The no-op twin of :class:`EnergyLedger` — the zero-cost default.

    ``enabled`` is False, so instrumentation sites skip attribution
    entirely; the methods exist (and do nothing) so unguarded calls are
    still safe, and :meth:`state` yields a valid empty snapshot.
    """

    enabled = False

    def begin_job(self, index: int) -> None:
        pass

    def begin_feedback(self) -> None:
        pass

    def end_feedback(self) -> None:
        pass

    def add_overlap(self, energy_j: float) -> None:
        pass

    def observe(self, segment, opp_index: int) -> None:
        pass

    def conservation_error_j(self, board_energy_j: float) -> float:
        return 0.0

    def state(self) -> EnergyState:
        return EnergyState()


#: Shared disabled ledger; the executor default.  Stateless, so one
#: instance serves every run.
NO_ENERGY_LEDGER = NullEnergyLedger()


# -- metrics ------------------------------------------------------------------
def register_energy_metrics(registry, state: EnergyState) -> None:
    """Write a state's headline numbers into a metrics registry.

    Registers ``energy.*`` so attribution rides the same ``report
    --gate`` flow as the rest of the metrics: ``energy.total_j`` /
    ``energy.j_per_job`` / phase gauges gate lower-is-better (the
    "energy" direction token), ``energy.savings_frac`` gates
    higher-is-better (the "savings" token), counts are neutral.
    """
    registry.counter("energy.jobs").inc(state.jobs)
    registry.gauge("energy.total_j").set(state.total_j)
    registry.gauge("energy.counterfactual_j").set(state.counterfactual_j)
    registry.gauge("energy.predictor_overlap_j").set(state.overlap_j)
    if state.jobs:
        registry.gauge("energy.j_per_job").set(state.j_per_job)
    if not math.isnan(state.savings_frac):
        registry.gauge("energy.savings_frac").set(state.savings_frac)
    for phase, joules in sorted(state.by_phase.items()):
        registry.gauge(f"energy.phase_j[{phase}]").set(joules)
    for mhz, joules in sorted(state.by_opp_mhz.items()):
        registry.gauge(f"energy.opp_j[{mhz:g}]").set(joules)


def energy_metrics(
    state: EnergyState, conservation_error_j: float | None = None
) -> dict:
    """A state as a metrics-registry dump (``*.metrics.json`` shape).

    Written as ``energy.<run>.metrics.json`` so ``repro report --gate
    BENCH_energy_baseline.json --runs energy.`` holds attribution to a
    committed baseline exactly like the SLO gate does.  When the caller
    measured the conservation error against a live board it rides along
    as ``energy.conservation_error_j`` — a gauge the baseline pins at
    (effectively) zero, making the invariant itself gateable.
    """
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    register_energy_metrics(registry, state)
    if conservation_error_j is not None:
        registry.gauge("energy.conservation_error_j").set(
            conservation_error_j
        )
    return registry.as_dict()


# -- renderers ----------------------------------------------------------------
def render_energy(state: EnergyState, title: str = "energy ledger") -> str:
    """Human-readable phase table + savings summary."""
    lines = [
        f"{title}: {state.total_j:.4f} J attributed over {state.jobs} jobs"
    ]
    if state.jobs:
        lines[0] += f"  ({state.j_per_job * 1e3:.2f} mJ/job)"
    lines.append(
        f"{'phase':<18}{'energy[J]':>12}{'time[s]':>10}{'share':>8}"
    )
    phases = list(ENERGY_PHASES)
    if state.phase_j(OVERLAP_PHASE) > 0.0:
        phases.append(OVERLAP_PHASE)
    for phase in phases:
        joules = state.phase_j(phase)
        seconds = state.time_by_phase.get(phase, 0.0)
        share = 100.0 * joules / state.total_j if state.total_j > 0 else 0.0
        lines.append(
            f"{phase:<18}{joules:>12.4f}{seconds:>10.3f}{share:>7.1f}%"
        )
    if state.by_opp_mhz:
        residency = "  ".join(
            f"{mhz:g}MHz={joules:.3f}J"
            for mhz, joules in sorted(state.by_opp_mhz.items())
        )
        lines.append(f"opp residency: {residency}")
    if not math.isnan(state.savings_frac):
        lines.append(
            f"vs performance governor: {state.counterfactual_j:.4f} J "
            f"counterfactual -> {100.0 * state.savings_frac:.1f}% saved"
        )
    return "\n".join(lines)


def render_energy_cells(
    ledger: EnergyLedger, top_n: int = 10
) -> str:
    """Top-N energy-hungriest jobs with their per-phase split."""
    top = ledger.top_jobs(top_n)
    if not top:
        return "energy cells: no jobs attributed"
    cells = ledger.cells()
    lines = [f"top-{len(top)} energy-hungriest jobs:"]
    header = f"{'job':>6}{'total[mJ]':>12}"
    phases = list(ENERGY_PHASES) + [OVERLAP_PHASE]
    present = [
        p for p in phases if any(key[1] == p for key in cells)
    ]
    for phase in present:
        header += f"{phase:>{max(len(phase) + 2, 10)}}"
    lines.append(header)
    for job, total in top:
        row = f"{job:>6}{total * 1e3:>12.3f}"
        for phase in present:
            joules = sum(
                energy
                for (j, p, _), (energy, _) in cells.items()
                if j == job and p == phase
            )
            row += f"{joules * 1e3:>{max(len(phase) + 2, 10)}.3f}"
        lines.append(row)
    lines.append("(per-phase columns in mJ)")
    return "\n".join(lines)


# -- hostprof integration -----------------------------------------------------
#: Energy phase -> host-profiler phase.  Approximate by construction:
#: the host profiler times the *simulator* (interpreter eval, governor
#: decision, switch bookkeeping, record keeping) while the ledger
#: attributes *simulated* joules, and the map pairs each joule bucket
#: with the host phase that produces it.
_HOSTPROF_PHASE = {
    "execute": "interp",
    "predict": "governor",
    OVERLAP_PHASE: "governor",
    "switch": "switch",
    "feedback": "record",
}


def energy_weighted_phases(
    profile, state: EnergyState
) -> list[tuple[str, float, float, float]]:
    """Join host wall-time with attributed energy, per phase.

    Returns ``(host_phase, host_seconds, joules, joules_per_host_sec)``
    rows for every host phase that has either time or energy, so a
    profile reader can see which *host* hotspots burn *simulated*
    joules — e.g. an interpreter hotspot weighted by execute-phase
    energy rather than by sample count alone.
    """
    joules: dict[str, float] = {}
    for phase, energy in state.by_phase.items():
        host = _HOSTPROF_PHASE.get(phase)
        if host is not None:
            joules[host] = joules.get(host, 0.0) + energy
    rows = []
    for host in ("interp", "governor", "switch", "record", "fleet"):
        seconds = profile.phase_s(host)
        energy = joules.get(host, 0.0)
        if seconds == 0.0 and energy == 0.0:
            continue
        per_sec = energy / seconds if seconds > 0 else float("nan")
        rows.append((host, seconds, energy, per_sec))
    return rows


def energy_flamegraph_text(profile, state: EnergyState) -> str:
    """Collapsed stacks re-weighted by attributed energy.

    Each stack's sample count is scaled by its component's
    joules-per-host-second (via :func:`energy_weighted_phases` and
    :func:`~repro.telemetry.hostprof.component_of`), then emitted in
    the same ``stack weight`` collapsed-stack format as
    :func:`~repro.telemetry.hostprof.flamegraph_text` — paste into any
    flamegraph viewer to see where the *joules* go, host-frame by
    host-frame.  Weights are scaled to integer micro-units so standard
    tooling (which expects integer counts) renders them.
    """
    from repro.telemetry.hostprof import component_of

    weights = {
        host: per_sec
        for host, _, _, per_sec in energy_weighted_phases(profile, state)
        if not math.isnan(per_sec)
    }
    component_phase = {
        "interp": "interp",
        "ir": "interp",
        "governor": "governor",
        "predict": "governor",
        "features": "governor",
        "platform": "switch",
        "telemetry": "record",
        "fleet": "fleet",
    }
    lines = []
    for stack, count in sorted(profile.stacks.items()):
        leaf = stack.rsplit(";", 1)[-1]
        module, _, qualname = leaf.partition(":")
        component = component_of(module, qualname)
        host_phase = component_phase.get(component)
        weight = weights.get(host_phase, 0.0) if host_phase else 0.0
        scaled = int(round(count * weight * 1e6))
        if scaled > 0:
            lines.append(f"{stack} {scaled}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- artifacts ----------------------------------------------------------------
def write_energy_report(
    ledger: EnergyLedger,
    directory: pathlib.Path | str,
    run_name: str,
    conservation_error_j: float | None = None,
    top_n: int = 10,
) -> list[pathlib.Path]:
    """Write one run's energy artifacts into ``directory``; returns paths.

    Two files per run, parallel to the host-profile writer::

        <run>.energy.json     EnergyState round-trip + top jobs
        <run>.metrics.json    energy.* metrics dump (report/gate input)

    Name runs ``energy.<...>`` so the metrics file lands under the
    ``energy.`` run prefix the CI gate filters on.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    state = ledger.state()
    written = []

    def emit(suffix: str, text: str) -> None:
        path = directory / f"{run_name}.{suffix}"
        path.write_text(text)
        written.append(path)

    payload = {
        "run": run_name,
        "state": state.as_dict(),
        "savings_frac": (
            None if math.isnan(state.savings_frac) else state.savings_frac
        ),
        "conservation_error_j": conservation_error_j,
        "top_jobs": [
            {"job": job, "energy_j": joules}
            for job, joules in ledger.top_jobs(top_n)
        ],
    }
    emit("energy.json", json.dumps(payload, indent=2) + "\n")
    emit(
        "metrics.json",
        json.dumps(
            energy_metrics(state, conservation_error_j), indent=2
        )
        + "\n",
    )
    return written
