"""Run metrics: counters, gauges, and fixed-bucket histograms.

Zero-dependency by design (no numpy): the registry is written into by
the runtime executor and the governors on the simulation hot path, and
is importable from anywhere in the package without creating cycles.

The histogram uses a fixed geometric bucket ladder, so feeding it is
O(log buckets) per observation and its memory is bounded regardless of
run length.  Percentiles are recovered by linear interpolation inside
the bucket that crosses the requested rank — the same convention
:func:`percentile` applies to exact value lists, so histogram quantiles
and :meth:`~repro.runtime.records.RunResult.slack_percentile` agree up
to bucket resolution.
"""

from __future__ import annotations

import bisect
import math

__all__ = [
    "percentile",
    "geometric_buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


def percentile(values, pct: float) -> float:
    """The ``pct``-th percentile of ``values`` (linear interpolation).

    Matches numpy's default (``method='linear'``) so results line up
    with the analysis helpers, but without requiring numpy.

    Raises:
        ValueError: On an empty input or a ``pct`` outside [0, 100].
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("cannot take a percentile of no values")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def geometric_buckets(
    lo: float = 1e-6, hi: float = 1e3, per_decade: int = 6
) -> list[float]:
    """Geometric bucket upper bounds covering [lo, hi].

    The default ladder spans microseconds to kiloseconds at six buckets
    per decade (~47% relative resolution), which is plenty for p50/p95
    comparisons of slice, switch, and job times alike.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got {lo}/{hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = math.ceil(per_decade * math.log10(hi / lo))
    ratio = 10.0 ** (1.0 / per_decade)
    return [lo * ratio**i for i in range(n + 1)]


class Counter:
    """A monotonically increasing value (events, seconds of residency)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-write-wins instantaneous value (margin, mode, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket distribution with p50/p95/p99 summaries.

    Args:
        bounds: Ascending bucket upper bounds.  Observations above the
            last bound land in an unbounded overflow bucket whose
            percentile estimate is clamped to the observed maximum.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: list[float] | None = None):
        self.bounds = list(bounds) if bounds is not None else geometric_buckets()
        if any(
            nxt <= prev for prev, nxt in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, pct: float) -> float:
        """Bucket-interpolated percentile, clamped to the observed range."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self.count == 0:
            return float("nan")
        rank = (pct / 100.0) * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else self.min
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - seen) / bucket_count
                estimate = lower + frac * (upper - lower)
                return min(max(estimate, self.min), self.max)
            seen += bucket_count
        return self.max

    def as_dict(self) -> dict:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": None if empty else self.mean,
            "p50": None if empty else self.quantile(50),
            "p95": None if empty else self.quantile(95),
            "p99": None if empty else self.quantile(99),
        }


class MetricsRegistry:
    """Name-keyed metric store, created on first touch.

    Naming convention: dotted scopes with an optional bracketed label,
    e.g. ``executor.residency_s[600]`` for per-frequency residency or
    ``adaptive.transitions[predict->fallback]``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: list[float] | None = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def as_dict(self) -> dict:
        """JSON-ready dump (NaN-free: unset gauges report None)."""
        gauges = {}
        for name, gauge in sorted(self._gauges.items()):
            value = gauge.value
            gauges[name] = None if math.isnan(value) else value
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": gauges,
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }
