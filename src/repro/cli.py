"""Command-line interface: reproduce any table or figure from a shell.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro table2               # one experiment
    python -m repro fig15 fig21          # several
    python -m repro all                  # everything (minutes)
    python -m repro fig16 --app sha      # figure-specific options
    python -m repro drift --trace DIR    # + Chrome traces/telemetry in DIR
    python -m repro report DIR           # summarize a trace directory
    python -m repro report DIR_A DIR_B   # diff two trace directories
    python -m repro report ctrl.json     # show a saved controller's
                                         # slice certificate
    python -m repro check --all-workloads --strict
                                         # certify every workload's slice
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import math
import pathlib
import sys
import time
import warnings
from typing import Callable

from repro.analysis.harness import Lab
from repro.analysis import experiments as exp
from repro.telemetry import TraceSession, diff_directories, summarize_directory

__all__ = ["main"]

_EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "table2": ("Job-time statistics at fmax", exp.table2_job_stats),
    "fig2": ("ldecode per-job time trace", exp.fig02_trace),
    "fig3": ("PID expected-vs-actual lag", exp.fig03_pid_lag),
    "fig9": ("Execution time vs 1/frequency", exp.fig09_linearity),
    "fig11": ("DVFS switch-time matrix", exp.fig11_switching),
    "fig15": ("Energy and misses, 4 governors x 8 apps", exp.fig15_energy_misses),
    "fig16": ("Budget sweep", exp.fig16_budget_sweep),
    "fig17": ("Predictor and switch overheads", exp.fig17_overheads),
    "fig18": ("Limit study (overheads removed, oracle)", exp.fig18_limit_study),
    "fig19": ("Prediction-error box plots", exp.fig19_prediction_error),
    "fig20": ("Under-predict penalty sweep", exp.fig20_alpha_sweep),
    "fig21": ("Idling between jobs", exp.fig21_idling),
    "breakdown": ("Energy by activity (extra)", exp.energy_breakdown),
    "drift": ("Mid-run drift: adaptation vs frozen (extra)",
              exp.drift_adaptation),
    "robustness": ("Headline across seeds (extra)", exp.robustness),
    "crossplatform": ("Feature stability across platforms (§4.2)",
                      exp.cross_platform),
}

_ALIASES = {f"fig0{n}": f"fig{n}" for n in (2, 3, 9)}


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for name, (description, _) in _EXPERIMENTS.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run everything above")
    lines.append("  report   summarize one trace directory, or diff two; "
                 "or show a saved controller's certificate")
    lines.append("  check    run the slice certifier over workloads "
                 "(repro check --help)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "check":
        # Dispatch before the experiment parser sees check's own flags.
        return _check_command(raw[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures from 'Prediction-Guided "
            "Performance-Energy Trade-off for Interactive Applications' "
            "(MICRO 2015) on the simulated platform."
        ),
        epilog=_list_experiments(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see list below), 'list', or 'all'",
    )
    parser.add_argument(
        "--app",
        default=None,
        help="app for single-app figures (fig2, fig3, fig9, fig16, "
        "fig20, drift)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="override jobs per run"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="base evaluation seed"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.02, help="timing-noise sigma"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write each experiment's table (<name>.txt) and raw "
        "result (<name>.json) into DIR",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record run telemetry into DIR: per-run Chrome trace JSON "
        "(open in ui.perfetto.dev), JSONL event streams, decision audit "
        "logs, metrics dumps, and text reports",
    )
    args = parser.parse_args(argv)

    requested = [_ALIASES.get(e, e) for e in args.experiments]
    if requested[0] == "report":
        return _report_command(args.experiments[1:])
    if "list" in requested:
        print(_list_experiments())
        return 0
    if "all" in requested:
        requested = list(_EXPERIMENTS)
    unknown = [e for e in requested if e not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}\n", file=sys.stderr)
        print(_list_experiments(), file=sys.stderr)
        return 2

    output_dir = None
    if args.output is not None:
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    trace_session = None
    if args.trace is not None:
        trace_session = TraceSession(args.trace)

    lab = Lab(
        jitter_sigma=args.jitter, seed=args.seed, trace_session=trace_session
    )
    for name in requested:
        _, module = _EXPERIMENTS[name]
        kwargs = {}
        if args.jobs is not None:
            kwargs["n_jobs"] = args.jobs
        if args.app is not None and name in (
            "fig2", "fig3", "fig9", "fig16", "fig20", "drift"
        ):
            key = "app" if name == "fig2" else "app_name"
            kwargs[key] = args.app
        started = time.time()
        result = module.run(lab, **kwargs)
        rendered = module.render(result)
        print(rendered)
        print(f"[{name} took {time.time() - started:.1f}s]\n")
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(rendered + "\n")
            (output_dir / f"{name}.json").write_text(_result_json(result))
    if trace_session is not None:
        written = trace_session.flush()
        runs = len(trace_session.runs)
        print(
            f"[trace: {runs} run(s), {len(written)} file(s) -> "
            f"{trace_session.directory}]"
        )
    return 0


def _report_command(directories: list[str]) -> int:
    """``repro report DIR [DIR_B]`` — summarize or diff trace output.

    A single *file* argument is treated as a saved controller
    (``pipeline.persist``): its slice certificate is rendered instead.
    """
    if not 1 <= len(directories) <= 2:
        print(
            "usage: repro report TRACE_DIR [TRACE_DIR_B | CONTROLLER.json]",
            file=sys.stderr,
        )
        return 2
    try:
        if len(directories) == 1:
            path = pathlib.Path(directories[0])
            if path.is_file():
                print(_controller_certificate_report(path))
            else:
                print(summarize_directory(directories[0]))
        else:
            print(diff_directories(directories[0], directories[1]))
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _controller_certificate_report(path: pathlib.Path) -> str:
    """Render the slice certificate stored in a saved controller file."""
    from repro.programs.analysis import SliceCertificate

    payload = json.loads(path.read_text())
    app = payload.get("app_name", "?")
    data = payload.get("certificate")
    if data is None:
        return (
            f"controller {app!r} ({path}): no slice certificate "
            "(pipeline ran with certify='off' or a pre-certifier format)"
        )
    cert = SliceCertificate.from_dict(data)
    return f"controller {app!r} ({path})\n" + _render_certificate(cert)


def _render_certificate(cert) -> str:
    """Human-readable summary of one SliceCertificate."""
    bound = cert.cost_bound_instructions
    bound_txt = f"{bound:,.0f} instr" if math.isfinite(bound) else "unbounded"
    if not cert.cost_bound_tight:
        bound_txt += " (loose)"
    lines = [
        f"slice {cert.program_name!r}: "
        + ("CERTIFIED" if cert.certified else "NOT CERTIFIED"),
        f"  passes:           {', '.join(cert.passes)}",
        f"  side-effect free: {cert.side_effect_free}"
        + (
            f" (writes: {', '.join(cert.writes_globals)})"
            if cert.writes_globals
            else ""
        ),
        f"  coverage:         "
        + (
            f"ok ({len(cert.covered_sites)} site(s))"
            if cert.coverage_ok
            else "INCOMPLETE"
        ),
        f"  static cost bound: {bound_txt}, "
        f"{cert.cost_bound_mem_refs:,.0f} mem refs",
    ]
    if cert.diagnostics:
        lines.append(f"  findings ({len(cert.diagnostics)}):")
        lines += [f"    {d.format()}" for d in cert.diagnostics]
    else:
        lines.append("  findings: none")
    return "\n".join(lines)


def _check_command(argv: list[str]) -> int:
    """``repro check`` — run the slice certifier over workloads."""
    from repro.pipeline.config import PipelineConfig
    from repro.pipeline.offline import build_controller
    from repro.workloads.registry import app_names, get_app

    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Train each workload's controller and run the slice certifier "
            "over the resulting prediction slice: side-effect purity "
            "(§3.2), model-feature coverage, dropped-definition hazards, "
            "and a static worst-case cost bound."
        ),
    )
    parser.add_argument(
        "apps", nargs="*", help="workloads to certify (default: all)"
    )
    parser.add_argument(
        "--all-workloads",
        action="store_true",
        help="certify every registered workload",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any unwaived error-severity finding remains",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write all certificates (with diagnostics) as JSON to FILE",
    )
    parser.add_argument(
        "--profile-jobs",
        type=int,
        default=80,
        help="profiling jobs per app (smaller = faster check)",
    )
    args = parser.parse_args(argv)

    names = list(args.apps)
    if args.all_workloads or not names:
        names = list(app_names())
    unknown = [n for n in names if n not in app_names()]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    # certify="warn": the check itself is the reporting mechanism, so
    # build_controller must not raise before we can print the findings.
    config = PipelineConfig(
        certify="warn",
        n_profile_jobs=args.profile_jobs,
        switch_samples=2,
    )
    certificates = {}
    failed: list[str] = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in names:
            controller = build_controller(get_app(name), config=config)
            cert = controller.certificate
            assert cert is not None
            certificates[name] = cert
            if not cert.certified:
                failed.append(name)
            print(f"== {name}")
            print(_render_certificate(cert))
            print()

    print(
        f"{len(names) - len(failed)}/{len(names)} workload slice(s) "
        "certified"
        + (f"; NOT certified: {', '.join(failed)}" if failed else "")
    )
    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(
                {name: cert.as_dict() for name, cert in certificates.items()},
                indent=2,
            )
        )
        print(f"[certificates -> {out}]")
    if args.strict and failed:
        return 1
    return 0


def _jsonable(value):
    """Recursively convert an experiment result to JSON-safe types.

    Handles nested dataclasses, numpy scalars and arrays (via their
    ``tolist`` duck type, so numpy need not be imported here), enums,
    sets, and non-finite floats (NaN/inf become null).  Anything else
    falls back to ``str`` as a last resort.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if value is None or isinstance(value, (bool, int, str)):
        return value
    # numpy scalars and arrays both expose tolist(); the result is plain
    # Python (possibly nested lists / non-finite floats), so recurse.
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(tolist())
    return str(value)


def _result_json(result) -> str:
    """Strict JSON for an experiment result dataclass (round-trippable:
    no NaN tokens, no stringified numpy scalars)."""
    return json.dumps(_jsonable(result), allow_nan=False)


if __name__ == "__main__":
    sys.exit(main())
