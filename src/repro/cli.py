"""Command-line interface: reproduce any table or figure from a shell.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro table2               # one experiment
    python -m repro fig15 fig21          # several
    python -m repro all                  # everything (minutes)
    python -m repro fig16 --app sha      # figure-specific options
    python -m repro drift --trace DIR    # + Chrome traces/telemetry in DIR
    python -m repro report DIR           # summarize a trace directory
    python -m repro report DIR_A DIR_B   # diff two trace directories
                                         # (exit 1 on metric regressions)
    python -m repro report DIR --gate BENCH_slo_baseline.json
                                         # CI gate vs a committed baseline
    python -m repro report ctrl.json     # show a saved controller's
                                         # slice certificate
    python -m repro watch rijndael --drift 1.5
                                         # live SLO dashboard over a run
                                         # (exit 1 on SLO violation)
    python -m repro check --all-workloads --strict
                                         # certify every workload's slice
    python -m repro lint --all-workloads --strict
                                         # static analyses + report-only
                                         # IR optimizer over workloads
    python -m repro explain DIR --job 17 # why the governor chose that
                                         # frequency for job 17
    python -m repro replay DIR ctrl.json # re-derive every decision from
                                         # the trace (exit 1 on mismatch)
    python -m repro diff-decisions DIR_A DIR_B
                                         # ranked decision divergences
    python -m repro profile rijndael     # host-side profile of the
                                         # simulator itself: phase table,
                                         # flamegraph, hotspots
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import math
import pathlib
import sys
import time
import warnings
from typing import Callable

from repro.analysis.harness import Lab
from repro.analysis import experiments as exp
from repro.telemetry import TraceSession, summarize_directory

__all__ = ["main"]

_EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "table2": ("Job-time statistics at fmax", exp.table2_job_stats),
    "fig2": ("ldecode per-job time trace", exp.fig02_trace),
    "fig3": ("PID expected-vs-actual lag", exp.fig03_pid_lag),
    "fig9": ("Execution time vs 1/frequency", exp.fig09_linearity),
    "fig11": ("DVFS switch-time matrix", exp.fig11_switching),
    "fig15": ("Energy and misses, 4 governors x 8 apps", exp.fig15_energy_misses),
    "fig16": ("Budget sweep", exp.fig16_budget_sweep),
    "fig17": ("Predictor and switch overheads", exp.fig17_overheads),
    "fig18": ("Limit study (overheads removed, oracle)", exp.fig18_limit_study),
    "fig19": ("Prediction-error box plots", exp.fig19_prediction_error),
    "fig20": ("Under-predict penalty sweep", exp.fig20_alpha_sweep),
    "fig21": ("Idling between jobs", exp.fig21_idling),
    "breakdown": ("Energy by activity (extra)", exp.energy_breakdown),
    "drift": ("Mid-run drift: adaptation vs frozen (extra)",
              exp.drift_adaptation),
    "robustness": ("Headline across seeds (extra)", exp.robustness),
    "crossplatform": ("Feature stability across platforms (§4.2)",
                      exp.cross_platform),
}

_ALIASES = {f"fig0{n}": f"fig{n}" for n in (2, 3, 9)}


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for name, (description, _) in _EXPERIMENTS.items():
        lines.append(f"  {name:8s} {description}")
    lines.append("  all      run everything above")
    lines.append("  report   summarize/diff/gate trace directories, or show "
                 "a saved controller's certificate (repro report --help)")
    lines.append("  watch    run one workload under the SLO watchdog with a "
                 "live dashboard (repro watch --help)")
    lines.append("  check    run the slice certifier over workloads "
                 "(repro check --help)")
    lines.append("  lint     static analyses plus the report-only IR "
                 "optimizer over workload programs (repro lint --help)")
    lines.append("  explain  attribute one recorded frequency decision to "
                 "its features (repro explain --help)")
    lines.append("  replay   re-derive a trace's decisions offline, verify "
                 "bit-exact (repro replay --help)")
    lines.append("  diff-decisions  classify decision divergences between "
                 "two traces (repro diff-decisions --help)")
    lines.append("  profile  host-side performance profile of the simulator "
                 "itself: phase timings, flamegraph, hotspot table "
                 "(repro profile --help)")
    lines.append("  energy   conservation-checked per-job/phase/OPP energy "
                 "attribution with a live savings estimate "
                 "(repro energy --help)")
    lines.append("  ablate   component-importance matrix: disable each "
                 "mechanism, rank by measured consequence "
                 "(repro ablate --help)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "check":
        # Dispatch before the experiment parser sees check's own flags.
        return _check_command(raw[1:])
    if raw and raw[0] == "lint":
        return _lint_command(raw[1:])
    if raw and raw[0] == "watch":
        return _watch_command(raw[1:])
    if raw and raw[0] == "report":
        return _report_command(raw[1:])
    if raw and raw[0] == "explain":
        return _explain_command(raw[1:])
    if raw and raw[0] == "replay":
        return _replay_command(raw[1:])
    if raw and raw[0] == "diff-decisions":
        return _diff_decisions_command(raw[1:])
    if raw and raw[0] == "profile":
        return _profile_command(raw[1:])
    if raw and raw[0] == "energy":
        return _energy_command(raw[1:])
    if raw and raw[0] == "fleet":
        from repro.fleet.cli import fleet_command

        return fleet_command(raw[1:])
    if raw and raw[0] == "ablate":
        from repro.ablation.cli import ablate_command

        return ablate_command(raw[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures from 'Prediction-Guided "
            "Performance-Energy Trade-off for Interactive Applications' "
            "(MICRO 2015) on the simulated platform."
        ),
        epilog=_list_experiments(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see list below), 'list', or 'all'",
    )
    parser.add_argument(
        "--app",
        default=None,
        help="app for single-app figures (fig2, fig3, fig9, fig16, "
        "fig20, drift)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="override jobs per run"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="base evaluation seed"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.02, help="timing-noise sigma"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write each experiment's table (<name>.txt) and raw "
        "result (<name>.json) into DIR",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="record run telemetry into DIR: per-run Chrome trace JSON "
        "(open in ui.perfetto.dev), JSONL event streams, decision audit "
        "logs, metrics dumps, and text reports",
    )
    args = parser.parse_args(raw)

    requested = [_ALIASES.get(e, e) for e in args.experiments]
    if "list" in requested:
        print(_list_experiments())
        return 0
    if "all" in requested:
        requested = list(_EXPERIMENTS)
    unknown = [e for e in requested if e not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}\n", file=sys.stderr)
        print(_list_experiments(), file=sys.stderr)
        return 2

    output_dir = None
    if args.output is not None:
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    trace_session = None
    if args.trace is not None:
        trace_session = TraceSession(args.trace)

    lab = Lab(
        jitter_sigma=args.jitter, seed=args.seed, trace_session=trace_session
    )
    for name in requested:
        _, module = _EXPERIMENTS[name]
        kwargs = {}
        if args.jobs is not None:
            kwargs["n_jobs"] = args.jobs
        if args.app is not None and name in (
            "fig2", "fig3", "fig9", "fig16", "fig20", "drift"
        ):
            key = "app" if name == "fig2" else "app_name"
            kwargs[key] = args.app
        started = time.time()
        result = module.run(lab, **kwargs)
        rendered = module.render(result)
        print(rendered)
        print(f"[{name} took {time.time() - started:.1f}s]\n")
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(rendered + "\n")
            (output_dir / f"{name}.json").write_text(_result_json(result))
    if trace_session is not None:
        written = trace_session.flush()
        runs = len(trace_session.runs)
        print(
            f"[trace: {runs} run(s), {len(written)} file(s) -> "
            f"{trace_session.directory}]"
        )
    return 0


def _report_command(argv: list[str]) -> int:
    """``repro report`` — summarize, diff, or gate trace output.

    A single *file* argument is treated as a saved controller
    (``pipeline.persist``): its slice certificate is rendered instead.
    Exit codes: 0 clean, 1 regression/gate failure, 2 usage or missing
    input.
    """
    from repro.telemetry.report import (
        compare_directories,
        gate_directory,
        make_baseline,
    )

    parser = argparse.ArgumentParser(
        prog="repro report",
        description=(
            "Summarize one trace directory, diff two (exit 1 when any "
            "metric regresses beyond tolerance), gate one against a "
            "committed metrics baseline, or render a saved controller's "
            "slice certificate."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="one trace directory (or saved CONTROLLER.json), or two "
        "trace directories to diff",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative movement allowed before a directional metric "
        "counts as a regression (diff default 0.05; gate default: the "
        "baseline file's recorded tolerance)",
    )
    parser.add_argument(
        "--gate",
        default=None,
        metavar="BASELINE.json",
        help="hold the trace directory to this committed metrics "
        "baseline; exit 1 on any violation",
    )
    parser.add_argument(
        "--make-baseline",
        default=None,
        metavar="FILE",
        help="snapshot the trace directory's gated metrics as a new "
        "baseline JSON at FILE",
    )
    parser.add_argument(
        "--runs",
        default=None,
        metavar="PREFIX",
        help="only consider runs whose name starts with PREFIX (e.g. "
        "'watch.', 'fleet.', or 'host.') — applies to summaries, "
        "two-directory diffs, and --gate alike, so one trace directory "
        "or committed baseline can serve several CI jobs",
    )
    parser.add_argument(
        "--openmetrics",
        default=None,
        metavar="FILE",
        help="also export the trace directory's metrics (after --runs "
        "filtering) as OpenMetrics/Prometheus text to FILE",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the rendered report/diff/gate text to FILE",
    )
    try:
        args = parser.parse_args(argv)
        if len(args.paths) > 2 or (
            len(args.paths) == 2 and (args.gate or args.make_baseline)
        ):
            parser.error(
                "--gate/--make-baseline take exactly one TRACE_DIR; "
                "diffs take exactly two"
            )
    except SystemExit as error:
        # Argparse exits; the CLI contract is to *return* the code so
        # main() stays embeddable (tests call it in-process).
        return int(error.code or 0)

    exit_code = 0
    try:
        if len(args.paths) == 2:
            tolerance = args.tolerance if args.tolerance is not None else 0.05
            diff = compare_directories(
                args.paths[0],
                args.paths[1],
                tolerance=tolerance,
                runs=args.runs,
            )
            text = diff.text
            if diff.regressions:
                exit_code = 1
        else:
            path = pathlib.Path(args.paths[0])
            if path.is_file():
                text = _controller_certificate_report(path)
            elif args.gate is not None:
                baseline = json.loads(pathlib.Path(args.gate).read_text())
                gate = gate_directory(
                    path, baseline, tolerance=args.tolerance, runs=args.runs
                )
                text = gate.text
                if not gate.passed:
                    exit_code = 1
            elif args.make_baseline is not None:
                baseline = make_baseline(path)
                if args.tolerance is not None:
                    baseline["tolerance"] = args.tolerance
                out = pathlib.Path(args.make_baseline)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(json.dumps(baseline, indent=2) + "\n")
                text = (
                    f"baseline: {sum(len(m) for m in baseline['runs'].values())}"
                    f" metric(s) over {len(baseline['runs'])} run(s) -> {out}"
                )
            else:
                text = summarize_directory(path, runs=args.runs)
        if args.openmetrics is not None:
            if len(args.paths) != 1 or pathlib.Path(args.paths[0]).is_file():
                print(
                    "--openmetrics takes exactly one trace directory",
                    file=sys.stderr,
                )
                return 2
            from repro.telemetry.openmetrics import openmetrics_directory

            out = pathlib.Path(args.openmetrics)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(
                openmetrics_directory(args.paths[0], runs=args.runs)
            )
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(text)
    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    return exit_code


def _watch_command(argv: list[str]) -> int:
    """``repro watch APP`` — run one workload under the SLO watchdog.

    The run always records telemetry (the watchdog is an event-stream
    consumer); a live dashboard repaints as jobs complete.  Exit code 1
    when any page-severity SLO alert fired, else 0.
    """
    import zlib

    from repro.online.inject import StepDriftJitter
    from repro.platform.board import Board
    from repro.platform.jitter import LogNormalJitter, NoJitter
    from repro.platform.switching import SwitchLatencyModel
    from repro.runtime.executor import TaskLoopRunner
    from repro.telemetry import Telemetry, Watchdog, WatchdogConfig
    from repro.telemetry.slo import default_slos, specs_from_json
    from repro.telemetry.watch import render_dashboard
    from repro.workloads.registry import app_names

    parser = argparse.ArgumentParser(
        prog="repro watch",
        description=(
            "Run one workload under a governor with the SLO watchdog "
            "attached: error-budget burn-rate alerts, streaming anomaly "
            "detectors, and a live terminal dashboard.  Exits non-zero "
            "when a page-severity SLO alert fires."
        ),
    )
    parser.add_argument("app", help="workload to run (see repro list)")
    parser.add_argument(
        "--governor",
        default="prediction",
        help="governor name (default: prediction)",
    )
    parser.add_argument(
        "--jobs", type=int, default=240, help="jobs in the run"
    )
    parser.add_argument(
        "--drift",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="inject a mid-run execution-time slowdown by FACTOR "
        "(1.0 = no drift)",
    )
    parser.add_argument(
        "--drift-at",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="where the drift shift lands, as a fraction of the run",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="base evaluation seed"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.02, help="timing-noise sigma"
    )
    parser.add_argument(
        "--refresh",
        type=int,
        default=10,
        metavar="N",
        help="repaint the dashboard every N jobs",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live dashboard (final frame only)",
    )
    parser.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help="JSON file of SloSpec definitions (default: the built-in "
        "suite scaled to the app's budget)",
    )
    parser.add_argument(
        "--max-energy-j",
        type=float,
        default=None,
        metavar="J",
        help="add an energy-per-job SLO with this cap (joules)",
    )
    parser.add_argument(
        "--arm-fallback",
        action="store_true",
        help="let a page-severity alert force an adaptive governor into "
        "its deadline-safe fallback mode",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="also write the run's full telemetry artifacts into DIR "
        "(the directory `repro report --gate` consumes)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    if args.app not in app_names():
        print(f"unknown workload: {args.app}", file=sys.stderr)
        return 2
    if not 0.0 < args.drift_at < 1.0:
        print("--drift-at must be strictly inside (0, 1)", file=sys.stderr)
        return 2

    trace_session = (
        TraceSession(args.trace) if args.trace is not None else None
    )
    lab = Lab(
        jitter_sigma=args.jitter, seed=args.seed, trace_session=trace_session
    )
    app = lab.app(args.app)
    governor = lab.make_governor(args.governor, args.app)
    inputs = app.inputs(args.jobs, seed=lab.seed + 11)

    run_name = f"watch.{args.app}.{args.governor}"
    if trace_session is not None:
        telemetry = trace_session.telemetry_for(run_name)
    else:
        telemetry = Telemetry(name=run_name)

    if args.slo is not None:
        specs = specs_from_json(pathlib.Path(args.slo).read_text())
    else:
        specs = default_slos(
            budget_s=app.task.budget_s,
            max_energy_per_job_j=args.max_energy_j,
        )

    # Deterministic per-(app, governor) seeding, stable across processes,
    # so a committed gate baseline reproduces in CI.
    run_seed = zlib.crc32(
        f"{lab.seed}|watch|{args.app}|{args.governor}".encode()
    )
    base = (
        LogNormalJitter(lab.jitter_sigma, seed=run_seed)
        if lab.jitter_sigma > 0
        else NoJitter()
    )
    board = Board(
        opps=lab.opps,
        power=lab.power,
        switcher=SwitchLatencyModel(lab.opps, seed=run_seed),
    )
    if args.drift != 1.0:
        shift_job = int(args.jobs * args.drift_at)
        board.cpu.jitter = StepDriftJitter(
            base,
            args.drift,
            shift_at_s=shift_job * app.task.budget_s,
            clock=lambda: board.now,
        )
    else:
        board.cpu.jitter = base

    live = not args.quiet and sys.stdout.isatty()
    frame_lines = 0

    def repaint(watchdog, obs) -> None:
        nonlocal frame_lines
        if args.quiet or watchdog.jobs % args.refresh:
            return
        frame = render_dashboard(watchdog.status(), title=run_name)
        if live and frame_lines:
            # Rewind over the previous frame for an in-place repaint.
            sys.stdout.write(f"\x1b[{frame_lines}F\x1b[J")
        print(frame, flush=True)
        frame_lines = frame.count("\n") + 1

    watchdog = Watchdog(
        specs=specs,
        config=WatchdogConfig(arm_fallback=args.arm_fallback),
        governor=governor,
        telemetry=telemetry,
        on_observation=repaint,
    )
    watchdog.attach(telemetry)

    runner = TaskLoopRunner(
        board=board,
        task=app.task,
        governor=governor,
        inputs=inputs,
        interpreter=lab.interpreter,
        telemetry=telemetry,
    )
    result = runner.run()

    status = watchdog.status()
    final = render_dashboard(status, title=f"{run_name} (final)")
    if live and frame_lines:
        sys.stdout.write(f"\x1b[{frame_lines}F\x1b[J")
    print(final)
    print(
        f"\nrun: {result.n_jobs} jobs, {result.n_missed} missed "
        f"({100 * result.miss_rate:.1f}%), {result.energy_j:.3f} J"
    )
    for alert in watchdog.alerts:
        print(f"SLO ALERT [{alert.severity}] {alert.message}")
    for anomaly in watchdog.anomalies[:10]:
        print(f"anomaly [{anomaly.kind}] {anomaly.message}")
    if len(watchdog.anomalies) > 10:
        print(f"... and {len(watchdog.anomalies) - 10} more anomalies")

    if trace_session is not None:
        written = trace_session.flush()
        print(f"[trace: {len(written)} file(s) -> {trace_session.directory}]")

    if watchdog.violated:
        print("\nSLO VIOLATED (page-severity alert fired)", file=sys.stderr)
        return 1
    return 0


def _select_runs(path: str, run: str | None) -> tuple[dict, list[str]]:
    """Load decision logs under ``path``, optionally filtered to one run."""
    from repro.telemetry.provenance import load_run_decisions

    runs, warnings = load_run_decisions(path)
    if run is not None:
        if run not in runs:
            raise FileNotFoundError(
                f"run {run!r} not found under {path} "
                f"(available: {', '.join(sorted(runs)) or 'none'})"
            )
        runs = {run: runs[run]}
    return runs, warnings


def _explain_command(argv: list[str]) -> int:
    """``repro explain`` — attribute recorded decisions to their inputs.

    Without ``--job``, prints a per-run provenance summary; with it, the
    full attribution block (per-feature contributions, DVFS terms, and
    the frequency ladder) for that job.  Exit codes: 0 ok, 2 missing
    input or job.
    """
    from repro.telemetry.provenance import render_explanation, result_json

    parser = argparse.ArgumentParser(
        prog="repro explain",
        description=(
            "Explain recorded governor decisions from a trace directory "
            "(or one *.decisions.jsonl file): per-feature contributions "
            "to the predicted time, the fitted DVFS terms, and the "
            "per-OPP accept/reject ladder."
        ),
    )
    parser.add_argument(
        "trace", help="trace directory (from --trace) or a decisions file"
    )
    parser.add_argument(
        "--job", type=int, default=None, help="explain this job index only"
    )
    parser.add_argument(
        "--run",
        default=None,
        metavar="NAME",
        help="restrict to one run name (needed with --job when the "
        "directory holds several runs)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the records as strict JSON instead of text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    try:
        runs, warnings = _select_runs(args.trace, args.run)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)

    if args.job is not None:
        if len(runs) != 1:
            print(
                "--job needs a single run; pick one with --run "
                f"(available: {', '.join(sorted(runs))})",
                file=sys.stderr,
            )
            return 2
        ((name, records),) = runs.items()
        matches = [r for r in records if r.job_index == args.job]
        if not matches:
            print(
                f"job {args.job} has no decision record in run {name!r}",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(result_json([r.as_dict() for r in matches]))
        else:
            for record in matches:
                print(f"run: {name}")
                print(render_explanation(record))
        return 0

    if args.json:
        payload = {
            name: [r.as_dict() for r in records]
            for name, records in runs.items()
        }
        print(result_json(payload))
        return 0
    for name, records in runs.items():
        attributed = [r for r in records if r.attribution is not None]
        modes: dict[str, int] = {}
        for record in records:
            modes[record.mode or "default"] = (
                modes.get(record.mode or "default", 0) + 1
            )
        mode_text = ", ".join(f"{m}:{c}" for m, c in sorted(modes.items()))
        print(
            f"{name}: {len(records)} decisions, {len(attributed)} with "
            f"attribution (modes {mode_text or 'n/a'})"
        )
        if attributed:
            print(
                f"  explain one with: repro explain {args.trace} "
                f"--run {name} --job {attributed[0].job_index}"
            )
    return 0


def _replay_command(argv: list[str]) -> int:
    """``repro replay`` — re-derive every decision, verify bit-exact.

    Exit codes: 0 all replayed decisions agree bit-exactly (or a
    counterfactual knob was set), 1 any mismatch, 2 missing input.
    """
    from repro.pipeline.persist import load_controller
    from repro.telemetry.provenance import (
        beta_from_controller_payload,
        render_replay,
        replay_records,
        result_json,
    )

    parser = argparse.ArgumentParser(
        prog="repro replay",
        description=(
            "Reconstruct every recorded governor decision from a trace "
            "plus a persisted controller — no workload re-execution — "
            "and verify bit-exact agreement.  --margin/--budget/--beta "
            "re-score the trace under a hypothetical controller instead."
        ),
    )
    parser.add_argument(
        "trace", help="trace directory (from --trace) or a decisions file"
    )
    parser.add_argument(
        "controller", help="saved controller JSON (pipeline.persist)"
    )
    parser.add_argument(
        "--run", default=None, metavar="NAME", help="replay one run only"
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=None,
        help="counterfactual: replay with this safety margin",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="counterfactual: replay as if jobs had this budget",
    )
    parser.add_argument(
        "--beta",
        default=None,
        metavar="FILE",
        help="counterfactual: replay with the anchor coefficients from "
        "this controller JSON",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit strict JSON results"
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE", help="also write to FILE"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    try:
        controller = load_controller(args.controller)
        runs, warnings = _select_runs(args.trace, args.run)
        beta = None
        if args.beta is not None:
            beta = beta_from_controller_payload(
                json.loads(pathlib.Path(args.beta).read_text())
            )
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)

    results = [
        replay_records(
            records,
            controller.dvfs,
            run=name,
            margin=args.margin,
            budget=args.budget,
            beta=beta,
        )
        for name, records in runs.items()
    ]
    if args.json:
        text = result_json([result.as_dict() for result in results])
    else:
        text = "\n\n".join(render_replay(result) for result in results)
    print(text)
    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    mismatched = any(
        not result.counterfactual and result.mismatches for result in results
    )
    return 1 if mismatched else 0


def _diff_decisions_command(argv: list[str]) -> int:
    """``repro diff-decisions`` — classify divergences between two traces.

    Exit codes: 0 ok (including divergences found — diffing is a
    reporting tool), 2 missing input or no shared runs.
    """
    from repro.telemetry.provenance import (
        diff_decisions,
        render_diff,
        result_json,
    )

    parser = argparse.ArgumentParser(
        prog="repro diff-decisions",
        description=(
            "Align two traces' decision streams by job id, classify each "
            "divergence (feature drift vs beta change vs margin/budget "
            "change vs switch-time), and print a ranked report."
        ),
    )
    parser.add_argument("trace_a", help="first trace directory or file")
    parser.add_argument("trace_b", help="second trace directory or file")
    parser.add_argument(
        "--run", default=None, metavar="NAME", help="diff one run name only"
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=25,
        help="divergences listed in the text report",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit strict JSON results"
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE", help="also write to FILE"
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    try:
        runs_a, warnings_a = _select_runs(args.trace_a, args.run)
        runs_b, warnings_b = _select_runs(args.trace_b, args.run)
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    for warning in warnings_a + warnings_b:
        print(f"warning: {warning}", file=sys.stderr)

    shared = sorted(runs_a.keys() & runs_b.keys())
    if not shared:
        print(
            "no run names shared between the two traces "
            f"(A: {', '.join(sorted(runs_a)) or 'none'}; "
            f"B: {', '.join(sorted(runs_b)) or 'none'})",
            file=sys.stderr,
        )
        return 2
    diffs = [
        diff_decisions(runs_a[name], runs_b[name], run=name)
        for name in shared
    ]
    if args.json:
        text = result_json([diff.as_dict() for diff in diffs])
    else:
        text = "\n\n".join(
            render_diff(diff, limit=args.limit) for diff in diffs
        )
    print(text)
    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
    return 0


def _profile_command(argv: list[str]) -> int:
    """``repro profile APP`` — profile the *simulator's* host performance.

    Runs one workload under a governor with telemetry off (so the
    numbers describe the hot path a production run pays) and the host
    profiler on: phase-scoped wall-time accounting plus a statistical
    stack sampler.  Writes ``host.<app>.<governor>.{hostprof.json,
    flame.txt,hotspots.json,metrics.json}`` into ``--out`` — the
    metrics file feeds ``repro report --gate BENCH_host_baseline.json
    --runs host.``.  Exit codes: 0 ok, 2 bad input.
    """
    import zlib

    from repro.pipeline.config import PipelineConfig
    from repro.platform.board import Board
    from repro.platform.jitter import LogNormalJitter, NoJitter
    from repro.platform.switching import SwitchLatencyModel
    from repro.runtime.executor import TaskLoopRunner
    from repro.telemetry.hostprof import (
        HostProfiler,
        StackSampler,
        hotspots,
        render_hotspots,
        render_profile,
        write_host_profile,
    )
    from repro.workloads.registry import app_names

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Host-side performance profile of the simulator itself: "
            "phase-scoped wall-time accounting (interpreter, governor "
            "decision, switch, bookkeeping), host jobs/sec, a collapsed-"
            "stack flamegraph, and a top-N hotspot table attributed to "
            "components and IR ops.  This measures the *host* cost of "
            "simulating — the instrument behind the ROADMAP hot-path "
            "speedup work — not the simulated platform."
        ),
    )
    parser.add_argument("app", help="workload to profile (see repro list)")
    parser.add_argument(
        "--governor",
        default="prediction",
        help="governor name (default: prediction)",
    )
    parser.add_argument(
        "--jobs", type=int, default=400, help="jobs in the profiled run"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="base evaluation seed"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.02, help="timing-noise sigma"
    )
    parser.add_argument(
        "--profile-jobs",
        type=int,
        default=60,
        help="jobs profiled per app when training the controller "
        "(smaller = faster setup; does not affect the measured run)",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        default=64,
        metavar="N",
        help="stack-sample every Nth Python call (0 disables the "
        "sampler; phase timers still run)",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="hotspot table length"
    )
    parser.add_argument(
        "--out",
        default="profile-out",
        metavar="DIR",
        help="artifact directory (default: profile-out)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the profile as strict JSON instead of text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    if args.app not in app_names():
        print(f"unknown workload: {args.app}", file=sys.stderr)
        return 2
    if args.jobs < 1 or args.sample_interval < 0:
        print("--jobs must be >= 1 and --sample-interval >= 0",
              file=sys.stderr)
        return 2

    lab = Lab(
        jitter_sigma=args.jitter,
        seed=args.seed,
        pipeline_config=PipelineConfig(n_profile_jobs=args.profile_jobs),
    )
    app = lab.app(args.app)
    governor = lab.make_governor(args.governor, args.app)
    inputs = app.inputs(args.jobs, seed=lab.seed + 11)

    # Same deterministic seeding scheme as `repro watch`, so the
    # *simulated* run underneath the profile reproduces exactly; only
    # the host timings vary run to run.
    run_seed = zlib.crc32(
        f"{lab.seed}|profile|{args.app}|{args.governor}".encode()
    )
    board = Board(
        opps=lab.opps,
        power=lab.power,
        switcher=SwitchLatencyModel(lab.opps, seed=run_seed),
    )
    board.cpu.jitter = (
        LogNormalJitter(lab.jitter_sigma, seed=run_seed)
        if lab.jitter_sigma > 0
        else NoJitter()
    )

    sampler = (
        StackSampler(interval=args.sample_interval)
        if args.sample_interval > 0
        else None
    )
    hostprof = HostProfiler(sampler=sampler)
    runner = TaskLoopRunner(
        board=board,
        task=app.task,
        governor=governor,
        inputs=inputs,
        interpreter=lab.interpreter,
        hostprof=hostprof,
    )
    with hostprof.running():
        result = runner.run()
    state = hostprof.state()

    run_name = f"host.{args.app}.{args.governor}"
    written = write_host_profile(
        state, args.out, run_name, top_n=args.top
    )
    if args.json:
        hotspots_path = next(
            p for p in written if p.name.endswith(".hotspots.json")
        )
        print(hotspots_path.read_text(), end="")
    else:
        print(render_profile(state, title=run_name))
        print()
        print(render_hotspots(hotspots(state, top_n=args.top)))
        print(
            f"\nsimulated run underneath: {result.n_jobs} jobs, "
            f"{result.n_missed} missed, {result.energy_j:.3f} J"
        )
    print(
        f"[profile: {len(written)} file(s) -> {args.out}]", file=sys.stderr
    )
    return 0


def _energy_command(argv: list[str]) -> int:
    """``repro energy APP`` — attribute a run's joules, check conservation.

    Runs one workload with the energy ledger subscribed to the board's
    segment stream, prints the per-phase/per-OPP attribution, the top-N
    energy-hungriest jobs, and the live normalized saving vs. the
    embedded performance-governor counterfactual, then verifies the
    conservation invariant (attributed cells == ``board.energy_j()``
    within 1e-9).  ``--trace`` writes ``energy.<app>.<governor>.
    {energy.json,metrics.json}`` — the metrics file feeds ``repro
    report --gate BENCH_energy_baseline.json --runs energy.``.  Exit
    codes: 0 ok, 1 conservation violated, 2 bad input.
    """
    import zlib

    from repro.pipeline.config import PipelineConfig
    from repro.platform.board import Board
    from repro.platform.jitter import LogNormalJitter, NoJitter
    from repro.platform.switching import SwitchLatencyModel
    from repro.runtime.executor import TaskLoopRunner
    from repro.telemetry.energy import (
        CONSERVATION_TOL_J,
        EnergyLedger,
        energy_metrics,
        render_energy,
        render_energy_cells,
        write_energy_report,
    )
    from repro.telemetry.provenance import result_json
    from repro.workloads.registry import app_names

    parser = argparse.ArgumentParser(
        prog="repro energy",
        description=(
            "Energy attribution ledger for one simulated run: splits the "
            "board's exact power-timeline integral into per-job x "
            "per-phase (predict/switch/execute/idle/feedback) x per-OPP "
            "cells, checks the conservation invariant against "
            "board.energy_j(), and reports the normalized saving vs. an "
            "embedded performance-governor counterfactual — the paper's "
            "Fig. 15 headline as a continuously observed metric."
        ),
    )
    parser.add_argument("app", help="workload to attribute (see repro list)")
    parser.add_argument(
        "--governor",
        default="prediction",
        help="governor name (default: prediction)",
    )
    parser.add_argument(
        "--jobs", type=int, default=400, help="jobs in the attributed run"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="base evaluation seed"
    )
    parser.add_argument(
        "--jitter", type=float, default=0.02, help="timing-noise sigma"
    )
    parser.add_argument(
        "--profile-jobs",
        type=int,
        default=60,
        help="jobs profiled per app when training the controller",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="top-N energy-hungriest jobs"
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="write energy.<app>.<governor>.{energy.json,metrics.json} "
        "artifacts into DIR",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the energy state as strict JSON instead of text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)

    if args.app not in app_names():
        print(f"unknown workload: {args.app}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    lab = Lab(
        jitter_sigma=args.jitter,
        seed=args.seed,
        pipeline_config=PipelineConfig(n_profile_jobs=args.profile_jobs),
    )
    app = lab.app(args.app)
    governor = lab.make_governor(args.governor, args.app)
    inputs = app.inputs(args.jobs, seed=lab.seed + 11)

    # Same deterministic seeding scheme as `repro watch`/`repro profile`,
    # so an attributed run reproduces exactly and can be baselined.
    run_seed = zlib.crc32(
        f"{lab.seed}|energy|{args.app}|{args.governor}".encode()
    )
    board = Board(
        opps=lab.opps,
        power=lab.power,
        switcher=SwitchLatencyModel(lab.opps, seed=run_seed),
    )
    board.cpu.jitter = (
        LogNormalJitter(lab.jitter_sigma, seed=run_seed)
        if lab.jitter_sigma > 0
        else NoJitter()
    )

    ledger = EnergyLedger(board.power, board.opps)
    runner = TaskLoopRunner(
        board=board,
        task=app.task,
        governor=governor,
        inputs=inputs,
        interpreter=lab.interpreter,
        energy=ledger,
    )
    result = runner.run()
    error_j = ledger.conservation_error_j(board.energy_j())
    state = ledger.state()
    run_name = f"energy.{args.app}.{args.governor}"

    if args.trace is not None:
        written = write_energy_report(
            ledger, args.trace, run_name,
            conservation_error_j=error_j, top_n=args.top,
        )
        print(
            f"[energy: {len(written)} file(s) -> {args.trace}]",
            file=sys.stderr,
        )
    if args.json:
        print(result_json(energy_metrics(state, error_j)))
    else:
        print(render_energy(state, title=run_name))
        print()
        print(render_energy_cells(ledger, top_n=args.top))
        print(
            f"\nsimulated run underneath: {result.n_jobs} jobs, "
            f"{result.n_missed} missed, {result.energy_j:.3f} J"
        )
        print(f"conservation error: {error_j:.3e} J "
              f"(tolerance {CONSERVATION_TOL_J:.0e})")
    if error_j > CONSERVATION_TOL_J:
        print(
            f"CONSERVATION VIOLATED: attributed energy misses "
            f"board.energy_j() by {error_j:.3e} J",
            file=sys.stderr,
        )
        return 1
    return 0


def _controller_certificate_report(path: pathlib.Path) -> str:
    """Render the slice certificate stored in a saved controller file."""
    from repro.programs.analysis import SliceCertificate

    payload = json.loads(path.read_text())
    app = payload.get("app_name", "?")
    data = payload.get("certificate")
    if data is None:
        return (
            f"controller {app!r} ({path}): no slice certificate "
            "(pipeline ran with certify='off' or a pre-certifier format)"
        )
    cert = SliceCertificate.from_dict(data)
    return f"controller {app!r} ({path})\n" + _render_certificate(cert)


def _render_certificate(cert) -> str:
    """Human-readable summary of one SliceCertificate."""
    bound = cert.cost_bound_instructions
    bound_txt = f"{bound:,.0f} instr" if math.isfinite(bound) else "unbounded"
    if not cert.cost_bound_tight:
        bound_txt += " (loose)"
    lines = [
        f"slice {cert.program_name!r}: "
        + ("CERTIFIED" if cert.certified else "NOT CERTIFIED"),
        f"  passes:           {', '.join(cert.passes)}",
        f"  side-effect free: {cert.side_effect_free}"
        + (
            f" (writes: {', '.join(cert.writes_globals)})"
            if cert.writes_globals
            else ""
        ),
        f"  coverage:         "
        + (
            f"ok ({len(cert.covered_sites)} site(s))"
            if cert.coverage_ok
            else "INCOMPLETE"
        ),
        f"  static cost bound: {bound_txt}, "
        f"{cert.cost_bound_mem_refs:,.0f} mem refs",
    ]
    if cert.diagnostics:
        lines.append(f"  findings ({len(cert.diagnostics)}):")
        lines += [f"    {d.format()}" for d in cert.diagnostics]
    else:
        lines.append("  findings: none")
    return "\n".join(lines)


def _check_command(argv: list[str]) -> int:
    """``repro check`` — run the slice certifier over workloads."""
    from repro.pipeline.config import PipelineConfig
    from repro.pipeline.offline import build_controller
    from repro.workloads.registry import app_names, get_app

    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Train each workload's controller and run the slice certifier "
            "over the resulting prediction slice: side-effect purity "
            "(§3.2), model-feature coverage, dropped-definition hazards, "
            "and a static worst-case cost bound."
        ),
    )
    parser.add_argument(
        "apps", nargs="*", help="workloads to certify (default: all)"
    )
    parser.add_argument(
        "--all-workloads",
        action="store_true",
        help="certify every registered workload",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any unwaived error-severity finding remains",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write all certificates (with diagnostics) as JSON to FILE",
    )
    parser.add_argument(
        "--profile-jobs",
        type=int,
        default=80,
        help="profiling jobs per app (smaller = faster check)",
    )
    args = parser.parse_args(argv)

    names = list(args.apps)
    if args.all_workloads or not names:
        names = list(app_names())
    unknown = [n for n in names if n not in app_names()]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    # certify="warn": the check itself is the reporting mechanism, so
    # build_controller must not raise before we can print the findings.
    config = PipelineConfig(
        certify="warn",
        n_profile_jobs=args.profile_jobs,
        switch_samples=2,
    )
    certificates = {}
    failed: list[str] = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in names:
            controller = build_controller(get_app(name), config=config)
            cert = controller.certificate
            assert cert is not None
            certificates[name] = cert
            if not cert.certified:
                failed.append(name)
            print(f"== {name}")
            print(_render_certificate(cert))
            print()

    print(
        f"{len(names) - len(failed)}/{len(names)} workload slice(s) "
        "certified"
        + (f"; NOT certified: {', '.join(failed)}" if failed else "")
    )
    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(
                {name: cert.as_dict() for name, cert in certificates.items()},
                indent=2,
            )
        )
        print(f"[certificates -> {out}]")
    if args.strict and failed:
        return 1
    return 0


def _lint_one_workload(app, n_sample_jobs: int) -> dict:
    """All lint findings for one workload (see ``_lint_command``).

    Returns a dict with the waived diagnostic list, the optimizer's
    rewrite certificates, and summary counts.  Pure so tests can call
    it without going through argv parsing.
    """
    from repro.pipeline.offline import profiled_input_ranges
    from repro.programs.analysis import (
        Diagnostic,
        apply_suppressions,
        cost_bound,
        dead_store_diagnostics,
        hazard_diagnostics,
    )
    from repro.programs.instrument import Instrumenter
    from repro.programs.opt import optimize_program
    from repro.programs.validate import validate_program

    program = app.task.program
    sample_inputs = app.inputs(n_sample_jobs, seed=0)
    input_names = frozenset().union(
        *(frozenset(job) for job in sample_inputs)
    )
    input_ranges = profiled_input_ranges(sample_inputs, widen=0.5)

    diagnostics: list[Diagnostic] = []
    try:
        validate_program(program, inputs=input_names)
    except ValueError as error:
        diagnostics.append(
            Diagnostic(
                pass_name="validate",
                severity="error",
                site="",
                message=str(error),
                program=app.name,
            )
        )
    diagnostics.extend(
        hazard_diagnostics(
            program, input_names=input_names, program_name=app.name
        )
    )
    diagnostics.extend(dead_store_diagnostics(program, program_name=app.name))
    _, bound_diags = cost_bound(
        program, input_ranges, program_name=app.name
    )
    diagnostics.extend(bound_diags)

    # Report-only optimizer run over both the raw task program and its
    # instrumented form (what the offline pipeline profiles): every kept
    # rewrite carries a validated certificate; a certificate the
    # validator rejected surfaces as an error diagnostic here even
    # though the rewrite itself was already discarded.
    certificates = []
    rewrites = 0
    rejected = 0
    for variant, prog in (
        ("task", program),
        ("instrumented", Instrumenter().instrument(program).program),
    ):
        result = optimize_program(prog, input_ranges=input_ranges)
        diagnostics.extend(result.diagnostics)
        for cert in result.certificates:
            certificates.append({"variant": variant, **cert.as_dict()})
            rewrites += len(cert.rewrites)
            if not cert.ok:
                rejected += 1
        if result.changed:
            diagnostics.append(
                Diagnostic(
                    pass_name="opt",
                    severity="info",
                    site=variant,
                    message=(
                        f"optimizer would rewrite the {variant} program: "
                        f"{result.nodes_before} -> {result.nodes_after} "
                        "nodes (all rewrites translation-validated; "
                        "report-only, nothing was changed)"
                    ),
                    program=app.name,
                )
            )

    diagnostics = apply_suppressions(diagnostics, app.certifier_waivers)
    by_severity = {"error": 0, "warning": 0, "info": 0}
    suppressed = 0
    for diagnostic in diagnostics:
        if diagnostic.suppressed:
            suppressed += 1
        else:
            by_severity[diagnostic.severity] += 1
    return {
        "diagnostics": diagnostics,
        "certificates": certificates,
        "counts": by_severity,
        "suppressed": suppressed,
        "rewrites": rewrites,
        "rejected_certificates": rejected,
    }


def _lint_command(argv: list[str]) -> int:
    """``repro lint`` — static analyses + report-only optimizer."""
    from repro.workloads.registry import app_names, get_app

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Run the static-analysis suite over workload task programs "
            "without training anything: structural validation, "
            "unreachable-read hazards, dead stores, static cost-bound "
            "looseness, plus a report-only pass of the IR optimizer "
            "whose translation validator re-checks every rewrite it "
            "proposes.  Nothing is modified; findings are printed as "
            "diagnostics and (optionally) exported for the CI gate."
        ),
    )
    parser.add_argument(
        "apps", nargs="*", help="workloads to lint (default: all)"
    )
    parser.add_argument(
        "--all-workloads",
        action="store_true",
        help="lint every registered workload",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any unwaived error-severity finding remains",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write all findings and rewrite certificates as JSON to FILE",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help=(
            "write lint.* counters to DIR/lint.all.metrics.json in the "
            "trace-directory schema, so `repro report DIR --gate "
            "BENCH_lint_baseline.json --runs lint.` can gate them"
        ),
    )
    parser.add_argument(
        "--sample-jobs",
        type=int,
        default=40,
        help="input-script jobs sampled per app to seed input ranges",
    )
    args = parser.parse_args(argv)

    names = list(args.apps)
    if args.all_workloads or not names:
        names = list(app_names())
    unknown = [n for n in names if n not in app_names()]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    totals = {"error": 0, "warning": 0, "info": 0}
    suppressed = 0
    rewrites = 0
    rejected = 0
    failed: list[str] = []
    report: dict[str, dict] = {}
    for name in names:
        outcome = _lint_one_workload(get_app(name), args.sample_jobs)
        for severity in totals:
            totals[severity] += outcome["counts"][severity]
        suppressed += outcome["suppressed"]
        rewrites += outcome["rewrites"]
        rejected += outcome["rejected_certificates"]
        if outcome["counts"]["error"]:
            failed.append(name)
        print(f"== {name}")
        if outcome["diagnostics"]:
            for diagnostic in outcome["diagnostics"]:
                print("  " + diagnostic.format())
        else:
            print("  clean")
        print()
        report[name] = {
            "diagnostics": [
                d.as_dict() for d in outcome["diagnostics"]
            ],
            "certificates": outcome["certificates"],
            "counts": outcome["counts"],
            "suppressed": outcome["suppressed"],
        }

    print(
        f"{len(names) - len(failed)}/{len(names)} workload(s) clean; "
        f"{totals['error']} error(s), {totals['warning']} warning(s), "
        f"{totals['info']} info, {suppressed} waived; "
        f"{rewrites} validated rewrite(s) proposed, "
        f"{rejected} certificate(s) rejected"
        + (f"; errors in: {', '.join(failed)}" if failed else "")
    )
    if args.output is not None:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2))
        print(f"[lint report -> {out}]")
    if args.trace is not None:
        trace_dir = pathlib.Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        metrics = {
            "counters": {
                "lint.workloads": float(len(names)),
                "lint.diagnostics.error": float(totals["error"]),
                "lint.diagnostics.warning": float(totals["warning"]),
                "lint.diagnostics.info": float(totals["info"]),
                "lint.diagnostics.suppressed": float(suppressed),
                "lint.opt.rewrites": float(rewrites),
                "lint.opt.rejected_certificates": float(rejected),
            },
            "gauges": {},
            "histograms": {},
        }
        (trace_dir / "lint.all.metrics.json").write_text(
            json.dumps(metrics, indent=2)
        )
        print(f"[lint metrics -> {trace_dir / 'lint.all.metrics.json'}]")
    if args.strict and failed:
        return 1
    return 0


def _jsonable(value):
    """Recursively convert an experiment result to JSON-safe types.

    Handles nested dataclasses, numpy scalars and arrays (via their
    ``tolist`` duck type, so numpy need not be imported here), enums,
    sets, and non-finite floats (NaN/inf become null).  Anything else
    falls back to ``str`` as a last resort.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return _jsonable(value.value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if value is None or isinstance(value, (bool, int, str)):
        return value
    # numpy scalars and arrays both expose tolist(); the result is plain
    # Python (possibly nested lists / non-finite floats), so recurse.
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(tolist())
    return str(value)


def _result_json(result) -> str:
    """Strict JSON for an experiment result dataclass (round-trippable:
    no NaN tokens, no stringified numpy scalars)."""
    return json.dumps(_jsonable(result), allow_nan=False)


if __name__ == "__main__":
    sys.exit(main())
