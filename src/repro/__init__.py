"""repro — Prediction-guided performance-energy trade-off for interactive applications.

A full Python reproduction of Lo, Song & Suh, MICRO 2015: an automated
framework that, given an annotated interactive task, generates a
prediction-based DVFS controller — control-flow feature instrumentation,
program slicing, an asymmetric-Lasso execution-time model, and a
frequency selector that just meets response-time deadlines — plus the
simulated ODROID-XU3-like platform, the baseline governors, the eight
benchmark workloads, and the harness regenerating every table and figure
of the paper's evaluation.

Quick tour::

    from repro.pipeline import build_controller
    from repro.workloads.registry import get_app

    controller = build_controller(get_app("ldecode"))
    governor = controller.governor()          # deploy-ready DVFS policy

    from repro.analysis.harness import Lab
    lab = Lab()
    result = lab.run("ldecode", "prediction")  # simulate 250 frames
    print(lab.normalized_energy(result, "ldecode"), result.miss_rate)

Or from a shell: ``python -m repro fig15``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
