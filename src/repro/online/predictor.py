"""Execution-time predictor whose anchor models learn online.

Mirrors the interface of
:class:`~repro.models.timing.ExecutionTimePredictor` (``predict`` /
``predict_raw`` over :class:`~repro.programs.interpreter.RawFeatures`),
so a :class:`~repro.governors.predictive.PredictiveGovernor` composes it
without knowing the coefficients underneath move.  Encoding and
polynomial expansion are reused from the wrapped offline predictor —
the slice computes the same features either way.

The predictor also remembers the last encoded feature vector and raw
prediction: the adaptive governor reads both after the job completes to
close the feedback loop without re-running the slice.
"""

from __future__ import annotations

import numpy as np

from repro.models.timing import ExecutionTimePredictor, TimePrediction
from repro.online.recalibrate import AdaptiveMargin, OnlineAnchorModel
from repro.programs.interpreter import RawFeatures

__all__ = ["OnlineTimePredictor"]


class OnlineTimePredictor:
    """Anchor-time predictions from online-recalibrated models.

    Args:
        offline: The trained offline predictor (encoder, expansion, and
            warm-start coefficients come from it).
        margin: Adaptive safety margin (replaces the offline fixed one).
        lam: RLS forgetting factor for both anchor models.
        p0: RLS initial covariance scale.
        under_weight: Per-sample weight for under-predicted jobs (the
            online approximation of the paper's asymmetric alpha).
    """

    def __init__(
        self,
        offline: ExecutionTimePredictor,
        margin: AdaptiveMargin | None = None,
        lam: float = 0.98,
        p0: float = 0.05,
        under_weight: float = 25.0,
    ):
        self.offline = offline
        self.encoder = offline.encoder
        self.expansion = offline.expansion
        self.margin = margin if margin is not None else AdaptiveMargin(
            initial=offline.margin
        )
        self.model_fmax = OnlineAnchorModel(
            coef=self._coef(offline.model_fmax.coef_),
            intercept=offline.model_fmax.intercept_,
            lam=lam,
            p0=p0,
            under_weight=under_weight,
        )
        self.model_fmin = OnlineAnchorModel(
            coef=self._coef(offline.model_fmin.coef_),
            intercept=offline.model_fmin.intercept_,
            lam=lam,
            p0=p0,
            under_weight=under_weight,
        )
        self.last_x: np.ndarray | None = None
        self.last_raw: TimePrediction | None = None

    @staticmethod
    def _coef(coef: np.ndarray | None) -> np.ndarray:
        if coef is None:
            raise ValueError("offline anchor models must be fitted")
        return coef

    @property
    def n_features(self) -> int:
        """Length of the (possibly expanded) feature vector."""
        return self.model_fmax.n_features

    @property
    def generation(self) -> int:
        """Recalibration generation: RLS updates absorbed since the
        offline fit (0 = still deciding on offline coefficients).  Both
        anchors update together, so fmax's counter stands for both."""
        return self.model_fmax.n_updates

    def _encode(self, raw: RawFeatures) -> np.ndarray:
        x = self.encoder.encode(raw)
        if self.expansion is not None:
            x = self.expansion.transform_one(x)
        return x

    def model_space(self, raw: RawFeatures) -> np.ndarray:
        """The feature vector the anchor models consume (see
        :meth:`repro.models.timing.ExecutionTimePredictor.model_space`)."""
        return self._encode(raw)

    def predict(self, raw: RawFeatures) -> TimePrediction:
        """Margin-inflated anchor predictions (non-negative), remembering
        the encoded features for the post-job feedback step."""
        x = self._encode(raw)
        prediction = TimePrediction(
            t_fmax_s=max(self.model_fmax.predict_one(x), 0.0),
            t_fmin_s=max(self.model_fmin.predict_one(x), 0.0),
        )
        self.last_x = x
        self.last_raw = prediction
        factor = 1.0 + self.margin.value
        return TimePrediction(
            t_fmax_s=prediction.t_fmax_s * factor,
            t_fmin_s=prediction.t_fmin_s * factor,
        )

    def predict_raw(self, raw: RawFeatures) -> TimePrediction:
        """Predictions without the margin (error analysis)."""
        x = self._encode(raw)
        return TimePrediction(
            t_fmax_s=float(self.model_fmax.predict_one(x)),
            t_fmin_s=float(self.model_fmin.predict_one(x)),
        )

    def observe(
        self, x: np.ndarray, t_fmax_s: float, t_fmin_s: float
    ) -> None:
        """Fold one job's anchor-projected observed times into both models."""
        self.model_fmax.update(x, t_fmax_s)
        self.model_fmin.update(x, t_fmin_s)

    def state_dict(self) -> dict:
        return {
            "model_fmax": self.model_fmax.state_dict(),
            "model_fmin": self.model_fmin.state_dict(),
            "margin": self.margin.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.model_fmax.load_state_dict(state["model_fmax"])
        self.model_fmin.load_state_dict(state["model_fmin"])
        self.margin.load_state_dict(state["margin"])
