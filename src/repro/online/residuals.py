"""Streaming statistics over per-job prediction residuals.

The online feedback loop never stores job history: every statistic here
is O(1) in memory and update cost, so the monitor itself cannot become
an overhead problem at production job rates.

Two primitives back the :class:`ResidualMonitor`:

- :class:`Ewma` — exponentially-weighted moving averages of the signed
  relative residual, its magnitude, and the deadline-miss indicator.
- :class:`P2Quantile` — the Jain & Chlamtac P² algorithm, a five-marker
  streaming quantile estimator.  The monitor tracks an upper quantile of
  the *under-prediction* residual, which is what the adaptive safety
  margin must cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Ewma", "P2Quantile", "ResidualSnapshot", "ResidualMonitor"]


class Ewma:
    """Exponentially-weighted moving average with explicit warm start.

    Attributes:
        alpha: Update weight of the newest sample (0 < alpha <= 1).
        value: Current average; ``None`` until the first update.
    """

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: float | None = None

    def update(self, x: float) -> float:
        """Fold one sample in; returns the new average."""
        if self.value is None:
            self.value = float(x)
        else:
            self.value += self.alpha * (float(x) - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        """Current average, or ``default`` before any update."""
        return default if self.value is None else self.value

    def reset(self) -> None:
        self.value = None

    def state_dict(self) -> dict[str, Any]:
        return {"alpha": self.alpha, "value": self.value}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.alpha = float(state["alpha"])
        value = state["value"]
        self.value = None if value is None else float(value)


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Five markers track the running minimum, the target quantile, the
    midpoints, and the maximum; marker heights are adjusted with a
    piecewise-parabolic interpolation as samples arrive.  Until five
    samples have been seen the estimate falls back to the exact order
    statistic of what was observed.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def update(self, x: float) -> None:
        """Fold one sample into the marker set."""
        x = float(x)
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return

        heights = self._heights
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while x >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            delta = self._desired[i] - self._positions[i]
            below = self._positions[i] - self._positions[i - 1]
            above = self._positions[i + 1] - self._positions[i]
            if (delta >= 1.0 and above > 1.0) or (delta <= -1.0 and below > 1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        pos = self._positions
        h = self._heights
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        j = i + int(step)
        return self._heights[i] + step * (self._heights[j] - self._heights[i]) / (
            self._positions[j] - self._positions[i]
        )

    def get(self, default: float = 0.0) -> float:
        """Current quantile estimate (``default`` before any sample)."""
        if not self._heights:
            return default
        if len(self._heights) < 5:
            rank = self.q * (len(self._heights) - 1)
            low = int(rank)
            high = min(low + 1, len(self._heights) - 1)
            frac = rank - low
            return self._heights[low] * (1 - frac) + self._heights[high] * frac
        return self._heights[2]

    def reset(self) -> None:
        self._heights = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        q = self.q
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._count = 0

    def state_dict(self) -> dict[str, Any]:
        return {
            "q": self.q,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "count": self._count,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.q = float(state["q"])
        self._heights = [float(h) for h in state["heights"]]
        self._positions = [float(p) for p in state["positions"]]
        self._desired = [float(d) for d in state["desired"]]
        self._increments = [
            0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0
        ]
        self._count = int(state["count"])


@dataclass(frozen=True)
class ResidualSnapshot:
    """One read of the monitor's current view of prediction quality.

    Attributes:
        signed_ewma: EWMA of the signed relative residual
            ``(observed - predicted) / predicted`` (positive means the
            model under-predicted).
        abs_ewma: EWMA of the residual magnitude.
        miss_ewma: EWMA of the deadline-miss indicator.
        under_quantile: Streaming upper quantile of the under-prediction
            residual (0 when over-predicting).
        n_samples: Jobs folded in since the last reset.
    """

    signed_ewma: float
    abs_ewma: float
    miss_ewma: float
    under_quantile: float
    n_samples: int


class ResidualMonitor:
    """Tracks how well the deployed model matches observed job times.

    Args:
        ewma_alpha: Smoothing weight for the residual averages.
        miss_alpha: Smoothing weight for the miss-rate average (slower:
            misses are rare events).
        quantile: Which upper quantile of the under-prediction residual
            to track (default 0.95, mirroring the paper's conservative
            95th-percentile switch estimate).
    """

    def __init__(
        self,
        ewma_alpha: float = 0.1,
        miss_alpha: float = 0.05,
        quantile: float = 0.95,
    ):
        self.signed = Ewma(ewma_alpha)
        self.magnitude = Ewma(ewma_alpha)
        self.miss = Ewma(miss_alpha)
        self.under_quantile = P2Quantile(quantile)
        self._n_samples = 0

    def update(self, relative_residual: float, missed: bool) -> None:
        """Fold one job in.

        Args:
            relative_residual: ``(observed - predicted) / predicted`` for
                the job, using the *unmargined* prediction at the
                frequency the job actually ran at.
            missed: Whether the job missed its deadline.
        """
        self.signed.update(relative_residual)
        self.magnitude.update(abs(relative_residual))
        self.miss.update(1.0 if missed else 0.0)
        self.under_quantile.update(max(relative_residual, 0.0))
        self._n_samples += 1

    def snapshot(self) -> ResidualSnapshot:
        return ResidualSnapshot(
            signed_ewma=self.signed.get(),
            abs_ewma=self.magnitude.get(),
            miss_ewma=self.miss.get(),
            under_quantile=self.under_quantile.get(),
            n_samples=self._n_samples,
        )

    def reset(self) -> None:
        self.signed.reset()
        self.magnitude.reset()
        self.miss.reset()
        self.under_quantile.reset()
        self._n_samples = 0

    def state_dict(self) -> dict[str, Any]:
        return {
            "signed": self.signed.state_dict(),
            "magnitude": self.magnitude.state_dict(),
            "miss": self.miss.state_dict(),
            "under_quantile": self.under_quantile.state_dict(),
            "n_samples": self._n_samples,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.signed.load_state_dict(state["signed"])
        self.magnitude.load_state_dict(state["magnitude"])
        self.miss.load_state_dict(state["miss"])
        self.under_quantile.load_state_dict(state["under_quantile"])
        self._n_samples = int(state["n_samples"])
