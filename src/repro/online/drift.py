"""Change detectors over the under-prediction residual stream.

The offline model's failure mode that matters is systematic
*under*-prediction: the governor keeps choosing frequencies that are too
slow and every tight job misses its deadline.  Both detectors here
consume the per-job under-prediction residual (``max(0, relative
residual)``) and raise a flag when its level shifts upward beyond what
the profiled behaviour explains.

:class:`PageHinkleyDetector` is the default (it adapts its own baseline
mean, so a model that always under-predicts by a constant few percent is
not repeatedly re-flagged); :class:`CusumDetector` is the classical
fixed-target alternative for callers that prefer an absolute bound.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

__all__ = [
    "DriftDetector",
    "PageHinkleyDetector",
    "CusumDetector",
    "detector_from_state",
]


class DriftDetector(ABC):
    """Streaming change detector interface."""

    @abstractmethod
    def update(self, x: float) -> bool:
        """Fold one sample in; returns True when drift is flagged."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all history (called when the governor re-engages)."""

    @property
    @abstractmethod
    def statistic(self) -> float:
        """Current test statistic (0 at rest, grows toward the threshold)."""

    @abstractmethod
    def state_dict(self) -> dict[str, Any]: ...

    @abstractmethod
    def load_state_dict(self, state: dict[str, Any]) -> None: ...


class PageHinkleyDetector(DriftDetector):
    """Page–Hinkley test for an upward mean shift.

    Maintains the cumulative deviation of samples from their running
    mean (minus a tolerance ``delta``); drift is flagged when the
    cumulated deviation rises more than ``threshold`` above its running
    minimum.

    Args:
        delta: Magnitude tolerance — mean shifts smaller than this are
            treated as noise.
        threshold: Alarm level for the test statistic (in the same units
            as the samples; residuals here are relative errors).
        min_samples: Samples required before an alarm may fire, so the
            running mean has something to stand on.
    """

    def __init__(
        self,
        delta: float = 0.05,
        threshold: float = 0.4,
        min_samples: int = 8,
    ):
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, x: float) -> bool:
        x = float(x)
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._cumulative += x - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._n < self.min_samples:
            return False
        return self.statistic > self.threshold

    @property
    def statistic(self) -> float:
        return self._cumulative - self._minimum

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": "page-hinkley",
            "delta": self.delta,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "n": self._n,
            "mean": self._mean,
            "cumulative": self._cumulative,
            "minimum": self._minimum,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.delta = float(state["delta"])
        self.threshold = float(state["threshold"])
        self.min_samples = int(state["min_samples"])
        self._n = int(state["n"])
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])


class CusumDetector(DriftDetector):
    """One-sided CUSUM against a fixed acceptable residual level.

    Accumulates ``max(0, g + x - target - slack)``; drift is flagged when
    the accumulator exceeds ``threshold``.  Unlike Page–Hinkley the
    baseline is fixed, so a model that is *chronically* biased beyond
    ``target`` will (correctly, for this variant) keep flagging.
    """

    def __init__(
        self,
        target: float = 0.0,
        slack: float = 0.05,
        threshold: float = 0.4,
        min_samples: int = 8,
    ):
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.target = target
        self.slack = slack
        self.threshold = threshold
        self.min_samples = min_samples
        self._n = 0
        self._g = 0.0

    def update(self, x: float) -> bool:
        self._n += 1
        self._g = max(0.0, self._g + float(x) - self.target - self.slack)
        if self._n < self.min_samples:
            return False
        return self._g > self.threshold

    @property
    def statistic(self) -> float:
        return self._g

    def reset(self) -> None:
        self._n = 0
        self._g = 0.0

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": "cusum",
            "target": self.target,
            "slack": self.slack,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "n": self._n,
            "g": self._g,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.target = float(state["target"])
        self.slack = float(state["slack"])
        self.threshold = float(state["threshold"])
        self.min_samples = int(state["min_samples"])
        self._n = int(state["n"])
        self._g = float(state["g"])


def detector_from_state(state: dict[str, Any]) -> DriftDetector:
    """Rebuild a detector from its :meth:`~DriftDetector.state_dict`."""
    kind = state.get("kind")
    if kind == "page-hinkley":
        detector: DriftDetector = PageHinkleyDetector()
    elif kind == "cusum":
        detector = CusumDetector()
    else:
        raise ValueError(f"unknown drift-detector kind {kind!r}")
    detector.load_state_dict(state)
    return detector
