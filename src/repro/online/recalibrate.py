"""Incremental recalibration of the execution-time model.

The offline pipeline fits the asymmetric Lasso once (paper Fig. 13); at
run time this module keeps those coefficients honest with exponentially
weighted recursive least squares (RLS) on the same slice features.  Two
paper ideas carry over into the online setting:

- The **asymmetric penalty** (paper §3.3) is approximated by per-sample
  weighting: a job the current model under-predicted enters the RLS
  update with weight ``under_weight`` (> 1), so corrections that prevent
  deadline misses happen much faster than corrections that merely save
  energy.  This is the standard iteratively-reweighted view of the
  asymmetric quadratic loss, restricted to one pass because samples
  stream by exactly once.
- The **safety margin** (paper §3.4, fixed at 10%) becomes adaptive:
  :class:`AdaptiveMargin` widens multiplicatively when jobs miss and
  decays slowly toward a floor while the observed miss rate sits below
  target — a classic AIMD loop on the margin knob.

Sparsity is *not* revisited online: the slice was generated from the
offline support, so the online model can only reweight features the
slice still computes.  That is the right trade-off — re-slicing requires
the offline pipeline anyway.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.online.residuals import Ewma

__all__ = ["RecursiveLeastSquares", "OnlineAnchorModel", "AdaptiveMargin"]


class RecursiveLeastSquares:
    """Exponentially-weighted RLS with per-sample observation weights.

    Standard RLS recursion with forgetting factor ``lam``; a sample
    weight ``w`` enters as an effective noise variance of ``1/w``, i.e.
    the gain denominator uses ``lam / w`` — exactly what batch weighted
    least squares with weight ``w`` on that row would do.

    Attributes:
        theta: Current coefficient vector (includes whatever columns the
            caller puts in ``x`` — the anchor model appends an intercept).
        p0: Initial covariance scale.  Small values trust the warm-start
            coefficients; large values let early samples move them fast.
    """

    def __init__(self, theta0: np.ndarray, lam: float = 0.98, p0: float = 0.05):
        if not 0.0 < lam <= 1.0:
            raise ValueError(f"forgetting factor must be in (0, 1], got {lam}")
        if p0 <= 0:
            raise ValueError(f"p0 must be positive, got {p0}")
        self.theta = np.asarray(theta0, dtype=float).copy()
        self.lam = lam
        self.p0 = p0
        self._P = p0 * np.eye(self.theta.shape[0])
        self.n_updates = 0

    def predict(self, x: np.ndarray) -> float:
        return float(np.asarray(x, dtype=float) @ self.theta)

    def update(self, x: np.ndarray, y: float, weight: float = 1.0) -> float:
        """Fold one (x, y) sample in; returns the pre-update residual."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        x = np.asarray(x, dtype=float)
        error = float(y) - float(x @ self.theta)
        px = self._P @ x
        denom = self.lam / weight + float(x @ px)
        gain = px / denom
        self.theta = self.theta + gain * error
        self._P = (self._P - np.outer(gain, px)) / self.lam
        # Symmetrize: the recursion is symmetric in exact arithmetic but
        # floating point slowly breaks it, which can turn P indefinite.
        self._P = 0.5 * (self._P + self._P.T)
        self.n_updates += 1
        return error

    def state_dict(self) -> dict[str, Any]:
        return {
            "theta": self.theta.tolist(),
            "lam": self.lam,
            "p0": self.p0,
            "P": self._P.tolist(),
            "n_updates": self.n_updates,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.theta = np.asarray(state["theta"], dtype=float)
        self.lam = float(state["lam"])
        self.p0 = float(state["p0"])
        self._P = np.asarray(state["P"], dtype=float)
        self.n_updates = int(state["n_updates"])


class OnlineAnchorModel:
    """One anchor-frequency execution-time model, updatable per job.

    Wraps :class:`RecursiveLeastSquares` with the two practical details
    the offline :class:`~repro.models.asymmetric.AsymmetricLassoModel`
    also handles: an intercept column, and per-feature scaling so loop
    counters in the hundreds and 0/1 one-hot columns condition the
    covariance equally.  Scales are frozen on the first update (from that
    sample's magnitudes), keeping the coefficient basis stable.

    Args:
        coef: Warm-start coefficients in original feature units (from the
            offline fit).
        intercept: Warm-start intercept.
        lam: RLS forgetting factor; 0.98 remembers ~50 jobs.
        p0: Initial covariance scale (trust in the offline fit).
        under_weight: Sample weight when the current model under-predicts
            the observed time — the online stand-in for the paper's
            asymmetric penalty alpha.
    """

    def __init__(
        self,
        coef: np.ndarray,
        intercept: float,
        lam: float = 0.98,
        p0: float = 0.05,
        under_weight: float = 25.0,
    ):
        if under_weight < 1.0:
            raise ValueError(
                f"under_weight must be >= 1 (got {under_weight}); values "
                "below 1 would make energy waste more urgent than misses"
            )
        self.offline_coef = np.asarray(coef, dtype=float).copy()
        self.offline_intercept = float(intercept)
        self.lam = lam
        self.p0 = p0
        self.under_weight = under_weight
        self._scales: np.ndarray | None = None
        self._rls: RecursiveLeastSquares | None = None

    @property
    def n_features(self) -> int:
        return int(self.offline_coef.shape[0])

    @property
    def n_updates(self) -> int:
        return 0 if self._rls is None else self._rls.n_updates

    def _design(self, x: np.ndarray) -> np.ndarray:
        assert self._scales is not None
        return np.append(np.asarray(x, dtype=float) / self._scales, 1.0)

    def _ensure_initialized(self, x: np.ndarray) -> None:
        if self._rls is not None:
            return
        x = np.asarray(x, dtype=float)
        self._scales = np.maximum(np.abs(x), 1.0)
        theta0 = np.append(
            self.offline_coef * self._scales, self.offline_intercept
        )
        self._rls = RecursiveLeastSquares(theta0, lam=self.lam, p0=self.p0)

    def snapshot(self) -> dict[str, Any]:
        """The exact coefficients :meth:`predict_one` would use now, as
        a plain dict (shaped like
        :class:`~repro.telemetry.audit.AnchorSnapshot`).  Two kinds
        because the two code paths of :meth:`predict_one` are distinct
        floating-point expressions: ``online-pre`` before the first
        update (warm-start coefficients, 1-D dot) and ``online`` once
        RLS is live (design-space theta over frozen scales)."""
        if self._rls is None:
            return {
                "kind": "online-pre",
                "coef": self.offline_coef.tolist(),
                "intercept": self.offline_intercept,
                "scales": None,
            }
        assert self._scales is not None
        return {
            "kind": "online",
            "coef": self._rls.theta.tolist(),
            "intercept": 0.0,
            "scales": self._scales.tolist(),
        }

    def predict_one(self, x: np.ndarray) -> float:
        """Predicted time for one feature vector (seconds, unmargined)."""
        if self._rls is None:
            return float(
                np.asarray(x, dtype=float) @ self.offline_coef
                + self.offline_intercept
            )
        return self._rls.predict(self._design(x))

    def update(self, x: np.ndarray, observed_s: float) -> float:
        """Fold one observed (features, time) pair in.

        The asymmetric weighting is decided against the *current* model:
        if it under-predicted this job, the sample gets ``under_weight``.
        Returns the pre-update residual (observed - predicted).
        """
        self._ensure_initialized(x)
        assert self._rls is not None
        design = self._design(x)
        residual = float(observed_s) - self._rls.predict(design)
        weight = self.under_weight if residual > 0 else 1.0
        self._rls.update(design, float(observed_s), weight=weight)
        return residual

    def state_dict(self) -> dict[str, Any]:
        return {
            "offline_coef": self.offline_coef.tolist(),
            "offline_intercept": self.offline_intercept,
            "lam": self.lam,
            "p0": self.p0,
            "under_weight": self.under_weight,
            "scales": None if self._scales is None else self._scales.tolist(),
            "rls": None if self._rls is None else self._rls.state_dict(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.offline_coef = np.asarray(state["offline_coef"], dtype=float)
        self.offline_intercept = float(state["offline_intercept"])
        self.lam = float(state["lam"])
        self.p0 = float(state["p0"])
        self.under_weight = float(state["under_weight"])
        scales = state["scales"]
        self._scales = None if scales is None else np.asarray(scales, dtype=float)
        if state["rls"] is None:
            self._rls = None
        else:
            self._rls = RecursiveLeastSquares(
                np.zeros(self.n_features + 1), lam=self.lam, p0=self.p0
            )
            self._rls.load_state_dict(state["rls"])


class AdaptiveMargin:
    """AIMD safety margin driven by the observed miss rate.

    Replaces the paper's fixed 10% inflation (§3.4): every miss widens
    the margin multiplicatively (misses are expensive and must be reacted
    to immediately); while the smoothed miss rate sits at or below the
    target, the margin decays geometrically toward its floor, clawing the
    energy headroom back.

    Args:
        initial: Starting margin (the paper's 0.10 by default).
        floor: Smallest margin the decay may reach.
        ceiling: Largest margin a miss burst may reach.
        target_miss_rate: Acceptable smoothed miss rate; below it the
            margin is allowed to shrink.
        widen_factor: Multiplicative widening per missed job.
        decay: Geometric shrink per compliant job.
        miss_alpha: Smoothing weight of the miss-rate EWMA.
    """

    def __init__(
        self,
        initial: float = 0.10,
        floor: float = 0.04,
        ceiling: float = 0.40,
        target_miss_rate: float = 0.02,
        widen_factor: float = 1.4,
        decay: float = 0.995,
        miss_alpha: float = 0.05,
    ):
        if not 0.0 <= floor <= initial <= ceiling:
            raise ValueError(
                f"need 0 <= floor <= initial <= ceiling, got "
                f"{floor}/{initial}/{ceiling}"
            )
        if widen_factor <= 1.0:
            raise ValueError(f"widen_factor must be > 1, got {widen_factor}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.value = initial
        self.floor = floor
        self.ceiling = ceiling
        self.target_miss_rate = target_miss_rate
        self.widen_factor = widen_factor
        self.decay = decay
        self._miss_ewma = Ewma(miss_alpha)

    def update(self, missed: bool) -> float:
        """Fold one job outcome in; returns the new margin."""
        miss_rate = self._miss_ewma.update(1.0 if missed else 0.0)
        if missed:
            self.value = min(self.ceiling, self.value * self.widen_factor)
        elif miss_rate <= self.target_miss_rate:
            self.value = max(self.floor, self.value * self.decay)
        return self.value

    @property
    def miss_rate(self) -> float:
        return self._miss_ewma.get()

    def state_dict(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "target_miss_rate": self.target_miss_rate,
            "widen_factor": self.widen_factor,
            "decay": self.decay,
            "miss_ewma": self._miss_ewma.state_dict(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.value = float(state["value"])
        self.floor = float(state["floor"])
        self.ceiling = float(state["ceiling"])
        self.target_miss_rate = float(state["target_miss_rate"])
        self.widen_factor = float(state["widen_factor"])
        self.decay = float(state["decay"])
        self._miss_ewma.load_state_dict(state["miss_ewma"])
