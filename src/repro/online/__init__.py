"""Online adaptation: keep the deployed predictive governor honest.

The offline pipeline (paper Fig. 13) trains once; this package closes
the loop at run time — streaming residual statistics, drift detection,
incremental recalibration of the execution-time model, and the adaptive
safety margin.  The :class:`~repro.governors.adaptive.AdaptiveGovernor`
composes these pieces over the frozen predictive governor.
"""

from repro.online.drift import (
    CusumDetector,
    DriftDetector,
    PageHinkleyDetector,
    detector_from_state,
)
from repro.online.inject import StepDriftJitter, scale_inputs
from repro.online.predictor import OnlineTimePredictor
from repro.online.recalibrate import (
    AdaptiveMargin,
    OnlineAnchorModel,
    RecursiveLeastSquares,
)
from repro.online.residuals import (
    Ewma,
    P2Quantile,
    ResidualMonitor,
    ResidualSnapshot,
)

__all__ = [
    "CusumDetector",
    "DriftDetector",
    "PageHinkleyDetector",
    "detector_from_state",
    "StepDriftJitter",
    "scale_inputs",
    "OnlineTimePredictor",
    "AdaptiveMargin",
    "OnlineAnchorModel",
    "RecursiveLeastSquares",
    "Ewma",
    "P2Quantile",
    "ResidualMonitor",
    "ResidualSnapshot",
]
