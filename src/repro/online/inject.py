"""Drift injection: controlled mid-run shifts for adaptation experiments.

Two orthogonal mechanisms, matching how deployments actually drift away
from the offline profile:

- **Execution-cost drift** (:class:`StepDriftJitter`): from a given job
  onward, every job takes a constant factor longer than the profiled
  feature→time relationship predicts.  This models what the slice
  features *cannot* see — thermal throttling, a codec switching to a
  heavier profile with the same macroblock counts, co-running tenants —
  and is the drift mode that breaks a frozen linear model no matter how
  good its features are.
- **Input-distribution drift** (:func:`scale_inputs`): from a given job
  onward, numeric job inputs are scaled, pushing the workload into a
  heavier operating region than the profiling script exercised.

The jitter wrapper lives here (not in :mod:`repro.platform.jitter`)
because it is an experiment instrument, not a platform property.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.platform.jitter import JitterModel

__all__ = ["StepDriftJitter", "scale_inputs"]

_EPS = 1e-12


class StepDriftJitter(JitterModel):
    """Wraps a jitter model; multiplies samples by ``factor`` after a step.

    Two ways to place the step:

    - ``shift_after_samples``: engage after that many draws.  Suitable
      for model-level studies where the caller controls every draw.  Do
      NOT use it under the executor: governors that charge predictor or
      feedback time draw extra samples per job, so the step would land
      at a different job for every governor.
    - ``shift_at_s`` + ``clock``: engage once the supplied clock (e.g.
      ``lambda: board.now``) reaches a simulated time.  Jobs are
      released periodically, so ``shift_job * budget_s`` drifts the same
      job for every governor — and a time trigger is also the physically
      honest model (throttling does not wait for a job boundary).

    Args:
        inner: The base timing-noise model.
        factor: Multiplicative slowdown (> 1) applied from the step on.
        shift_after_samples: Samples drawn before the drift engages.
        shift_at_s: Simulated time the drift engages at.
        clock: Callable returning the current simulated time (required
            with ``shift_at_s``).
    """

    def __init__(
        self,
        inner: JitterModel,
        factor: float,
        *,
        shift_after_samples: int | None = None,
        shift_at_s: float | None = None,
        clock: Callable[[], float] | None = None,
    ):
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if (shift_after_samples is None) == (shift_at_s is None):
            raise ValueError(
                "give exactly one of shift_after_samples or shift_at_s"
            )
        if shift_after_samples is not None and shift_after_samples < 0:
            raise ValueError(
                f"shift_after_samples must be >= 0, got {shift_after_samples}"
            )
        if shift_at_s is not None and clock is None:
            raise ValueError("shift_at_s requires a clock callable")
        self.inner = inner
        self.factor = factor
        self.shift_after_samples = shift_after_samples
        self.shift_at_s = shift_at_s
        self.clock = clock
        self._drawn = 0

    def _drifted(self) -> bool:
        if self.shift_at_s is not None:
            return self.clock() >= self.shift_at_s - _EPS
        return self._drawn > self.shift_after_samples

    def sample(self) -> float:
        base = self.inner.sample()
        self._drawn += 1
        return base * self.factor if self._drifted() else base

    def clone(self, seed: int) -> "StepDriftJitter":
        return StepDriftJitter(
            self.inner.clone(seed),
            self.factor,
            shift_after_samples=self.shift_after_samples,
            shift_at_s=self.shift_at_s,
            clock=self.clock,
        )


def scale_inputs(
    inputs: Sequence[Mapping[str, object]],
    from_index: int,
    scale: float,
) -> list[Mapping[str, object]]:
    """Scale numeric job inputs from ``from_index`` onward.

    Only integer values above 1 are scaled: 0/1 values are almost always
    mode flags (frame kinds, booleans) whose meaning scaling would
    destroy, while larger integers are counts (macroblocks, rounds,
    bytes) that set the amount of work.  Floats are scaled unless they
    lie in [0, 1] (probabilities/fractions).

    Args:
        inputs: Per-job input dicts in release order.
        from_index: First job index the scaling applies to.
        scale: Multiplier for work-like values (1.0 is a no-op).
    """
    if from_index < 0:
        raise ValueError(f"from_index must be >= 0, got {from_index}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if scale == 1.0:
        return list(inputs)

    def shift(value: object) -> object:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return max(1, int(round(value * scale))) if value > 1 else value
        if isinstance(value, float):
            return value if 0.0 <= value <= 1.0 else value * scale
        return value

    shifted: list[Mapping[str, object]] = []
    for index, job in enumerate(inputs):
        if index < from_index:
            shifted.append(job)
        else:
            shifted.append({key: shift(value) for key, value in job.items()})
    return shifted
