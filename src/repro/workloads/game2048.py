"""2048 — puzzle game (update and render one turn per job).

Per-turn work depends on which key the player pressed (a function-pointer
dispatch into a direction handler), how many tiles slid and merged, and
how many cells the renderer repaints.  Board occupancy is program state
that grows and shrinks across turns.

Table 2 targets: min 0.52 ms, avg 1.2 ms, max 2.1 ms at fmax.
"""

from __future__ import annotations

from repro.programs.expr import Compare, Const, Var
from repro.programs.ir import Assign, If, IndirectCall, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app", "MOVE_HANDLER_BASE"]

#: Function-pointer table base for the four direction handlers.
MOVE_HANDLER_BASE = 0x4000

_POLL_INPUT = 280_000
_SLIDE_CELL = 70_000
_MERGE = 130_000
_SPAWN_TILE = 180_000
_RENDER_CELL = 80_000
_GAME_OVER_SCAN = 390_000


def _direction_handler(direction: str):
    """One slide direction: move every occupied cell, merge where equal."""
    return Seq(
        [
            Loop(
                f"slide_{direction}",
                Var("n_moved"),
                compute(_SLIDE_CELL, f"slide_{direction}_cell"),
            ),
            Loop(
                f"merge_{direction}",
                Var("n_merges"),
                compute(_MERGE, f"merge_{direction}_pair"),
            ),
        ]
    )


def build_program() -> Program:
    body = Seq(
        [
            compute(_POLL_INPUT, "poll_input"),
            IndirectCall(
                "move_handler",
                Var("key") + Const(MOVE_HANDLER_BASE),
                {
                    MOVE_HANDLER_BASE + 0: _direction_handler("up"),
                    MOVE_HANDLER_BASE + 1: _direction_handler("down"),
                    MOVE_HANDLER_BASE + 2: _direction_handler("left"),
                    MOVE_HANDLER_BASE + 3: _direction_handler("right"),
                },
            ),
            If(
                "did_spawn",
                Compare("==", Var("spawn"), Const(1)),
                compute(_SPAWN_TILE, "spawn_tile"),
            ),
            Loop(
                "render",
                Var("n_dirty"),
                compute(_RENDER_CELL, "repaint_cell"),
            ),
            If(
                "board_full",
                Compare(">=", Var("occupancy"), Const(14)),
                compute(_GAME_OVER_SCAN, "game_over_scan"),
            ),
            Assign("turn", Var("turn") + Const(1)),
        ]
    )
    return Program(name="2048", body=body, globals_init={"turn": 0})


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """A scripted play session: occupancy rises until merges clear tiles."""
    rng = rng_for(seed, "2048")
    occupancy = 2
    jobs = []
    for _ in range(n_jobs):
        key = rng.randrange(4)
        n_moved = rng.randint(1, max(2, occupancy))
        merging = rng.random() < 0.45
        n_merges = rng.randint(1, max(1, occupancy // 3)) if merging else 0
        spawn = 1 if rng.random() < 0.9 else 0
        n_dirty = min(16, n_moved + 2 * n_merges + spawn + rng.randint(1, 4))
        jobs.append(
            {
                "key": key,
                "n_moved": n_moved,
                "n_merges": n_merges,
                "spawn": spawn,
                "n_dirty": n_dirty,
                "occupancy": occupancy,
            }
        )
        occupancy = max(2, min(16, occupancy + spawn - n_merges))
    return jobs


def make_app() -> InteractiveApp:
    """The 2048 benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("2048", build_program(), budget_s=0.050),
        description="Puzzle game — update and render one turn",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=0.52, avg_ms=1.2, max_ms=2.1),
    )
