"""uzbl — web browser (execute one command per job).

Commands dispatch through a handler table; almost all are trivial
(keypresses), some scroll, and rare navigations re-parse and re-lay-out
the page.  The page's DOM size is program state set by the last
navigation, so a cheap command after a heavy page still repaints more —
exactly the "event type" feature the paper notes its framework discovers
automatically for the browser.

Table 2 targets: min 0.04 ms, avg 2.2 ms, max 35.5 ms at fmax.
"""

from __future__ import annotations

from repro.programs.analysis.diagnostics import Suppression
from repro.programs.expr import Const, Var
from repro.programs.ir import Assign, IndirectCall, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app", "COMMAND_BASE", "CMD_KEYPRESS", "CMD_SCROLL",
           "CMD_REFRESH", "CMD_NAVIGATE"]

#: Command-handler table base and command codes.
COMMAND_BASE = 0xC000
CMD_KEYPRESS = 0
CMD_SCROLL = 1
CMD_REFRESH = 2
CMD_NAVIGATE = 3

_KEYPRESS = 50_000
_SCROLL_LINE = 34_000
_PAINT_NODE = 15_000
_PARSE_NODE = 27_000
_LAYOUT_NODE = 16_000
_NET_SETUP = 700_000


def build_program() -> Program:
    handlers = {
        COMMAND_BASE + CMD_KEYPRESS: compute(_KEYPRESS, "keypress"),
        COMMAND_BASE + CMD_SCROLL: Loop(
            "scroll_lines", Var("n_lines"), compute(_SCROLL_LINE, "scroll_line")
        ),
        COMMAND_BASE + CMD_REFRESH: Loop(
            "repaint", Var("dom_nodes"), compute(_PAINT_NODE, "paint_node")
        ),
        COMMAND_BASE + CMD_NAVIGATE: Seq(
            [
                compute(_NET_SETUP, "net_setup"),
                Assign("dom_nodes", Var("page_size")),
                Loop(
                    "parse", Var("dom_nodes"), compute(_PARSE_NODE, "parse_node")
                ),
                Loop(
                    "layout",
                    Var("dom_nodes"),
                    compute(_LAYOUT_NODE, "layout_node"),
                ),
            ]
        ),
    }
    body = IndirectCall(
        "command", Var("cmd") + Const(COMMAND_BASE), handlers
    )
    return Program(name="uzbl", body=body, globals_init={"dom_nodes": 300})


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """A browsing session: typing, scrolling, occasional page loads."""
    rng = rng_for(seed, "uzbl")
    jobs = []
    for _ in range(n_jobs):
        roll = rng.random()
        if roll < 0.62:
            cmd = CMD_KEYPRESS
        elif roll < 0.84:
            cmd = CMD_SCROLL
        elif roll < 0.96:
            cmd = CMD_REFRESH
        else:
            cmd = CMD_NAVIGATE
        jobs.append(
            {
                "cmd": cmd,
                "n_lines": rng.randint(3, 40),
                "page_size": rng.randint(250, 1200),
            }
        )
    return jobs


def make_app() -> InteractiveApp:
    """The uzbl (browser) benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("uzbl", build_program(), budget_s=0.050),
        description="Web browser — execute one command",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=0.04, avg_ms=2.2, max_ms=35.5),
        certifier_waivers=(
            Suppression(
                pass_name="effects",
                site="dom_nodes",
                reason=(
                    "navigation commands set the page's DOM size, which "
                    "later repaint loops iterate over — the slice must "
                    "replay the 'dom_nodes' update to count repaint "
                    "iterations; the write targets the isolated copy only"
                ),
            ),
        ),
    )
