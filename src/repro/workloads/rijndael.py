"""rijndael — AES encryption from MiBench (encrypt one buffer per job).

Work is linear in the data size and in the round count, which the key
length selects through a function-pointer dispatch (10, 12, or 14
rounds for 128/192/256-bit keys) — a clean example of the paper's
call-address features correlating with execution time.

Table 2 targets: min 14.2 ms, avg 28.5 ms, max 43.6 ms at fmax.
"""

from __future__ import annotations

from repro.programs.analysis.diagnostics import Suppression
from repro.programs.expr import Const, Var
from repro.programs.ir import Assign, IndirectCall, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app", "KEY_HANDLER_BASE"]

#: Function-pointer table base for the key-schedule handlers.
KEY_HANDLER_BASE = 0x8000

_KEY_SCHEDULE_128 = 140_000
_KEY_SCHEDULE_192 = 170_000
_KEY_SCHEDULE_256 = 200_000
_ROUND_PER_CHUNK = 230_000     # one AES round over a 16 KiB chunk
_IO_PER_CHUNK = 40_000


def build_program() -> Program:
    body = Seq(
        [
            IndirectCall(
                "key_schedule",
                Var("key_kind") + Const(KEY_HANDLER_BASE),
                {
                    KEY_HANDLER_BASE + 0: Seq(
                        [compute(_KEY_SCHEDULE_128, "ks128"), Assign("rounds", Const(10))]
                    ),
                    KEY_HANDLER_BASE + 1: Seq(
                        [compute(_KEY_SCHEDULE_192, "ks192"), Assign("rounds", Const(12))]
                    ),
                    KEY_HANDLER_BASE + 2: Seq(
                        [compute(_KEY_SCHEDULE_256, "ks256"), Assign("rounds", Const(14))]
                    ),
                },
            ),
            Loop(
                "chunks",
                Var("n_chunks"),
                Seq(
                    [
                        compute(_IO_PER_CHUNK, "chunk_io"),
                        Loop(
                            "rounds_loop",
                            Var("rounds"),
                            compute(_ROUND_PER_CHUNK, "aes_round"),
                        ),
                    ]
                ),
            ),
            Assign("buffers_done", Var("buffers_done") + Const(1)),
        ]
    )
    return Program(
        name="rijndael",
        body=body,
        globals_init={"buffers_done": 0, "rounds": 10},
    )


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """Buffers of 9–18 chunks under a rotating key policy."""
    rng = rng_for(seed, "rijndael")
    jobs = []
    for _ in range(n_jobs):
        jobs.append(
            {
                "n_chunks": rng.randint(9, 18),
                "key_kind": rng.choice([0, 0, 1, 2]),  # 128-bit most common
            }
        )
    return jobs


def make_app() -> InteractiveApp:
    """The rijndael (AES) benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("rijndael", build_program(), budget_s=0.050),
        description="AES — encrypt one piece of data",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=14.2, avg_ms=28.5, max_ms=43.6),
        certifier_waivers=(
            Suppression(
                pass_name="effects",
                site="rounds",
                reason=(
                    "the round count chosen by the key schedule is a "
                    "genuine feature dependence: the slice must recompute "
                    "'rounds' to know the encryption loop's trip count; "
                    "the write targets the isolated copy only"
                ),
            ),
        ),
    )
