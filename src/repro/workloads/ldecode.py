"""ldecode — H.264 video decoder (decode one frame per job).

The paper's flagship workload (Figs. 2, 3, 9, 20).  Per-frame work is
dominated by the macroblock loop; frames differ in how many macroblocks
were skipped vs. inter- vs. intra-coded, and every 30th frame is an
I-frame (all-intra plus header work).  The input generator produces the
smooth scene-complexity drift plus noise that gives Fig. 2 its shape.

Table 2 targets: min 6.2 ms, avg 20.4 ms, max 32.5 ms at fmax.
"""

from __future__ import annotations

import math

from repro.programs.expr import Compare, Const, Var
from repro.programs.ir import Assign, If, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app"]

#: Macroblocks per frame (CIF-like geometry).
MBS_PER_FRAME = 396

# Per-macroblock decode kernels (instructions).
_SKIP_MB = 3_000
_INTER_MB = 82_000
_INTRA_MB = 70_000
_FRAME_SETUP = 900_000
_IFRAME_EXTRA = 10_000_000
_DEBLOCK_EDGE = 9_000


def build_program() -> Program:
    """The per-frame decode task."""
    body = Seq(
        [
            # Bitstream/entropy setup for the frame.
            compute(_FRAME_SETUP, "frame_setup"),
            If(
                "is_idr",
                Compare("==", Var("frame_kind"), Const(1)),
                compute(_IFRAME_EXTRA, "idr_headers"),
            ),
            # Macroblock decode, split by coding mode.
            Loop("skip_mbs", Var("n_skip"), compute(_SKIP_MB, "skip_mb")),
            Loop("inter_mbs", Var("n_inter"), compute(_INTER_MB, "inter_mb")),
            Loop("intra_mbs", Var("n_intra"), compute(_INTRA_MB, "intra_mb")),
            # In-loop deblocking across coded-block edges.
            Assign("n_edges", (Var("n_inter") + Var("n_intra")) * Var("filter_strength")),
            Loop("deblock", Var("n_edges"), compute(_DEBLOCK_EDGE, "deblock_edge")),
            # Reference-frame bookkeeping.
            Assign("frames_decoded", Var("frames_decoded") + Const(1)),
        ]
    )
    return Program(
        name="ldecode", body=body, globals_init={"frames_decoded": 0}
    )


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """Scene complexity drifts sinusoidally with noise; IDR every 30 frames.

    Complexity c in [0, 1] sets how many macroblocks were actually coded;
    the rest were skipped.  Intra share grows with motion.
    """
    rng = rng_for(seed, "ldecode")
    jobs = []
    for i in range(n_jobs):
        drift = 0.5 + 0.32 * math.sin(2 * math.pi * i / 97.0)
        c = min(1.0, max(0.0, drift + rng.gauss(0.0, 0.08)))
        is_idr = 1 if i % 30 == 0 else 0
        if is_idr:
            n_intra = MBS_PER_FRAME
            n_inter = 0
            # Intra frames have no motion-compensated edges to smooth.
            strength = 1
        else:
            coded = int(MBS_PER_FRAME * (0.18 + 0.78 * c))
            n_intra = int(coded * (0.04 + 0.18 * c))
            n_inter = coded - n_intra
            strength = 1 + int(2.9 * c)
        n_skip = MBS_PER_FRAME - n_inter - n_intra
        jobs.append(
            {
                "frame_kind": is_idr,
                "n_skip": n_skip,
                "n_inter": n_inter,
                "n_intra": n_intra,
                "filter_strength": strength,
            }
        )
    return jobs


def make_app() -> InteractiveApp:
    """The ldecode benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("ldecode", build_program(), budget_s=0.050),
        description="H.264 decoder — decode one frame",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=6.2, avg_ms=20.4, max_ms=32.5),
    )
