"""curseofwar — real-time strategy game (one game-loop iteration per job).

The widest dynamic range in Table 2 (0.02–37.2 ms): most ticks update a
handful of units; combat ticks run flood-fill influence recomputation
over contested cells and a full map redraw.  Some ticks are nearly empty
(no dirty state, no redraw).

Table 2 targets: min 0.02 ms, avg 6.2 ms, max 37.2 ms at fmax.
"""

from __future__ import annotations

from repro.programs.expr import Compare, Const, Var
from repro.programs.ir import Assign, If, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app"]

_TICK_POLL = 18_000
_UNIT_UPDATE = 16_000
_COMBAT_CELL = 52_000
_MAP_ROW_REDRAW = 110_000
_AI_PLAN = 800_000

MAP_ROWS = 32


def build_program() -> Program:
    body = Seq(
        [
            compute(_TICK_POLL, "poll_events"),
            If(
                "tick_active",
                Compare("==", Var("active"), Const(1)),
                Seq(
                    [
                        Loop(
                            "units",
                            Var("n_units"),
                            compute(_UNIT_UPDATE, "unit_update"),
                        ),
                        If(
                            "ai_turn",
                            Compare("==", Var("ai_turn"), Const(1)),
                            compute(_AI_PLAN, "ai_planning"),
                        ),
                        Loop(
                            "combat",
                            Var("n_combat_cells"),
                            compute(_COMBAT_CELL, "combat_cell"),
                        ),
                        If(
                            "redraw",
                            Compare("==", Var("redraw"), Const(1)),
                            Loop(
                                "map_rows",
                                Const(MAP_ROWS),
                                compute(_MAP_ROW_REDRAW, "redraw_row"),
                            ),
                        ),
                        Assign("tick", Var("tick") + Const(1)),
                    ]
                ),
            ),
        ]
    )
    return Program(name="curseofwar", body=body, globals_init={"tick": 0})


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """Campaign script: quiet spells, unit build-up, and combat flare-ups."""
    rng = rng_for(seed, "curseofwar")
    jobs = []
    n_units = 40
    battle = 0.0
    for i in range(n_jobs):
        # Idle ticks: nothing dirty, instantly done.
        if rng.random() < 0.12:
            jobs.append(
                {
                    "active": 0,
                    "n_units": 0,
                    "ai_turn": 0,
                    "n_combat_cells": 0,
                    "redraw": 0,
                }
            )
            continue
        n_units = max(10, min(420, n_units + rng.randint(-18, 22)))
        # Battles ignite occasionally and decay over several ticks.
        if rng.random() < 0.07:
            battle = rng.uniform(0.5, 1.0)
        n_combat_cells = int(820 * battle)
        battle *= 0.72
        jobs.append(
            {
                "active": 1,
                "n_units": n_units,
                "ai_turn": 1 if i % 8 == 0 else 0,
                "n_combat_cells": n_combat_cells,
                "redraw": 1 if (battle > 0.05 or i % 4 == 0) else 0,
            }
        )
    return jobs


def make_app() -> InteractiveApp:
    """The curseofwar benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("curseofwar", build_program(), budget_s=0.050),
        description="Real-time strategy game — one game-loop iteration",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=0.02, avg_ms=6.2, max_ms=37.2),
    )
