"""The paper's eight interactive benchmarks, re-modelled in the mini IR."""

from repro.workloads.base import InteractiveApp, JobTimeStats

__all__ = ["InteractiveApp", "JobTimeStats"]
