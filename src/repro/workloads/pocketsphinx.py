"""pocketsphinx — speech recognition (process one utterance per job).

Work scales with utterance length (acoustic frames) and with how many
GMM senones stay active per frame (harder audio keeps more hypotheses
alive); a lattice rescoring pass at the end scales with word ends.  The
paper gives this app a 4-second budget (user-waiting-for-response limit)
instead of 50 ms.

Table 2 targets: min 718 ms, avg 1661 ms, max 2951 ms at fmax.
"""

from __future__ import annotations

from repro.programs.expr import Compare, Const, Var
from repro.programs.ir import Assign, If, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app"]

_FRONTEND_FRAME = 320_000       # MFCC extraction per 10 ms frame
_GMM_EVAL_UNIT = 300_000        # one batch of senone evaluations
_HMM_PRUNE = 260_000            # Viterbi beam prune per frame
_SILENCE_FRAME = 60_000         # frames below the VAD threshold
_LATTICE_WORD = 1_400_000       # rescoring per word-end


def build_program() -> Program:
    body = Seq(
        [
            Loop(
                "frames",
                Var("n_frames"),
                Seq(
                    [
                        compute(_FRONTEND_FRAME, "mfcc"),
                        # Per-frame active-senone count: scanning the active
                        # list is data-dependent work the prediction slice
                        # must also perform — this is why the paper's
                        # pocketsphinx predictor is far costlier than the
                        # others (Fig. 17).
                        Assign(
                            "frame_senones",
                            Var("senone_units")
                            + (Var("frame_i") * Const(5)) % Const(7)
                            - Const(3),
                            cost=2_600,
                        ),
                        If(
                            "voiced",
                            Compare(">", Var("frame_senones"), Const(0)),
                            Seq(
                                [
                                    Loop(
                                        "senones",
                                        Var("frame_senones"),
                                        compute(_GMM_EVAL_UNIT, "gmm_eval"),
                                    ),
                                    compute(_HMM_PRUNE, "beam_prune"),
                                ]
                            ),
                            compute(_SILENCE_FRAME, "silence"),
                        ),
                    ]
                ),
                loop_var="frame_i",
            ),
            Loop(
                "lattice",
                Var("n_word_ends"),
                compute(_LATTICE_WORD, "lattice_rescore"),
            ),
            Assign("utterances", Var("utterances") + Const(1)),
        ]
    )
    return Program(
        name="pocketsphinx", body=body, globals_init={"utterances": 0}
    )


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """Utterances of varying length and acoustic difficulty."""
    rng = rng_for(seed, "pocketsphinx")
    jobs = []
    for _ in range(n_jobs):
        n_frames = rng.randint(280, 500)
        difficulty = rng.uniform(0.35, 1.0)
        senone_units = int(24 * difficulty)
        n_word_ends = int(n_frames * difficulty * rng.uniform(0.05, 0.12))
        jobs.append(
            {
                "n_frames": n_frames,
                "senone_units": senone_units,
                "n_word_ends": n_word_ends,
            }
        )
    return jobs


def make_app() -> InteractiveApp:
    """The pocketsphinx benchmark with the paper's 4 s budget."""
    return InteractiveApp(
        task=Task("pocketsphinx", build_program(), budget_s=4.0),
        description="Speech recognition — process one speech sample",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=718.0, avg_ms=1661.0, max_ms=2951.0),
    )
