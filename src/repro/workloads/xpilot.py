"""xpilot — 2D space game (one game-loop iteration per job).

Per-tick work scales with live ships and bullets, with occasional
explosion particle bursts and input-handling spikes.

Table 2 targets: min 0.2 ms, avg 1.3 ms, max 3.1 ms at fmax.
"""

from __future__ import annotations

from repro.programs.expr import Compare, Const, Var
from repro.programs.ir import Assign, If, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app"]

_TICK_BASE = 130_000
_SHIP_UPDATE = 165_000
_BULLET_UPDATE = 32_000
_EXPLOSION = 950_000
_INPUT_HANDLING = 130_000
_HUD_RENDER = 95_000


def build_program() -> Program:
    body = Seq(
        [
            compute(_TICK_BASE, "world_tick"),
            If(
                "has_input",
                Compare("==", Var("has_input"), Const(1)),
                compute(_INPUT_HANDLING, "handle_input"),
            ),
            Loop("ships", Var("n_ships"), compute(_SHIP_UPDATE, "ship")),
            Loop(
                "bullets", Var("n_bullets"), compute(_BULLET_UPDATE, "bullet")
            ),
            If(
                "boom",
                Compare("==", Var("explosion"), Const(1)),
                compute(_EXPLOSION, "explosion_particles"),
            ),
            compute(_HUD_RENDER, "hud"),
            Assign("tick", Var("tick") + Const(1)),
        ]
    )
    return Program(name="xpilot", body=body, globals_init={"tick": 0})


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """A dogfight: ships drift in/out, bullets fly in bursts."""
    rng = rng_for(seed, "xpilot")
    jobs = []
    n_ships = 3
    n_bullets = 0
    for _ in range(n_jobs):
        n_ships = max(1, min(9, n_ships + rng.choice([-1, 0, 0, 0, 1])))
        firing = rng.random() < 0.4
        n_bullets = max(0, min(60, n_bullets + (rng.randint(2, 9) if firing else -6)))
        jobs.append(
            {
                "n_ships": n_ships,
                "n_bullets": n_bullets,
                "explosion": 1 if rng.random() < 0.06 else 0,
                "has_input": 1 if rng.random() < 0.5 else 0,
            }
        )
    return jobs


def make_app() -> InteractiveApp:
    """The xpilot benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("xpilot", build_program(), budget_s=0.050),
        description="2D space game — one game-loop iteration",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=0.2, avg_ms=1.3, max_ms=3.1),
    )
