"""sha — SHA hashing from MiBench (hash one buffer per job).

Work is linear in buffer size; buffers vary widely between jobs, so the
chunk-loop trip count is an almost perfect execution-time feature.

Table 2 targets: min 4.7 ms, avg 25.3 ms, max 46.0 ms at fmax.
"""

from __future__ import annotations

from repro.programs.expr import Compare, Const, Var
from repro.programs.ir import Assign, If, Loop, Program, Seq
from repro.runtime.task import Task
from repro.workloads.base import InteractiveApp, JobTimeStats, compute, rng_for

__all__ = ["make_app"]

_INIT = 90_000
_CHUNK_COMPRESS = 240_000      # SHA compression over a 16 KiB chunk
_FINALIZE = 160_000


def build_program() -> Program:
    body = Seq(
        [
            compute(_INIT, "init_state"),
            Loop(
                "chunks",
                Var("n_chunks"),
                compute(_CHUNK_COMPRESS, "compress"),
            ),
            If(
                "finalize",
                Compare("==", Var("finalize"), Const(1)),
                compute(_FINALIZE, "finalize_digest"),
            ),
            Assign("digests", Var("digests") + Const(1)),
        ]
    )
    return Program(name="sha", body=body, globals_init={"digests": 0})


def generate_inputs(n_jobs: int, seed: int = 0) -> list[dict]:
    """Buffer sizes roughly uniform over the Table-2 range."""
    rng = rng_for(seed, "sha")
    return [
        {
            "n_chunks": rng.randint(25, 245),
            "finalize": 1 if rng.random() < 0.8 else 0,
        }
        for _ in range(n_jobs)
    ]


def make_app() -> InteractiveApp:
    """The sha benchmark with the paper's 50 ms budget."""
    return InteractiveApp(
        task=Task("sha", build_program(), budget_s=0.050),
        description="SHA — hash one piece of data",
        generate_inputs=generate_inputs,
        paper_stats=JobTimeStats(min_ms=4.7, avg_ms=25.3, max_ms=46.0),
    )
