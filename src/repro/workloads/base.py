"""Workload base types.

Each of the paper's eight benchmarks is re-modelled as an
:class:`InteractiveApp`: a task program in the mini IR whose control flow
(and therefore execution time) depends on job inputs and program state,
plus a deterministic input generator that reproduces the statistical
shape of Table 2 (min / avg / max job time at maximum frequency).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.programs.analysis.diagnostics import Suppression
from repro.programs.expr import Value
from repro.programs.ir import Block
from repro.runtime.task import Task

__all__ = ["JobTimeStats", "InteractiveApp", "compute", "rng_for"]

#: Instructions per off-core memory reference in compute kernels.  At the
#: default interpreter/CPU constants this puts ~7% of fmax execution time
#: in the frequency-independent T_mem term — matching the mild memory
#: sensitivity the paper's Fig. 9 line shows for these benchmarks.
_INSTRUCTIONS_PER_MEM_REF = 1500.0


def compute(instructions: float, name: str = "") -> Block:
    """A compute kernel block with a proportional memory footprint."""
    return Block(
        instructions=instructions,
        mem_refs=instructions / _INSTRUCTIONS_PER_MEM_REF,
        name=name,
    )


@dataclass(frozen=True)
class JobTimeStats:
    """Table-2 job-time statistics at max frequency, in milliseconds."""

    min_ms: float
    avg_ms: float
    max_ms: float

    def __post_init__(self) -> None:
        if not 0 <= self.min_ms <= self.avg_ms <= self.max_ms:
            raise ValueError(
                f"need 0 <= min <= avg <= max, got {self}"
            )


@dataclass(frozen=True)
class InteractiveApp:
    """One benchmark application.

    Attributes:
        task: The annotated task (program + default budget, per the
            paper's §5.2 choices: 50 ms, or 4 s for pocketsphinx).
        description: What the task models (Table 2's description column).
        generate_inputs: ``(n_jobs, seed) -> list of input dicts``;
            deterministic given the seed, like the paper's scripted user
            inputs ("to ensure consistency across runs").
        paper_stats: Table 2 job-time statistics this app is calibrated to.
        certifier_waivers: Reviewed suppressions for slice-certifier
            findings this app is expected to trigger; each needs a
            reason.  Lives here so the acceptance of a finding sits next
            to the program that provokes it.
    """

    task: Task
    description: str
    generate_inputs: Callable[[int, int], list[Mapping[str, Value]]]
    paper_stats: JobTimeStats
    certifier_waivers: tuple[Suppression, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "certifier_waivers", tuple(self.certifier_waivers)
        )

    @property
    def name(self) -> str:
        return self.task.name

    def inputs(self, n_jobs: int, seed: int = 0) -> list[Mapping[str, Value]]:
        """Scripted inputs for ``n_jobs`` jobs (deterministic per seed)."""
        if n_jobs <= 0:
            raise ValueError(f"n_jobs must be positive, got {n_jobs}")
        return self.generate_inputs(n_jobs, seed)


def rng_for(seed: int, salt: str) -> random.Random:
    """A private stream per (seed, app): apps never share random state."""
    return random.Random(f"{salt}:{seed}")
