"""Workload registry: name -> application factory.

The eight benchmarks of the paper's Table 2, in its order.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads import (
    curseofwar,
    game2048,
    ldecode,
    pocketsphinx,
    rijndael,
    sha,
    uzbl,
    xpilot,
)
from repro.workloads.base import InteractiveApp

__all__ = ["APP_FACTORIES", "app_names", "get_app", "all_apps"]

APP_FACTORIES: dict[str, Callable[[], InteractiveApp]] = {
    "2048": game2048.make_app,
    "curseofwar": curseofwar.make_app,
    "ldecode": ldecode.make_app,
    "pocketsphinx": pocketsphinx.make_app,
    "rijndael": rijndael.make_app,
    "sha": sha.make_app,
    "uzbl": uzbl.make_app,
    "xpilot": xpilot.make_app,
}


def app_names() -> list[str]:
    """Benchmark names in Table-2 order."""
    return list(APP_FACTORIES)


def get_app(name: str) -> InteractiveApp:
    """Build one benchmark by name.

    Raises:
        KeyError: For unknown names, listing the valid ones.
    """
    try:
        factory = APP_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; available: {', '.join(APP_FACTORIES)}"
        ) from None
    return factory()


def all_apps() -> list[InteractiveApp]:
    """All eight benchmarks, freshly constructed."""
    return [factory() for factory in APP_FACTORIES.values()]
