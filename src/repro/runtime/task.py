"""Task annotation: a program plus its response-time requirement.

This is the programmer-facing annotation of the paper's Fig. 12
(``#pragma start_task 50ms``): identify the task and its time budget.
Jobs are periodic releases of the task, one per budget period (a 50 ms
budget models a 20 FPS frame task; 33 ms models 30 FPS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs.ir import Program

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """An annotated task.

    Attributes:
        name: Task identifier.
        program: The task body in the mini IR.
        budget_s: Response-time requirement per job, seconds.
    """

    name: str
    program: Program
    budget_s: float

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError(f"budget must be positive, got {self.budget_s}")

    def with_budget(self, budget_s: float) -> "Task":
        """Same task with a different time budget (for budget sweeps)."""
        return Task(self.name, self.program, budget_s)
