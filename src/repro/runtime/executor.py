"""The task-loop runner: executes jobs under a governor on a Board.

This is the mechanism half of DVFS control.  Per job it:

1. idles until the periodic release (optionally dropping to fmin for the
   gap — the paper's §5.5 idling);
2. consults the governor (running any prediction slice, with the chosen
   placement mode);
3. performs the DVFS switch, charged or free (the Fig. 18 limit study);
4. executes the job's work, splitting it at utilization-timer boundaries
   so sampled governors (interactive/ondemand) can retarget mid-job;
5. records the job and reports it back to the governor.

Timing noise: one multiplicative jitter factor is drawn per job from the
board's jitter model, so a job's remaining work stays consistent when a
mid-job frequency change re-times it.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Sequence

from repro.governors.base import Decision, Governor, JobContext
from repro.governors.idle import IdlePolicy
from repro.governors.predictive import PredictiveGovernor
from repro.platform.board import Board
from repro.platform.cpu import Work
from repro.platform.opp import OperatingPoint
from repro.programs.expr import Value
from repro.programs.interpreter import Interpreter
from repro.runtime.placement import PredictorPlacement
from repro.runtime.records import JobRecord, RunResult
from repro.runtime.task import Task
from repro.telemetry import NO_TELEMETRY, DecisionRecord, Telemetry
from repro.telemetry.energy import NO_ENERGY_LEDGER, EnergyLedger
from repro.telemetry.hostprof import NO_HOSTPROF, HostProfiler

__all__ = ["TaskLoopRunner"]

_EPS = 1e-12


class TaskLoopRunner:
    """Runs a task's job stream under one governor.

    Attributes:
        board: The simulated platform (owns time, energy, frequency).
        task: The annotated task (program + budget).
        governor: The DVFS policy under test.
        inputs: Per-job input dicts, in release order.
        interpreter: Executes the task program (job semantics + work).
        placement: Predictor placement mode (only affects
            :class:`~repro.governors.predictive.PredictiveGovernor`).
        idle_policy: Between-job idling configuration (Fig. 21).
        charge_predictor: Charge predictor time/energy (False for Fig. 18).
        charge_switch: Charge DVFS switch time/energy (False for Fig. 18).
        provide_oracle_work: Give governors the true per-job work
            (required by the oracle governor only).
        telemetry: Run observability pipeline (spans, metrics, decision
            audit).  Defaults to the zero-cost no-op; telemetry never
            influences the simulation, only records it.
        hostprof: Host-side profiler charging *wall-clock* phases
            (interpreter eval, governor decision, switch, record
            bookkeeping) — observes the simulator itself, not the
            simulated platform.  Defaults to the zero-cost no-op;
            every site guards on ``hostprof.enabled`` so a disabled
            run pays one attribute read and allocates nothing.
        arrivals: Optional explicit release schedule, one non-decreasing
            absolute time per job.  ``None`` keeps the classic periodic
            release (``index * budget_s``); the fleet layer passes the
            draws of an arrival process (Poisson, bursty, diurnal) here.
            Deadlines stay ``arrival + budget_s`` either way, so a
            burst that outruns the processor queues jobs and eats into
            their budgets exactly like a congested interactive session.
        energy: Per-job x per-phase x per-OPP energy attribution ledger
            (:class:`~repro.telemetry.energy.EnergyLedger`).  The runner
            subscribes it to the board's segment stream and marks job /
            feedback boundaries and predictor-overlap energy; the ledger
            then satisfies its conservation invariant against
            ``board.energy_j()``.  Defaults to the zero-cost no-op.
    """

    def __init__(
        self,
        board: Board,
        task: Task,
        governor: Governor,
        inputs: Sequence[Mapping[str, Value]],
        interpreter: Interpreter | None = None,
        placement: PredictorPlacement = PredictorPlacement.SEQUENTIAL,
        idle_policy: IdlePolicy | None = None,
        charge_predictor: bool = True,
        charge_switch: bool = True,
        provide_oracle_work: bool = False,
        telemetry: Telemetry | None = None,
        arrivals: Sequence[float] | None = None,
        hostprof: HostProfiler | None = None,
        energy: EnergyLedger | None = None,
    ):
        if not inputs:
            raise ValueError("need at least one job input")
        self.board = board
        self.task = task
        self.governor = governor
        self.inputs = list(inputs)
        self.interpreter = interpreter if interpreter is not None else Interpreter()
        self.placement = placement
        self.idle_policy = idle_policy if idle_policy is not None else IdlePolicy()
        self.charge_predictor = charge_predictor
        self.charge_switch = charge_switch
        self.provide_oracle_work = provide_oracle_work
        self.telemetry = telemetry if telemetry is not None else NO_TELEMETRY
        self.hostprof = hostprof if hostprof is not None else NO_HOSTPROF
        self.energy = energy if energy is not None else NO_ENERGY_LEDGER
        self.arrivals = self._validated_arrivals(arrivals)
        self._init_run_state()

    def _validated_arrivals(
        self, arrivals: Sequence[float] | None
    ) -> list[float] | None:
        if arrivals is None:
            return None
        schedule = [float(t) for t in arrivals]
        if len(schedule) != len(self.inputs):
            raise ValueError(
                f"arrival schedule has {len(schedule)} entries for "
                f"{len(self.inputs)} jobs"
            )
        if any(t < 0 for t in schedule):
            raise ValueError("arrival times must be non-negative")
        if any(b < a for a, b in zip(schedule, schedule[1:])):
            raise ValueError("arrival times must be non-decreasing")
        return schedule

    def _init_run_state(self) -> None:
        """(Re)initialize every piece of per-run mutable state."""
        # Timer state for utilization-sampled governors.
        self._timer_period = self.governor.timer_period_s
        self._next_timer = (
            self._timer_period if self._timer_period is not None else None
        )
        self._window_busy_s = 0.0
        # Energy of predictor work overlapped with job execution (pipelined
        # placement) — the timeline is single-threaded, so overlap is
        # accounted separately and folded into the result.
        self._overlap_energy_j = 0.0
        self._switches = 0
        # Level to restore after an idling dip to fmin, when the governor
        # itself has no opinion at the next job start.
        self._restore_opp: OperatingPoint | None = None
        self._started = False
        self._next_index = 0
        self._task_globals: dict | None = None
        self._records: list[JobRecord] = []

    # -- public API -----------------------------------------------------------
    def reset(
        self,
        board: Board | None = None,
        inputs: Sequence[Mapping[str, Value]] | None = None,
        arrivals: Sequence[float] | None = None,
        governor: Governor | None = None,
        telemetry: Telemetry | None = None,
        hostprof: HostProfiler | None = None,
        energy: EnergyLedger | None = None,
    ) -> None:
        """Return the runner to its pre-run state so it can run again.

        Sessions in the fleet simulator reuse one runner object across
        tenants; without this, switch counts, overlap energy, timer
        phase, and job records would bleed from one run into the next.
        The board and telemetry are stateful accumulators (time, energy,
        metric counters), so a reset that should be indistinguishable
        from a fresh runner must supply fresh instances of both; the
        governor likewise if it learns online.  Passing ``None`` keeps
        the current object.
        """
        if board is not None:
            self.board = board
        if inputs is not None:
            if not inputs:
                raise ValueError("need at least one job input")
            self.inputs = list(inputs)
        if governor is not None:
            self.governor = governor
        if telemetry is not None:
            self.telemetry = telemetry
        if hostprof is not None:
            self.hostprof = hostprof
        if energy is not None:
            self.energy = energy
        if arrivals is not None or inputs is not None:
            self.arrivals = self._validated_arrivals(arrivals)
        self._init_run_state()

    def arrival_s(self, index: int) -> float:
        """Release time of job ``index`` under the active schedule."""
        if self.arrivals is not None:
            return self.arrivals[index]
        return index * self.task.budget_s

    def next_arrival_s(self) -> float | None:
        """Release time of the next pending job; None when all jobs ran.

        Shard schedulers order interleaved sessions by this value.
        """
        if self._next_index >= len(self.inputs):
            return None
        return self.arrival_s(self._next_index)

    @property
    def jobs_remaining(self) -> int:
        return len(self.inputs) - self._next_index

    def start(self) -> None:
        """One-time run setup: telemetry binding, governor start, state.

        Idempotent between :meth:`reset` calls; :meth:`step` and
        :meth:`run` call it automatically.
        """
        if self._started:
            return
        self._started = True
        if self.energy.enabled:
            # Attach here (not __init__) so a reset() with a fresh board
            # re-subscribes the ledger to the board actually being run.
            self.board.set_segment_observer(self.energy.observe)
        telemetry = self.telemetry
        self.governor.bind_telemetry(telemetry)
        self.governor.bind_hostprof(self.hostprof)
        self.governor.start(self.board, self.task.budget_s)
        if telemetry.enabled:
            telemetry.counter(
                "freq_mhz", self.board.now, self.board.current_opp.freq_mhz
            )
            # Pre-register the headline counters so a clean run reports
            # them at 0 (a metrics baseline must pin "no misses", not
            # silently omit the metric).
            for name in (
                "executor.jobs", "executor.misses", "executor.switches"
            ):
                telemetry.metrics.counter(name)
        self._task_globals = self.task.program.fresh_globals()

    def step(self) -> JobRecord | None:
        """Run the next pending job; None when the stream is exhausted.

        The stepping half of the run loop: fleet shards interleave many
        sessions by repeatedly stepping whichever session releases next.
        """
        self.start()
        if self._next_index >= len(self.inputs):
            return None
        index = self._next_index
        self._next_index += 1
        arrival = self.arrival_s(index)
        if self.energy.enabled:
            # The release wait belongs to the job being waited for.
            self.energy.begin_job(index)
        telemetry = self.telemetry
        wait_from = self.board.now
        self._wait_for_arrival(arrival)
        if telemetry.enabled and self.board.now > wait_from:
            telemetry.span(
                "release.wait",
                wait_from,
                self.board.now,
                category="idle",
                args={"job": index},
            )
        assert self._task_globals is not None
        record = self._run_one_job(
            index, arrival, self.inputs[index], self._task_globals
        )
        self._records.append(record)
        if self.hostprof.enabled:
            self.hostprof.job_done()
        return record

    def result(self) -> RunResult:
        """Aggregate the jobs run so far into a :class:`RunResult`."""
        energy_by_tag = {
            tag: self.board.energy_j(tag)
            for tag in ("job", "predictor", "switch", "idle")
        }
        # Overlapped predictor energy (pipelined/parallel placements) is
        # off-timeline; report it under its own tag rather than silently
        # folding it into "predictor", so the breakdown still sums to
        # energy_j while staying attributable.
        if self._overlap_energy_j > 0.0:
            energy_by_tag["predictor_overlap"] = self._overlap_energy_j
        return RunResult(
            governor=self.governor.name,
            app=self.task.name,
            budget_s=self.task.budget_s,
            jobs=list(self._records),
            energy_j=self.board.energy_j() + self._overlap_energy_j,
            energy_by_tag=energy_by_tag,
            switch_count=self._switches,
        )

    def run(self) -> RunResult:
        """Execute every job; return the aggregated result."""
        self.start()
        while self.step() is not None:
            pass
        return self.result()

    # -- per-job orchestration -------------------------------------------------
    def _run_one_job(
        self,
        index: int,
        arrival: float,
        job_inputs: Mapping[str, Value],
        task_globals: dict,
    ) -> JobRecord:
        board = self.board
        deadline = arrival + self.task.budget_s
        start = board.now
        hp = self.hostprof

        oracle_work = None
        if self.provide_oracle_work:
            if hp.enabled:
                t0 = hp.clock()
            oracle_work = self.interpreter.execute_isolated(
                self.task.program, job_inputs, task_globals
            ).work
            if hp.enabled:
                hp.add("interp", hp.clock() - t0)

        ctx = JobContext(
            index=index,
            inputs=job_inputs,
            task_globals=task_globals,
            budget_s=self.task.budget_s,
            deadline_s=deadline,
            board=board,
            charge_overheads=self.charge_predictor,
            oracle_work=oracle_work,
        )

        # The job's true semantics: run the program against live globals.
        # The governor decision happens first (its slice must see pre-job
        # state), so compute the work on an isolated fork here and commit
        # the state change after the decision.
        if hp.enabled:
            t0 = hp.clock()
        work = self.interpreter.execute_isolated(
            self.task.program, job_inputs, task_globals
        ).work
        if hp.enabled:
            hp.add("interp", hp.clock() - t0)
        jitter = board.cpu.jitter.sample()

        telemetry = self.telemetry
        decide_from = board.now
        if hp.enabled:
            t0 = hp.clock()
        predictor_time, decision, partial_exec, remaining = self._decide(
            ctx, work, jitter
        )
        if hp.enabled:
            hp.add("governor", hp.clock() - t0)
        if telemetry.enabled:
            span_args: dict = {"job": index}
            if decision is not None:
                span_args["opp_index"] = decision.opp.index
                span_args["opp_mhz"] = decision.opp.freq_mhz
            # Effective-budget breakdown (budget - slice time - p95 switch
            # estimate), so attribution needs no side-channel: duck-typed
            # off the governor (or its inner predictive delegate).
            estimator = self.governor
            if not hasattr(estimator, "switch_estimate_s"):
                estimator = getattr(self.governor, "inner", None)
            if estimator is not None and hasattr(
                estimator, "switch_estimate_s"
            ):
                switch_estimate = estimator.switch_estimate_s(ctx)
                span_args.update(
                    budget_s=self.task.budget_s,
                    slice_time_s=predictor_time,
                    switch_estimate_s=switch_estimate,
                    effective_budget_s=(
                        deadline - board.now - switch_estimate
                    ),
                )
                margin_value = getattr(estimator, "margin_value", None)
                if callable(margin_value):
                    margin = margin_value()
                    if not math.isnan(margin):
                        span_args["margin"] = margin
            telemetry.span(
                "predict",
                decide_from,
                board.now,
                category="predictor",
                args=span_args,
            )
            # Governors that don't self-report still land in the audit
            # log, with the fields every decision has.
            if not telemetry.has_decision_for(index):
                telemetry.record_decision(
                    DecisionRecord(
                        job_index=index,
                        t_s=board.now,
                        governor=self.governor.name,
                        opp_mhz=(
                            decision.opp.freq_mhz
                            if decision is not None
                            else None
                        ),
                        predicted_time_s=(
                            decision.predicted_time_s
                            if decision is not None
                            else float("nan")
                        ),
                        energy_j=board.energy_j(),
                    )
                )
        target = decision.opp if decision is not None else self._restore_opp
        self._restore_opp = None

        switch_time = 0.0
        if target is not None and target.index != board.current_opp.index:
            switch_from = board.now
            switch_time = self._switch(target)
            if telemetry.enabled and switch_time > 0:
                telemetry.span(
                    "switch",
                    switch_from,
                    board.now,
                    category="switch",
                    args={"job": index, "to_mhz": target.freq_mhz},
                )

        opp_mhz = board.current_opp.freq_mhz
        exec_from = board.now
        exec_time, mid_switch, _ = self._execute_work(
            work, jitter, remaining=remaining
        )
        end = board.now
        if telemetry.enabled:
            telemetry.span(
                "execute",
                exec_from,
                end,
                category="job",
                args={"job": index, "start_mhz": opp_mhz},
            )

        # Commit the job's state change to the live globals.
        if hp.enabled:
            t0 = hp.clock()
        self.interpreter.execute(self.task.program, job_inputs, task_globals)
        if hp.enabled:
            hp.add("interp", hp.clock() - t0)
            t0 = hp.clock()

        record = JobRecord(
            index=index,
            arrival_s=arrival,
            start_s=start,
            end_s=end,
            deadline_s=deadline,
            opp_mhz=opp_mhz,
            exec_time_s=exec_time + partial_exec,
            predictor_time_s=predictor_time,
            switch_time_s=switch_time + mid_switch,
            predicted_time_s=(
                decision.predicted_time_s if decision is not None else float("nan")
            ),
        )
        report_from = board.now
        feedback_work = self.governor.on_job_end(record, ctx)
        if feedback_work is not None and self.charge_predictor:
            # Adaptation runs in the slack after the job completes; it
            # cannot un-miss this job but can delay the next one.
            adaptation_time = board.cpu.execution_time(
                feedback_work, board.current_opp
            )
            if self.energy.enabled:
                # Post-job adaptation shares the "predictor" timeline tag
                # with decision slices; the flag disambiguates the phase.
                self.energy.begin_feedback()
                board.busy_run(adaptation_time, tag="predictor")
                self.energy.end_feedback()
            else:
                board.busy_run(adaptation_time, tag="predictor")
            record = dataclasses.replace(
                record, adaptation_time_s=adaptation_time
            )
        if telemetry.enabled:
            if board.now > report_from:
                telemetry.span(
                    "report",
                    report_from,
                    board.now,
                    category="predictor",
                    args={"job": index},
                )
            # The job span closes the per-job story: the SLO watchdog
            # (repro.telemetry.watch) classifies the job off these args.
            telemetry.counter("energy_j", board.now, board.energy_j())
            telemetry.span(
                "job",
                start,
                board.now,
                category="job",
                args={
                    "job": index,
                    "missed": record.missed,
                    "slack_s": record.slack_s,
                },
            )
            if record.missed:
                telemetry.instant(
                    "deadline.miss",
                    record.end_s,
                    category="deadline",
                    args={"job": index, "late_s": -record.slack_s},
                )
            self._observe_job(record)
        if hp.enabled:
            hp.add("record", hp.clock() - t0)
        return record

    def _observe_job(self, record: JobRecord) -> None:
        """Feed the per-job metrics (telemetry enabled only)."""
        metrics = self.telemetry.metrics
        metrics.counter("executor.jobs").inc()
        if record.missed:
            metrics.counter("executor.misses").inc()
        metrics.histogram("executor.slack_s").observe(record.slack_s)
        metrics.histogram("executor.exec_time_s").observe(record.exec_time_s)
        if record.predictor_time_s > 0:
            metrics.histogram("executor.predictor_time_s").observe(
                record.predictor_time_s
            )
        if record.switch_time_s > 0:
            metrics.histogram("executor.switch_time_s").observe(
                record.switch_time_s
            )
        if record.adaptation_time_s > 0:
            metrics.histogram("executor.adaptation_time_s").observe(
                record.adaptation_time_s
            )
        # Cumulative energy as a gauge: the last write is the run total,
        # which the metrics regression gate compares across commits.
        metrics.gauge("executor.energy_j").set(self.board.energy_j())
        if self._overlap_energy_j > 0:
            metrics.gauge("executor.predictor_overlap_j").set(
                self._overlap_energy_j
            )

    def _decide(
        self, ctx: JobContext, work: Work, jitter: float
    ) -> tuple[float, Decision | None, float, float]:
        """Run the governor's decision under the configured placement.

        Returns (predictor_time_charged, decision, job_seconds_already_run,
        fraction_of_job_remaining).
        """
        board = self.board
        predictive = isinstance(self.governor, PredictiveGovernor)
        if not predictive or self.placement is PredictorPlacement.SEQUENTIAL:
            before = board.now
            decision = self.governor.decide(ctx)
            self._fire_due_timers()
            return board.now - before, decision, 0.0, 1.0

        governor: PredictiveGovernor = self.governor
        outcome = governor.analyze(ctx)
        slice_time = board.cpu.execution_time(
            outcome.slice_work, board.current_opp
        )

        if self.placement is PredictorPlacement.PIPELINED:
            # The slice ran during the previous job: no budget impact, but
            # its energy was still spent (on overlapped cycles).
            if self.charge_predictor:
                overlap = (
                    board.power.power(board.current_opp, 1.0) * slice_time
                )
                self._overlap_energy_j += overlap
                if self.energy.enabled:
                    self.energy.add_overlap(overlap)
                budget = (
                    ctx.deadline_s
                    - board.now
                    - governor.switch_estimate_s(ctx)
                )
            else:
                budget = ctx.deadline_s - board.now
            return 0.0, governor.choose(outcome, budget), 0.0, 1.0

        # PARALLEL: the job starts at the old level while the slice runs.
        if self.charge_predictor:
            partial, _, remaining = self._execute_work(
                work, jitter, max_duration=slice_time
            )
            overlap = board.power.power(board.current_opp, 1.0) * slice_time
            self._overlap_energy_j += overlap
            if self.energy.enabled:
                self.energy.add_overlap(overlap)
            budget = (
                ctx.deadline_s - board.now - governor.switch_estimate_s(ctx)
            )
            return slice_time, governor.choose(outcome, budget), partial, remaining
        return 0.0, governor.choose(outcome, ctx.deadline_s - board.now), 0.0, 1.0

    # -- mechanism helpers -------------------------------------------------------
    def _switch(self, target: OperatingPoint) -> float:
        """Perform a DVFS switch, charged or free per configuration."""
        if target.index == self.board.current_opp.index:
            return 0.0
        hp = self.hostprof
        if hp.enabled:
            t0 = hp.clock()
        self._switches += 1
        if self.charge_switch:
            latency = self.board.set_frequency(target)
        else:
            self.board.set_frequency_free(target)
            latency = 0.0
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("freq_mhz", self.board.now, target.freq_mhz)
            telemetry.metrics.counter("executor.switches").inc()
        if hp.enabled:
            hp.add("switch", hp.clock() - t0)
        return latency

    def _wait_for_arrival(self, arrival: float) -> None:
        """Idle (with timers and optional fmin idling) until release time."""
        board = self.board
        gap = arrival - board.now
        if gap <= 0:
            return
        if self.idle_policy.should_idle(gap):
            self._restore_opp = board.current_opp
            self._switch(board.opps.fmin)
        while board.now < arrival - _EPS:
            chunk_end = arrival
            if self._next_timer is not None:
                chunk_end = min(chunk_end, self._next_timer)
            board.idle_until(chunk_end)
            self._fire_due_timers()

    def _execute_work(
        self,
        work: Work,
        jitter: float,
        remaining: float = 1.0,
        max_duration: float | None = None,
    ) -> tuple[float, float, float]:
        """Run (part of) a job's work at the prevailing frequencies.

        Work progresses as a fraction of the whole job; a mid-job
        frequency change re-times the remaining fraction at the new
        level.  Returns (busy seconds spent, mid-job switch seconds,
        fraction of the job still remaining).

        Args:
            work: The job's total work.
            jitter: This job's timing-noise factor.
            remaining: Fraction of the job still to run (a parallel-
                placement partial execution passes its leftover here).
            max_duration: Stop after this much busy time (parallel
                placement runs the job for exactly the slice duration).
        """
        board = self.board
        spent = 0.0
        switch_spent = 0.0
        while remaining > _EPS:
            total = jitter * board.cpu.ideal_time(work, board.current_opp)
            if total <= _EPS:
                break
            time_left = remaining * total
            chunk = time_left
            if max_duration is not None:
                chunk = min(chunk, max_duration - spent)
                if chunk <= _EPS:
                    break
            if self._next_timer is not None:
                chunk = min(chunk, max(self._next_timer - board.now, _EPS))
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    f"executor.residency_s[{board.current_opp.freq_mhz:g}]"
                ).inc(chunk)
            board.busy_run(chunk, tag="job")
            self._window_busy_s += chunk
            spent += chunk
            remaining -= chunk / total
            switch_spent += self._fire_due_timers()
            if max_duration is not None and spent >= max_duration - _EPS:
                break
        return spent, switch_spent, max(remaining, 0.0)

    def _fire_due_timers(self) -> float:
        """Deliver any due utilization samples; returns switch time spent."""
        if self._next_timer is None or self._timer_period is None:
            return 0.0
        switch_time = 0.0
        while self.board.now >= self._next_timer - _EPS:
            utilization = min(1.0, self._window_busy_s / self._timer_period)
            target = self.governor.on_timer(self._next_timer, utilization)
            self._window_busy_s = 0.0
            self._next_timer += self._timer_period
            if target is not None and target.index != self.board.current_opp.index:
                if self.telemetry.enabled:
                    self.telemetry.instant(
                        "timer.retarget",
                        self.board.now,
                        category="governor",
                        args={
                            "utilization": utilization,
                            "to_mhz": target.freq_mhz,
                        },
                    )
                    self.telemetry.metrics.counter(
                        "executor.timer_retargets"
                    ).inc()
                switch_time += self._switch(target)
        return switch_time
