"""Per-job records and whole-run results.

Everything the paper's evaluation plots is computed from these records:
energy (total and by activity tag), deadline-miss rates, predictor and
switch overheads, and per-job traces (Figs. 2 and 3).
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field

from repro.telemetry.metrics import percentile

__all__ = ["JobRecord", "RunResult"]


@dataclass(frozen=True)
class JobRecord:
    """What happened to one job.

    Attributes:
        index: Job number, 0-based.
        arrival_s: When the job became ready (periodic release).
        start_s: When its processing (including any predictor) began.
        end_s: When the job's work completed.
        deadline_s: Absolute deadline (arrival + budget).
        opp_mhz: Frequency the job's work started at, in MHz.
        exec_time_s: Time spent on the job's own work.
        predictor_time_s: Time spent running the DVFS predictor for this job.
        switch_time_s: Time spent in DVFS transitions for this job.
        predicted_time_s: The predictor's (margined) estimate of the job's
            execution time at the chosen level; NaN for governors that do
            not predict.
        adaptation_time_s: Time spent on post-job feedback (the adaptive
            governor's online recalibration); 0 for static governors.
    """

    index: int
    arrival_s: float
    start_s: float
    end_s: float
    deadline_s: float
    opp_mhz: float
    exec_time_s: float
    predictor_time_s: float = 0.0
    switch_time_s: float = 0.0
    predicted_time_s: float = float("nan")
    adaptation_time_s: float = 0.0

    @property
    def missed(self) -> bool:
        """Whether the job finished after its deadline."""
        return self.end_s > self.deadline_s

    @property
    def slack_s(self) -> float:
        """Time to spare (negative when the deadline was missed)."""
        return self.deadline_s - self.end_s

    @property
    def response_time_s(self) -> float:
        """Arrival-to-completion latency."""
        return self.end_s - self.arrival_s


@dataclass
class RunResult:
    """Aggregated outcome of one simulated task run.

    Attributes:
        governor: Name of the DVFS controller used.
        app: Name of the application.
        budget_s: Per-job time budget.
        jobs: Per-job records, in order.
        energy_j: Total energy consumed over the run.
        energy_by_tag: Energy split by activity ("job", "predictor",
            "switch", "idle").
        switch_count: Number of DVFS transitions performed.
    """

    governor: str
    app: str
    budget_s: float
    jobs: list[JobRecord] = field(default_factory=list)
    energy_j: float = 0.0
    energy_by_tag: dict[str, float] = field(default_factory=dict)
    switch_count: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_missed(self) -> int:
        return sum(1 for j in self.jobs if j.missed)

    @property
    def miss_rate(self) -> float:
        """Fraction of jobs that missed their deadline (0 when no jobs)."""
        if not self.jobs:
            return 0.0
        return self.n_missed / len(self.jobs)

    @property
    def exec_times_s(self) -> list[float]:
        return [j.exec_time_s for j in self.jobs]

    @property
    def mean_predictor_time_s(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.predictor_time_s for j in self.jobs) / len(self.jobs)

    @property
    def mean_switch_time_s(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.switch_time_s for j in self.jobs) / len(self.jobs)

    @property
    def mean_adaptation_time_s(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.adaptation_time_s for j in self.jobs) / len(self.jobs)

    def exec_time_percentile(self, pct: float) -> float:
        """The ``pct``-th percentile of per-job execution time (seconds).

        Shares :func:`repro.telemetry.metrics.percentile` with the
        metrics histograms, so report quantiles and result quantiles
        use one interpolation convention.  NaN on a zero-job run.
        """
        if not self.jobs:
            return float("nan")
        return percentile(self.exec_times_s, pct)

    def slack_percentile(self, pct: float) -> float:
        """The ``pct``-th percentile of per-job slack (seconds).

        Low percentiles are the interesting tail: p5 slack is how close
        the tightest jobs came to (or past) their deadline — negative
        values are misses.  NaN on a zero-job run.
        """
        if not self.jobs:
            return float("nan")
        return percentile([j.slack_s for j in self.jobs], pct)

    def energy_relative_to(self, reference: "RunResult") -> float:
        """This run's energy as a fraction of ``reference``'s (Fig. 15)."""
        if reference.energy_j <= 0:
            raise ValueError("reference run consumed no energy")
        return self.energy_j / reference.energy_j

    # -- export -----------------------------------------------------------------
    def jobs_as_dicts(self) -> list[dict]:
        """Per-job records as plain dicts (for dataframes/plotting)."""
        return [
            {
                "index": j.index,
                "arrival_s": j.arrival_s,
                "start_s": j.start_s,
                "end_s": j.end_s,
                "deadline_s": j.deadline_s,
                "opp_mhz": j.opp_mhz,
                "exec_time_s": j.exec_time_s,
                "predictor_time_s": j.predictor_time_s,
                "switch_time_s": j.switch_time_s,
                "predicted_time_s": j.predicted_time_s,
                "adaptation_time_s": j.adaptation_time_s,
                "missed": j.missed,
            }
            for j in self.jobs
        ]

    def to_json(self) -> str:
        """Whole-run summary plus per-job records as JSON."""
        return json.dumps(
            {
                "governor": self.governor,
                "app": self.app,
                "budget_s": self.budget_s,
                "energy_j": self.energy_j,
                "energy_by_tag": self.energy_by_tag,
                "switch_count": self.switch_count,
                "miss_rate": self.miss_rate,
                "jobs": [
                    {
                        k: (None if isinstance(v, float) and math.isnan(v) else v)
                        for k, v in job.items()
                    }
                    for job in self.jobs_as_dicts()
                ],
            }
        )

    def jobs_as_csv(self) -> str:
        """Per-job records as CSV text (header + one row per job)."""
        rows = self.jobs_as_dicts()
        buffer = io.StringIO()
        fields = [
            "index", "arrival_s", "start_s", "end_s", "deadline_s",
            "opp_mhz", "exec_time_s", "predictor_time_s", "switch_time_s",
            "predicted_time_s", "adaptation_time_s", "missed",
        ]
        writer = csv.DictWriter(buffer, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue()

    # -- import -----------------------------------------------------------------
    @staticmethod
    def _job_from_dict(data: dict) -> JobRecord:
        predicted = data.get("predicted_time_s")
        return JobRecord(
            index=int(data["index"]),
            arrival_s=float(data["arrival_s"]),
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            deadline_s=float(data["deadline_s"]),
            opp_mhz=float(data["opp_mhz"]),
            exec_time_s=float(data["exec_time_s"]),
            predictor_time_s=float(data.get("predictor_time_s", 0.0)),
            switch_time_s=float(data.get("switch_time_s", 0.0)),
            predicted_time_s=(
                float("nan") if predicted is None else float(predicted)
            ),
            adaptation_time_s=float(data.get("adaptation_time_s", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a result from :meth:`to_json` output.

        ``missed`` is a derived property and is ignored on input;
        ``predicted_time_s: null`` maps back to NaN.
        """
        payload = json.loads(text)
        return cls(
            governor=payload["governor"],
            app=payload["app"],
            budget_s=float(payload["budget_s"]),
            jobs=[cls._job_from_dict(job) for job in payload["jobs"]],
            energy_j=float(payload["energy_j"]),
            energy_by_tag={
                tag: float(value)
                for tag, value in payload["energy_by_tag"].items()
            },
            switch_count=int(payload["switch_count"]),
        )

    @staticmethod
    def jobs_from_csv(text: str) -> list[JobRecord]:
        """Parse :meth:`jobs_as_csv` output back into records.

        An empty ``predicted_time_s`` cell (CSV has no null) maps to NaN.
        """
        records = []
        for row in csv.DictReader(io.StringIO(text)):
            data: dict = dict(row)
            if data.get("predicted_time_s") in ("", None, "nan"):
                data["predicted_time_s"] = None
            records.append(RunResult._job_from_dict(data))
        return records
