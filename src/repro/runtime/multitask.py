"""Multiple non-overlapping tasks on one core (paper §4.1).

"Multiple non-overlapping tasks can be supported, though we only
considered one task in the applications we tested."  This runner
schedules several annotated tasks on the same simulated core: each task
releases jobs periodically (with an optional phase offset), jobs run to
completion in release order (non-preemptive FIFO — the tasks never
overlap), and each task brings its own governor, so two prediction-based
controllers trained on different programs coexist on one frequency
ladder.

Utilization-timer governors (interactive/ondemand) are per-CPU, not
per-task; this runner supports per-job policies only (performance,
powersave, pid, prediction, oracle) and rejects timer-driven ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.governors.base import Governor, JobContext
from repro.platform.board import Board
from repro.programs.expr import Value
from repro.programs.interpreter import Interpreter
from repro.runtime.records import JobRecord, RunResult
from repro.runtime.task import Task
from repro.telemetry.energy import NO_ENERGY_LEDGER, EnergyLedger

__all__ = ["TaskStream", "MultiTaskRunner"]

_EPS = 1e-12


@dataclass
class TaskStream:
    """One periodic task plus everything needed to run it.

    Attributes:
        task: The annotated task (budget doubles as the period).
        governor: Per-job DVFS policy for this task's jobs.
        inputs: Per-job inputs, in release order.
        offset_s: Release phase: job i arrives at ``offset + i * budget``.
            Offsetting streams by a fraction of the period keeps them
            naturally non-overlapping under light load.
    """

    task: Task
    governor: Governor
    inputs: Sequence[Mapping[str, Value]]
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError(f"stream {self.task.name!r} has no job inputs")
        if self.offset_s < 0:
            raise ValueError("offset must be non-negative")
        if self.governor.timer_period_s is not None:
            raise ValueError(
                "multi-task scheduling supports per-job governors only; "
                f"{self.governor.name!r} is utilization-timer driven"
            )

    def arrival_s(self, index: int) -> float:
        """Release time of this stream's ``index``-th job."""
        return self.offset_s + index * self.task.budget_s


@dataclass
class _StreamState:
    stream: TaskStream
    globals_: dict
    next_index: int = 0
    records: list[JobRecord] = field(default_factory=list)
    energy_mark: float = 0.0

    @property
    def exhausted(self) -> bool:
        return self.next_index >= len(self.stream.inputs)

    @property
    def next_arrival_s(self) -> float:
        return self.stream.arrival_s(self.next_index)


class MultiTaskRunner:
    """Runs several task streams on one board, FIFO by release time."""

    def __init__(
        self,
        board: Board,
        streams: Sequence[TaskStream],
        interpreter: Interpreter | None = None,
        provide_oracle_work: bool = False,
        energy: EnergyLedger | None = None,
    ):
        if not streams:
            raise ValueError("need at least one task stream")
        names = [s.task.name for s in streams]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names: {names}")
        self.board = board
        self.streams = list(streams)
        self.interpreter = interpreter if interpreter is not None else Interpreter()
        self.provide_oracle_work = provide_oracle_work
        self.energy = energy if energy is not None else NO_ENERGY_LEDGER
        # Streams share one board; ledger jobs number the interleaved
        # sequence in execution order across all streams.
        self._jobs_run = 0

    def run(self) -> dict[str, RunResult]:
        """Execute every stream's jobs; returns results keyed by task name."""
        board = self.board
        if self.energy.enabled:
            board.set_segment_observer(self.energy.observe)
        states = [
            _StreamState(stream=s, globals_=s.task.program.fresh_globals())
            for s in self.streams
        ]
        for state in states:
            state.stream.governor.start(board, state.stream.task.budget_s)

        while True:
            pending = [s for s in states if not s.exhausted]
            if not pending:
                break
            # Earliest release first; FIFO among released jobs.
            state = min(pending, key=lambda s: s.next_arrival_s)
            self._run_job(state)

        results: dict[str, RunResult] = {}
        total_energy = board.energy_j()
        for state in states:
            results[state.stream.task.name] = RunResult(
                governor=state.stream.governor.name,
                app=state.stream.task.name,
                budget_s=state.stream.task.budget_s,
                jobs=state.records,
                # Whole-board energy is shared; report it on every stream
                # (splitting idle energy between tasks is arbitrary).
                energy_j=total_energy,
                energy_by_tag={
                    tag: board.energy_j(tag)
                    for tag in ("job", "predictor", "switch", "idle")
                },
                switch_count=board.switch_count,
            )
        return results

    def _run_job(self, state: _StreamState) -> None:
        board = self.board
        stream = state.stream
        index = state.next_index
        state.next_index += 1
        if self.energy.enabled:
            self.energy.begin_job(self._jobs_run)
        self._jobs_run += 1
        arrival = stream.arrival_s(index)
        board.idle_until(arrival)
        start = board.now
        deadline = arrival + stream.task.budget_s
        job_inputs = stream.inputs[index]

        oracle_work = None
        if self.provide_oracle_work:
            oracle_work = self.interpreter.execute_isolated(
                stream.task.program, job_inputs, state.globals_
            ).work

        ctx = JobContext(
            index=index,
            inputs=job_inputs,
            task_globals=state.globals_,
            budget_s=stream.task.budget_s,
            deadline_s=deadline,
            board=board,
            oracle_work=oracle_work,
        )
        before = board.now
        decision = stream.governor.decide(ctx)
        predictor_time = board.now - before

        switch_time = 0.0
        if decision is not None and (
            decision.opp.index != board.current_opp.index
        ):
            switch_time = board.set_frequency(decision.opp)

        opp_mhz = board.current_opp.freq_mhz
        work = self.interpreter.execute(
            stream.task.program, job_inputs, state.globals_
        ).work
        exec_time = board.execute(work)

        record = JobRecord(
            index=index,
            arrival_s=arrival,
            start_s=start,
            end_s=board.now,
            deadline_s=deadline,
            opp_mhz=opp_mhz,
            exec_time_s=exec_time,
            predictor_time_s=predictor_time,
            switch_time_s=switch_time,
            predicted_time_s=(
                decision.predicted_time_s
                if decision is not None
                else float("nan")
            ),
        )
        state.records.append(record)
        stream.governor.on_job_end(record, ctx)
