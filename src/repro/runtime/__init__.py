"""Runtime: tasks, jobs, records, and the task-loop executor."""

from repro.runtime.executor import TaskLoopRunner
from repro.runtime.multitask import MultiTaskRunner, TaskStream
from repro.runtime.placement import PredictorPlacement
from repro.runtime.records import JobRecord, RunResult
from repro.runtime.task import Task

__all__ = [
    "TaskLoopRunner",
    "MultiTaskRunner",
    "TaskStream",
    "PredictorPlacement",
    "JobRecord",
    "RunResult",
    "Task",
]
