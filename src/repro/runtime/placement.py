"""Predictor placement modes (paper §4.3, Fig. 14).

- SEQUENTIAL: the slice runs just before its job; its time comes out of
  the job's budget.  The paper's default (slice times were small).
- PIPELINED: the predictor for job i+1 runs during job i, so the decision
  is ready at job start with no budget impact — valid only when the next
  job's inputs are known a job in advance (periodic, input-independent
  tasks).
- PARALLEL: the slice runs concurrently with the start of its own job at
  the old frequency; the switch happens once the decision is ready.  The
  budget still shrinks by the slice time, but the job makes progress
  during prediction.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["PredictorPlacement"]


class PredictorPlacement(Enum):
    """How the DVFS predictor overlaps with job execution."""

    SEQUENTIAL = "sequential"
    PIPELINED = "pipelined"
    PARALLEL = "parallel"
