"""Small statistics helpers shared by experiments and tests."""

from __future__ import annotations

import numpy as np

__all__ = ["percentile", "normalize_to", "geometric_mean"]


def percentile(values, pct: float) -> float:
    """The ``pct``-th percentile of ``values``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of no values")
    return float(np.percentile(arr, pct))


def normalize_to(values, reference: float) -> list[float]:
    """Each value divided by ``reference`` (must be positive)."""
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    return [float(v) / reference for v in values]


def geometric_mean(values) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot average no values")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
